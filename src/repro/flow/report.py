"""Human-readable reports for flow results.

Summarises a pipeline run the way a tool log would: netlist statistics,
cell histogram, area breakdown (cells vs routing vs pad ring), channel
congestion, wirelength, and the wiring-aware critical path with slacks.
"""

from __future__ import annotations

from typing import List, Optional

from repro.flow.pipeline import FlowResult
from repro.timing.model import WireCapModel
from repro.timing.sta import analyze, critical_path, slacks

__all__ = ["circuit_report", "comparison_report"]


def circuit_report(
    result: FlowResult,
    wire_model: Optional[WireCapModel] = None,
    max_path_rows: int = 12,
) -> str:
    """Full single-run report."""
    mapped = result.mapped
    backend = result.backend
    chip = backend.chip
    lines: List[str] = []
    lines.append(f"=== {result.circuit} — {result.mapper} ({result.mode} mode) ===")
    lines.append(
        f"gates: {result.num_gates}   verified: {result.equivalent}   "
        f"runtime: {result.runtime_s:.1f}s"
    )

    lines.append("cell histogram:")
    hist = mapped.cell_histogram()
    for name in sorted(hist, key=lambda n: (-hist[n], n)):
        lines.append(f"  {name:<10} x{hist[name]}")

    lines.append("area:")
    lines.append(f"  instance (cells) : {result.instance_area_mm2:9.4f} mm^2")
    lines.append(f"  routing          : {chip.routing_area / 1e6:9.4f} mm^2")
    lines.append(f"  chip (with pads) : {result.chip_area_mm2:9.4f} mm^2")

    routed = backend.routed
    lines.append("routing:")
    lines.append(f"  wire length      : {result.wire_length_mm:9.2f} mm")
    lines.append(f"  rows             : {backend.detailed.num_rows}")
    tracks = [c.num_tracks for c in routed.channels]
    lines.append(
        f"  channel tracks   : total {sum(tracks)}, max {max(tracks or [0])}"
        f", per channel {tracks}"
    )

    wire_model = wire_model or WireCapModel()
    report = analyze(mapped, wire_model=wire_model)
    lines.append("timing:")
    lines.append(f"  critical delay   : {report.critical_delay:9.2f} ns "
                 f"(at {report.critical_po})")
    slack = slacks(mapped, report)
    worst = sorted(slack.items(), key=lambda kv: kv[1])[:3]
    lines.append(
        "  tightest slacks  : "
        + ", ".join(f"{name}={value:.2f}" for name, value in worst)
    )
    lines.append("  critical path:")
    path = critical_path(mapped, report)
    shown = path if len(path) <= max_path_rows else path[-max_path_rows:]
    if len(path) > len(shown):
        lines.append(f"    ... {len(path) - len(shown)} earlier stages ...")
    for node in shown:
        cell = node.cell.name if node.is_gate else node.kind.value
        arrival = report.arrivals[node.name].worst
        lines.append(f"    {node.name:<18} {cell:<8} t={arrival:8.2f}")
    return "\n".join(lines)


def comparison_report(mis: FlowResult, lily: FlowResult) -> str:
    """Side-by-side MIS vs Lily summary (one Table row, expanded)."""
    lines = [f"=== {mis.circuit}: MIS 2.1 vs Lily ({mis.mode} mode) ==="]
    rows = [
        ("gates", mis.num_gates, lily.num_gates),
        ("instance mm^2", round(mis.instance_area_mm2, 4),
         round(lily.instance_area_mm2, 4)),
        ("chip mm^2", round(mis.chip_area_mm2, 4),
         round(lily.chip_area_mm2, 4)),
        ("wire mm", round(mis.wire_length_mm, 2),
         round(lily.wire_length_mm, 2)),
    ]
    if mis.mode == "timing":
        rows.append(("delay ns", round(mis.delay, 2), round(lily.delay, 2)))
    lines.append(f"{'metric':<16}{'MIS2.1':>12}{'Lily':>12}{'ratio':>9}")
    for metric, m, l in rows:
        ratio = (l / m) if m else float("nan")
        lines.append(f"{metric:<16}{m:>12}{l:>12}{ratio:>9.3f}")
    return "\n".join(lines)
