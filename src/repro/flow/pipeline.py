"""The two experimental pipelines of Section 5.

1. **MIS pipeline** — read the optimized circuit, run the MIS mapper (area
   or timing mode), *then* assign I/O pads, do placement and routing.  The
   mapper cannot see pad locations.
2. **Lily pipeline** — assign I/O pads first, run Lily (which places the
   inchoate network against those pads), then the *same* placement and
   routing back-end.

Both flows share pad ordering (from the source network's connectivity),
the global/detailed placer, the router and the timing model, so any
difference in the reported metrics comes from the mapping itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Union

from repro.area.estimate import ChipEstimate, estimate_chip, mapped_image, subject_image
from repro.core.lily import LilyAreaMapper, LilyDelayMapper, LilyOptions
from repro.geometry import Point, Rect
from repro.library.cell import Library
from repro.map.base import MapResult
from repro.map.cuts import CutMapper, FusionMapper, parse_mapper_spec
from repro.map.mis import MisAreaMapper, MisDelayMapper
from repro.map.netlist import MappedNetwork
from repro.network.decompose import decompose_to_subject
from repro.network.network import Network
from repro.network.simulate import networks_equivalent
from repro.obs import OBS, ObsReport, build_report
from repro.perf import PerfOptions
from repro.place.detailed import DetailedPlacement, detailed_place
from repro.place.global_place import GlobalPlacer
from repro.place.hypergraph import mapped_netlist
from repro.place.pads import io_affinity_order, perimeter_slots
from repro.route.global_route import RoutedDesign, route_design
from repro.timing.model import WireCapModel
from repro.timing.sta import TimingReport, analyze
from repro.verify.result import VerifyReport

__all__ = ["BackendResult", "FlowResult", "mis_flow", "lily_flow",
           "place_and_route", "pads_from_order"]


@dataclass
class BackendResult:
    """Placement + routing + timing of a mapped netlist."""

    detailed: DetailedPlacement
    routed: RoutedDesign
    chip: ChipEstimate
    timing: TimingReport
    pad_positions: Dict[str, Point]

    @property
    def chip_area_mm2(self) -> float:
        """Predicted chip area, mm²."""
        return self.chip.chip_area / 1e6

    @property
    def wire_length_mm(self) -> float:
        """Total routed interconnect length, mm."""
        return self.routed.total_wire_length / 1e3


@dataclass
class FlowResult:
    """Everything one pipeline run reports."""

    circuit: str
    mapper: str  # "mis" | "lily" | "mis-<spec>" (non-tree mapping backends)
    mode: str  # "area" | "timing"
    map_result: MapResult
    backend: BackendResult
    equivalent: bool
    runtime_s: float
    #: Per-phase tracing/metrics report; populated when the global
    #: observability session (``repro.obs.OBS``) is enabled.
    obs: Optional[ObsReport] = None
    #: Full checker report; populated when the flow ran with
    #: ``verify="fast"`` or ``verify="full"`` (the ``repro.verify`` audit).
    verify_report: Optional[VerifyReport] = None

    @property
    def mapped(self) -> MappedNetwork:
        """The mapped netlist the flow produced."""
        return self.map_result.mapped

    @property
    def num_gates(self) -> int:
        """Library-gate instance count of the mapped netlist."""
        return self.map_result.num_gates

    @property
    def instance_area_mm2(self) -> float:
        """Total active cell area, mm² (Table 1/2 'inst' column)."""
        return self.map_result.cell_area / 1e6

    @property
    def chip_area_mm2(self) -> float:
        """Predicted chip area after place-and-route, mm²."""
        return self.backend.chip_area_mm2

    @property
    def wire_length_mm(self) -> float:
        """Total routed interconnect length, mm."""
        return self.backend.wire_length_mm

    @property
    def delay(self) -> float:
        """Critical-path delay of the routed design (STA, wire included)."""
        return self.backend.timing.critical_delay


def pads_from_order(order: List[str], region: Rect) -> Dict[str, Point]:
    """Place an already-ordered pad list on a region's perimeter."""
    slots = perimeter_slots(region, len(order))
    return {name: slot for name, slot in zip(order, slots)}


def _po_name_map(net: Network) -> Dict[str, str]:
    """Source PO name -> same name (POs keep their names through mapping)."""
    return {po.name: po.name for po in net.primary_outputs}


def place_and_route(
    mapped: MappedNetwork,
    pad_order: List[str],
    wire_model: Optional[WireCapModel] = None,
    seed_positions: Optional[Dict[str, Point]] = None,
    anneal: bool = False,
    anneal_seed: int = 0,
    perf: Optional[PerfOptions] = None,
) -> BackendResult:
    """The shared back-end: global + detailed placement, routing, STA.

    Args:
        mapped: the mapped netlist.
        pad_order: circular I/O ordering (shared between pipelines).
        wire_model: wire capacitance for the final STA.
        seed_positions: optional pre-existing gate positions (e.g. Lily's
            constructive placement) used instead of a fresh global
            placement.
        anneal: refine the detailed placement with simulated annealing
            (the TimberWolf-style pass; slower, lower wirelength).
        perf: optimization switches; ``incremental_place`` selects the
            cached-bounding-box engines in the detailed pass and the
            annealer, ``vec_place``/``vec_sta``/``vec_route`` the struct-of-arrays
            kernels beneath them (bit-identical either way).
    """
    wire_model = wire_model or WireCapModel()
    incremental = perf.incremental_place if perf is not None else True
    vec_place = getattr(perf, "vec_place", True) if perf is not None else True
    vec_sta = getattr(perf, "vec_sta", True) if perf is not None else True
    vec_route = getattr(perf, "vec_route", True) if perf is not None else True
    region = mapped_image(mapped.total_cell_area())
    pads = pads_from_order(pad_order, region)
    netlist = mapped_netlist(mapped, pads)

    if seed_positions is not None:
        positions = {
            name: seed_positions.get(name, region.center)
            for name in netlist.movables
        }
    else:
        with OBS.span("place.global", cells=len(netlist.movables)):
            placement = GlobalPlacer(vec=vec_place).place(netlist, region)
        positions = placement.positions

    with OBS.span("place.detailed", cells=len(positions)):
        detailed = detailed_place(netlist, positions,
                                  incremental=incremental, vec=vec_place)
    if anneal:
        from repro.place.anneal import simulated_annealing

        simulated_annealing(detailed, netlist, seed=anneal_seed,
                            incremental=incremental, vec=vec_place)
    routed = route_design(mapped, detailed, pads, vec=vec_route)
    chip = estimate_chip(
        routed.chip_width, routed.chip_height, mapped.total_cell_area()
    )

    # Final gate positions (post restack) feed the wiring-aware STA.
    for gate in mapped.gates:
        gate.position = routed.placement.positions.get(gate.name, gate.position)
    for name, p in pads.items():
        if name in mapped:
            mapped[name].position = p
    if vec_sta:
        from repro.timing.array_sta import analyze_array

        timing = analyze_array(mapped, wire_model=wire_model)
    else:
        timing = analyze(mapped, wire_model=wire_model)
    return BackendResult(detailed, routed, chip, timing, pads)


def _run_verification(
    net: Network,
    result: MapResult,
    backend: BackendResult,
    verify: Union[bool, str],
    wire_model: Optional[WireCapModel],
):
    """The verification step shared by both flows.

    ``verify`` semantics: ``False`` skips checking entirely; ``True`` runs
    the legacy whole-network simulation check; ``"fast"``/``"full"`` run
    the :mod:`repro.verify` audit at that level (structural invariants,
    per-cone equivalence, placement/timing consistency) and attach the
    full report to the flow result.

    Returns ``(equivalent, verify_report)``.
    """
    if not verify:
        return True, None
    if isinstance(verify, str):
        from repro.verify import LEVELS, audit_flow

        if verify not in LEVELS:
            raise ValueError(
                f"unknown verify level: {verify!r} (expected one of {LEVELS})"
            )
        report = audit_flow(net, result, backend, level=verify,
                            wire_model=wire_model or WireCapModel())
        return report.family_passed("equiv"), report
    return networks_equivalent(net, result.mapped), None


def mis_flow(
    net: Network,
    library: Library,
    mode: str = "area",
    wire_model: Optional[WireCapModel] = None,
    verify: Union[bool, str] = True,
    perf: Optional[PerfOptions] = None,
    matcher=None,
    mapper: str = "tree",
) -> FlowResult:
    """Pipeline 1: MIS mapping, layout afterwards.

    ``perf`` selects the mapper's fast-path configuration (memoization,
    pattern indexing, net caching, ``jobs``); the default enables every
    cache single-threaded.  Results are bit-identical across settings.

    ``verify`` accepts the legacy booleans or an audit level (``"fast"`` /
    ``"full"``, see :func:`_run_verification`).

    ``matcher`` injects a pre-built structural matcher (``repro.serve``
    passes one wired to its warm pattern index and cross-job template
    memo); ``None`` lets the mapper build its own from ``perf``.

    ``mapper`` selects the covering backend (see
    :func:`repro.map.cuts.parse_mapper_spec`): ``"tree"`` is the classic
    DAGON/MIS tree matcher, ``"cuts"`` the priority-cut DAG coverer,
    ``"fusion"`` the best-cover-per-cone race of both, and ``"lut:K"``
    the FPGA-style K-input LUT workload.  Non-tree backends report their
    spec in ``FlowResult.mapper`` (e.g. ``"mis-cuts"``) since they change
    the answer, unlike ``perf``.
    """
    spec = parse_mapper_spec(mapper)
    flow_name = "mis" if spec.kind == "tree" else f"mis-{spec.canonical}"
    start = perf_counter()
    counters_before = (
        OBS.metrics.snapshot_counters() if OBS.enabled else None
    )
    with OBS.span("flow", mapper=flow_name, circuit=net.name,
                  mode=mode) as root:
        with OBS.span("decompose"):
            subject = decompose_to_subject(net)
        if mode not in ("area", "timing"):
            raise ValueError(f"unknown mode: {mode!r}")
        # Pattern-set generation is cached per library; the first flow in a
        # process pays it here, so it gets its own phase row.  The cut
        # backends pay their NPN-table build in the same phase.
        with OBS.span("patterns"):
            if spec.kind == "cuts":
                mapper_obj = CutMapper(library, mode=mode, perf=perf)
            elif spec.kind == "fusion":
                mapper_obj = FusionMapper(library, mode=mode, perf=perf,
                                          matcher=matcher)
            elif spec.kind == "lut":
                mapper_obj = CutMapper(library, mode=mode,
                                       lut_k=spec.lut_k, perf=perf)
            elif mode == "area":
                mapper_obj = MisAreaMapper(library, perf=perf,
                                           matcher=matcher)
            else:
                mapper_obj = MisDelayMapper(library, perf=perf,
                                            matcher=matcher)
        with OBS.span("map", gates=len(subject.gates)):
            result = mapper_obj.map(subject)
        with OBS.span("pads"):
            pad_order = io_affinity_order(net)
            pad_order = _mapped_terminal_names(result.mapped, pad_order)
        with OBS.span("backend"):
            backend = place_and_route(result.mapped, pad_order, wire_model,
                                      perf=perf)
        with OBS.span("verify", enabled=bool(verify)):
            equivalent, verify_report = _run_verification(
                net, result, backend, verify, wire_model
            )
    runtime = perf_counter() - start
    report = None
    if root is not None:
        report = build_report(root, OBS, counters_before,
                              flow=flow_name, circuit=net.name)
    return FlowResult(
        net.name, flow_name, mode, result, backend, equivalent, runtime,
        obs=report, verify_report=verify_report,
    )


def lily_flow(
    net: Network,
    library: Library,
    mode: str = "area",
    options: Optional[LilyOptions] = None,
    wire_model: Optional[WireCapModel] = None,
    verify: Union[bool, str] = True,
    seed_backend_from_mapper: bool = False,
    layout_driven_decomposition: bool = False,
    perf: Optional[PerfOptions] = None,
    matcher=None,
) -> FlowResult:
    """Pipeline 2: pads first, Lily mapping, same layout back-end.

    ``layout_driven_decomposition`` enables the extension the paper's
    conclusion proposes ("consider layout effects during ... node
    decomposition"): the source network is quickly placed against the pads
    and each node's decomposition tree is built proximity-first, so nearby
    signals enter each tree at topologically-near points (Figure 1.1b).

    ``perf``, ``verify`` and ``matcher`` work exactly as in
    :func:`mis_flow`.
    """
    start = perf_counter()
    counters_before = (
        OBS.metrics.snapshot_counters() if OBS.enabled else None
    )
    with OBS.span("flow", mapper="lily", circuit=net.name, mode=mode) as root:
        with OBS.span("pads"):
            pad_order = io_affinity_order(net)
        with OBS.span("decompose", layout_driven=layout_driven_decomposition):
            if layout_driven_decomposition:
                subject = _decompose_layout_driven(
                    net, pad_order,
                    vec=getattr(perf, "vec_place", True) if perf else True,
                )
            else:
                subject = decompose_to_subject(net)
        region = subject_image(len(subject.gates))
        subject_pads = pads_from_order(
            _subject_terminal_names(subject, pad_order), region
        )
        if options is None and mode == "timing":
            # CM-of-Merged keeps the evolving placement balanced and — because
            # both the subject placement and the back-end placement derive from
            # the same connectivity and pad order — transfers best to the final
            # layout in delay mode (Section 3.2's stated advantage).
            options = LilyOptions(position_update="cm_of_merged")
        if mode not in ("area", "timing"):
            raise ValueError(f"unknown mode: {mode!r}")
        # Same cached pattern-set note as mis_flow: first flow pays it here.
        with OBS.span("patterns"):
            if mode == "area":
                mapper = LilyAreaMapper(
                    library, options=options, region=region,
                    pad_positions=subject_pads, perf=perf, matcher=matcher
                )
            else:
                mapper = LilyDelayMapper(
                    library,
                    options=options,
                    region=region,
                    pad_positions=subject_pads,
                    wire_cap=wire_model,
                    perf=perf,
                    matcher=matcher,
                )
        with OBS.span("map", gates=len(subject.gates)):
            result = mapper.map(subject)
        backend_pad_order = _mapped_terminal_names(result.mapped, pad_order)
        seed = None
        if seed_backend_from_mapper:
            seed = {
                g.name: g.position
                for g in result.mapped.gates
                if g.position is not None
            }
        with OBS.span("backend"):
            backend = place_and_route(
                result.mapped, backend_pad_order, wire_model,
                seed_positions=seed, perf=perf
            )
        with OBS.span("verify", enabled=bool(verify)):
            equivalent, verify_report = _run_verification(
                net, result, backend, verify, wire_model
            )
    runtime = perf_counter() - start
    report = None
    if root is not None:
        report = build_report(root, OBS, counters_before,
                              flow="lily", circuit=net.name)
    return FlowResult(
        net.name, "lily", mode, result, backend, equivalent, runtime,
        obs=report, verify_report=verify_report,
    )


def _decompose_layout_driven(net: Network, pad_order: List[str],
                             vec: bool = True):
    """Place the source network, then decompose proximity-first."""
    from repro.place.global_place import GlobalPlacer
    from repro.place.hypergraph import network_netlist

    region = subject_image(max(net.num_literals(), 1))
    known = {n.name for n in net.primary_inputs}
    known.update(n.name for n in net.primary_outputs)
    pads = pads_from_order([n for n in pad_order if n in known], region)
    netlist = network_netlist(net, pads)
    placement = GlobalPlacer(vec=vec).place(netlist, region)
    positions = dict(placement.positions)
    positions.update(pads)  # PIs appear as leaf positions too
    return decompose_to_subject(net, positions=positions)


def _subject_terminal_names(subject, order: List[str]) -> List[str]:
    """Translate source-network terminal names to subject-graph names."""
    known = {n.name for n in subject.primary_inputs}
    known.update(n.name for n in subject.primary_outputs)
    return [name for name in order if name in known]


def _mapped_terminal_names(mapped: MappedNetwork, order: List[str]) -> List[str]:
    known = {n.name for n in mapped.primary_inputs}
    known.update(n.name for n in mapped.primary_outputs)
    return [name for name in order if name in known]
