"""Drivers regenerating Table 1 (area mode) and Table 2 (delay mode).

Each row runs both pipelines on the same circuit with the same pad order,
placer, router and timing model and reports the paper's columns:

* Table 1: total instance area (mm²), final chip area (mm²), total
  interconnection length after detailed routing (mm) — MIS 2.1 vs Lily.
* Table 2: total instance area (mm²) and longest path delay (wiring delay
  included, post detailed placement) — MIS 2.1 vs Lily, 1µ-scaled library.

Circuits are independent of each other, so both drivers can fan the rows
out over worker *processes* (``procs`` / CLI ``--procs N``): each worker
runs one circuit's MIS+Lily pair in its own interpreter (its own GIL, its
own pattern/match caches) and ships the finished row — plus its
:class:`~repro.obs.ObsReport` profiles when requested — back to the
parent, which assembles results in submission order.  Rows are therefore
identical for any ``procs``; only wall-clock changes.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.circuits.suite import TABLE1_CIRCUITS, TABLE2_CIRCUITS, build_circuit
from repro.core.lily import LilyOptions
from repro.flow.pipeline import FlowResult, lily_flow, mis_flow
from repro.library.cell import Library
from repro.library.standard import big_library, scale_library
from repro.obs import OBS, ObsReport
from repro.perf import PerfOptions
from repro.timing.model import WireCapModel

__all__ = [
    "Table1Row",
    "Table2Row",
    "run_table1",
    "run_table2",
    "format_table1",
    "format_table2",
    "geometric_mean_ratios",
]


@dataclass
class Table1Row:
    """One Table 1 row: area-mode MIS vs Lily."""

    circuit: str
    mis_inst: float
    mis_chip: float
    mis_wire: float
    lily_inst: float
    lily_chip: float
    lily_wire: float
    mis_ok: bool = True
    lily_ok: bool = True

    @property
    def chip_ratio(self) -> float:
        """Lily/MIS chip-area ratio (1.0 when MIS area is zero)."""
        return self.lily_chip / self.mis_chip if self.mis_chip else 1.0

    @property
    def wire_ratio(self) -> float:
        """Lily/MIS wirelength ratio (1.0 when MIS length is zero)."""
        return self.lily_wire / self.mis_wire if self.mis_wire else 1.0

    @property
    def inst_ratio(self) -> float:
        """Lily/MIS instance-area ratio (1.0 when MIS area is zero)."""
        return self.lily_inst / self.mis_inst if self.mis_inst else 1.0


@dataclass
class Table2Row:
    """One Table 2 row: delay-mode MIS vs Lily."""

    circuit: str
    mis_inst: float
    mis_delay: float
    lily_inst: float
    lily_delay: float
    mis_ok: bool = True
    lily_ok: bool = True

    @property
    def delay_ratio(self) -> float:
        """Lily/MIS critical-delay ratio (1.0 when MIS delay is zero)."""
        return self.lily_delay / self.mis_delay if self.mis_delay else 1.0


def _table1_circuit(
    name: str,
    scale: float,
    library: Library,
    options: Optional[LilyOptions],
    verify: Union[bool, str],
    perf: Optional[PerfOptions],
    mapper: str = "tree",
) -> Tuple[Table1Row, List[ObsReport]]:
    """One Table 1 row (both flows).  Module-level so it pickles."""
    net = build_circuit(name, scale=scale)
    mis = mis_flow(net, library, mode="area", verify=verify, perf=perf,
                   mapper=mapper)
    lily = lily_flow(net, library, mode="area", options=options,
                     verify=verify, perf=perf)
    row = Table1Row(
        name,
        mis.instance_area_mm2,
        mis.chip_area_mm2,
        mis.wire_length_mm,
        lily.instance_area_mm2,
        lily.chip_area_mm2,
        lily.wire_length_mm,
        mis.equivalent,
        lily.equivalent,
    )
    return row, [r for r in (mis.obs, lily.obs) if r is not None]


def _table2_circuit(
    name: str,
    scale: float,
    library: Library,
    options: Optional[LilyOptions],
    verify: Union[bool, str],
    perf: Optional[PerfOptions],
    wire_model: WireCapModel,
    mapper: str = "tree",
) -> Tuple[Table2Row, List[ObsReport]]:
    """One Table 2 row (both flows).  Module-level so it pickles."""
    net = build_circuit(name, scale=scale)
    mis = mis_flow(net, library, mode="timing", wire_model=wire_model,
                   verify=verify, perf=perf, mapper=mapper)
    lily = lily_flow(net, library, mode="timing", options=options,
                     wire_model=wire_model, verify=verify, perf=perf)
    row = Table2Row(
        name,
        mis.instance_area_mm2,
        mis.delay,
        lily.instance_area_mm2,
        lily.delay,
        mis.equivalent,
        lily.equivalent,
    )
    return row, [r for r in (mis.obs, lily.obs) if r is not None]


def _circuit_in_worker(worker, with_obs: bool, args: tuple):
    """Run one circuit inside a pool worker.

    Workers are fresh interpreters, so the parent's observability session
    does not exist there; when the parent wants profiles the worker
    enables its own session around the flows and the per-flow
    :class:`ObsReport` objects travel back through the result pickle.
    """
    if with_obs:
        OBS.enable()
        try:
            return worker(*args)
        finally:
            OBS.disable()
    return worker(*args)


def _run_suite(worker, per_circuit_args: List[tuple], procs: int,
               obs_out: Optional[List[ObsReport]]) -> List:
    """Shared driver: sequential in-process, or fanned over a pool.

    Results are collected from futures in submission order, so row order
    (and everything derived from it) is independent of scheduling.
    """
    rows = []
    if procs <= 1:
        for args in per_circuit_args:
            row, reports = worker(*args)
            rows.append(row)
            if obs_out is not None:
                obs_out.extend(reports)
        return rows
    with_obs = obs_out is not None
    with ProcessPoolExecutor(max_workers=procs) as pool:
        futures = [
            pool.submit(_circuit_in_worker, worker, with_obs, args)
            for args in per_circuit_args
        ]
        for future in futures:
            row, reports = future.result()
            rows.append(row)
            if obs_out is not None:
                obs_out.extend(reports)
    return rows


def run_table1(
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    library: Optional[Library] = None,
    options: Optional[LilyOptions] = None,
    verify: Union[bool, str] = True,
    perf: Optional[PerfOptions] = None,
    procs: Optional[int] = None,
    obs_out: Optional[List[ObsReport]] = None,
    mapper: str = "tree",
) -> List[Table1Row]:
    """Regenerate Table 1 over the named circuits.

    ``procs > 1`` fans circuits over a process pool (defaults to
    ``perf.procs``); rows are identical for any value.  ``obs_out``, when
    given a list, receives one :class:`ObsReport` per flow — from worker
    processes too — ready for :func:`repro.obs.merge_reports`.
    ``mapper`` selects the MIS column's covering backend
    (``tree``/``cuts``/``fusion``/``lut:K``); Lily stays tree-based.
    """
    library = library or big_library()
    if procs is None:
        procs = perf.procs if perf is not None else 1
    args = [
        (name, scale, library, options, verify, perf, mapper)
        for name in circuits or TABLE1_CIRCUITS
    ]
    return _run_suite(_table1_circuit, args, procs, obs_out)


def run_table2(
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    library: Optional[Library] = None,
    options: Optional[LilyOptions] = None,
    verify: Union[bool, str] = True,
    perf: Optional[PerfOptions] = None,
    procs: Optional[int] = None,
    obs_out: Optional[List[ObsReport]] = None,
    mapper: str = "tree",
) -> List[Table2Row]:
    """Regenerate Table 2 over the named circuits.

    Gate delays and input capacitances are linearly scaled 3µ -> 1µ, as in
    Section 5.  The wire capacitance *per unit length* is left unscaled:
    interconnect capacitance per micron is roughly technology-independent,
    which is exactly why "as technology scales down, the contribution of
    wiring to the delay becomes significant and even dominating" [4, 13].

    ``procs`` / ``obs_out`` work exactly as in :func:`run_table1`.
    """
    if library is None:
        library = scale_library(big_library(), 1.0 / 3.0, name="big_1u")
    if procs is None:
        procs = perf.procs if perf is not None else 1
    # 0.4/0.3 fF/µm: 3µ-era metal with fringing — keeps the wire share of
    # path delay in the regime the paper's experiment probes.
    wire_model = WireCapModel(4.0e-4, 3.0e-4)
    args = [
        (name, scale, library, options, verify, perf, wire_model, mapper)
        for name in circuits or TABLE2_CIRCUITS
    ]
    return _run_suite(_table2_circuit, args, procs, obs_out)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def geometric_mean_ratios(ratios: Sequence[float]) -> float:
    """Geometric mean of the given ratios (1.0 for an empty sequence)."""
    if not ratios:
        return 1.0
    product = 1.0
    for r in ratios:
        product *= max(r, 1e-12)
    return product ** (1.0 / len(ratios))


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render Table 1 rows in the paper's layout."""
    lines = [
        "Table 1: area-mode comparison, MIS2.1 vs Lily "
        "(inst/chip area mm^2, wire mm)",
        f"{'Ex.':<10}{'inst':>8}{'chip':>8}{'wire':>9}"
        f"{'inst':>9}{'chip':>8}{'wire':>9}{'ok':>4}",
        f"{'':<10}{'--- MIS2.1 ---':>25}{'---- Lily ----':>26}",
    ]
    for r in rows:
        ok = "y" if (r.mis_ok and r.lily_ok) else "N"
        lines.append(
            f"{r.circuit:<10}{r.mis_inst:>8.3f}{r.mis_chip:>8.3f}"
            f"{r.mis_wire:>9.1f}{r.lily_inst:>9.3f}{r.lily_chip:>8.3f}"
            f"{r.lily_wire:>9.1f}{ok:>4}"
        )
    inst = geometric_mean_ratios([r.inst_ratio for r in rows])
    chip = geometric_mean_ratios([r.chip_ratio for r in rows])
    wire = geometric_mean_ratios([r.wire_ratio for r in rows])
    lines.append(
        f"geomean Lily/MIS: inst {inst:.3f}  chip {chip:.3f}  wire {wire:.3f}"
    )
    return "\n".join(lines)


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Render Table 2 rows in the paper's layout."""
    lines = [
        "Table 2: delay-mode comparison, MIS2.1 vs Lily "
        "(inst area mm^2, delay ns, 1u-scaled library)",
        f"{'Ex.':<10}{'inst':>8}{'delay':>9}{'inst':>9}{'delay':>9}{'ok':>4}",
        f"{'':<10}{'-- MIS2.1 --':>17}{'--- Lily ---':>18}",
    ]
    for r in rows:
        ok = "y" if (r.mis_ok and r.lily_ok) else "N"
        lines.append(
            f"{r.circuit:<10}{r.mis_inst:>8.3f}{r.mis_delay:>9.2f}"
            f"{r.lily_inst:>9.3f}{r.lily_delay:>9.2f}{ok:>4}"
        )
    delay = geometric_mean_ratios([r.delay_ratio for r in rows])
    lines.append(f"geomean Lily/MIS delay: {delay:.3f}")
    return "\n".join(lines)
