"""End-to-end flows: the two Section 5 pipelines (MIS-then-layout and
Lily-with-layout) sharing an identical placement/routing back-end, plus the
drivers that regenerate Tables 1 and 2."""

from repro.flow.pipeline import (
    BackendResult,
    FlowResult,
    lily_flow,
    mis_flow,
    place_and_route,
)
from repro.flow.tables import (
    Table1Row,
    Table2Row,
    format_table1,
    format_table2,
    run_table1,
    run_table2,
)

__all__ = [
    "BackendResult",
    "FlowResult",
    "mis_flow",
    "lily_flow",
    "place_and_route",
    "Table1Row",
    "Table2Row",
    "run_table1",
    "run_table2",
    "format_table1",
    "format_table2",
]
