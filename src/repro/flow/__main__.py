"""Command-line driver.

Commands:
    table1                regenerate Table 1 (area mode)
    table2                regenerate Table 2 (delay mode)
    report <circuit>      detailed MIS-vs-Lily report for one circuit
                          (``--svg out.svg`` also writes the Lily layout)
    verify <circuit>      run both flows under the ``repro.verify`` audit
                          and print the full checker report
"""

from __future__ import annotations

import argparse
import sys

from repro.flow.tables import (
    format_table1,
    format_table2,
    run_table1,
    run_table2,
)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(prog="repro.flow")
    parser.add_argument("command",
                        choices=["table1", "table2", "report", "verify"])
    parser.add_argument("circuits", nargs="*",
                        help="circuit names (default: full table)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="size scale for the synthetic circuits")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip equivalence checking (faster)")
    parser.add_argument("--verify", choices=["fast", "full"], default=None,
                        dest="verify_level", metavar="LEVEL",
                        help="run the repro.verify audit at LEVEL "
                             "(fast|full) instead of the plain "
                             "equivalence check")
    parser.add_argument("--mode", choices=["area", "timing"], default="area",
                        help="pipeline mode for 'report'")
    parser.add_argument("--mapper", default="tree", metavar="SPEC",
                        help="covering backend for the MIS pipeline: "
                             "tree (the paper's dynamic-programming tree "
                             "mapper, default), cuts (priority-cut "
                             "enumeration + NPN boolean matching), fusion "
                             "(best of tree/cuts per output cone), or "
                             "lut:K (FPGA-style K-input LUT covering)")
    parser.add_argument("--svg", default=None,
                        help="write the Lily layout as SVG (report only)")
    parser.add_argument("--profile", action="store_true",
                        help="print the per-phase time/counter breakdown "
                             "(report: per flow; table1/table2: one "
                             "profile merged over every circuit)")
    parser.add_argument("--trace", default=None, metavar="OUT.JSON",
                        help="write a Chrome trace_event JSON file loadable "
                             "in chrome://tracing or Perfetto (report only)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker threads for the parallel cone match "
                             "pre-warm (default 1: in-process)")
    parser.add_argument("--procs", type=int, default=1, metavar="N",
                        help="worker processes for table1/table2: circuits "
                             "fan out over a process pool, one MIS+Lily "
                             "pair per worker (default 1: sequential; rows "
                             "are identical for any N)")
    parser.add_argument("--server", action="store_true",
                        help="route table1/table2 through an in-process "
                             "repro.serve service: warm shared library/"
                             "pattern state plus a content-addressed result "
                             "cache, so repeated circuits (and repeated "
                             "runs with --server-spill) map once")
    parser.add_argument("--server-spill", default=None, metavar="DIR",
                        help="spill the serve result cache to DIR so "
                             "back-to-back CLI runs share it "
                             "(implies --server)")
    parser.add_argument("--cluster", type=int, default=None, metavar="N",
                        help="shard the serve backend: an N-shard "
                             "consistent-hash ClusterRouter with a shared "
                             "spill tier instead of one server (implies "
                             "--server; --procs workers per shard)")
    parser.add_argument("--naive-perf", action="store_true",
                        help="disable the mapper fast paths (match "
                             "memoization, pattern index, net cache, "
                             "incremental placement/timing); results are "
                             "identical, just slower")
    parser.add_argument("--naive-kernels", action="store_true",
                        help="disable only the struct-of-arrays numpy "
                             "kernels (vectorized HPWL/net boxes, sparse "
                             "quadratic assembly, array STA, routing "
                             "estimators); results are "
                             "identical, just slower (implied by "
                             "--naive-perf)")
    args = parser.parse_args(argv)

    import dataclasses

    from repro.perf import PerfOptions

    perf = PerfOptions.naive() if args.naive_perf else PerfOptions()
    if args.naive_kernels:
        perf = dataclasses.replace(
            perf, vec_place=False, vec_sta=False, vec_route=False)
    perf = perf.with_jobs(args.jobs).with_procs(args.procs)

    from repro.map.cuts import MapperSpecError, parse_mapper_spec

    circuits = args.circuits or None
    try:
        parse_mapper_spec(args.mapper)
    except MapperSpecError as exc:
        raise SystemExit(str(exc))
    if args.no_verify and args.verify_level:
        raise SystemExit("--no-verify and --verify are mutually exclusive")
    if args.procs > 1 and (args.svg or args.trace):
        # Span trees live in the worker processes; only aggregated
        # ObsReports come back, so a single Chrome trace (or the report
        # command's SVG) cannot be assembled across the pool.
        raise SystemExit("--procs is incompatible with --svg/--trace")
    verify = False if args.no_verify else (args.verify_level or True)
    if args.server_spill or args.cluster is not None:
        args.server = True
    if args.cluster is not None and args.cluster < 1:
        raise SystemExit("--cluster expects a shard count >= 1")
    if args.server and args.command not in ("table1", "table2"):
        raise SystemExit("--server only applies to table1/table2")
    if args.command in ("table1", "table2"):
        if args.server:
            return _tables_served(args, circuits, verify)
        return _tables(args, circuits, verify, perf)
    if args.command == "verify":
        return _verify(args, perf)
    _report(args, verify, perf)
    return 0


def _tables(args, circuits, verify, perf) -> int:
    """The ``table1`` / ``table2`` commands (optionally process-parallel)."""
    from repro.obs import OBS, merge_reports

    obs_out = [] if args.profile else None
    observing = args.profile and perf.procs <= 1
    if observing:
        # Sequential runs record in this process; workers bring their own
        # sessions (see flow.tables._circuit_in_worker).
        OBS.enable()
    try:
        if args.command == "table1":
            rows = run_table1(circuits, scale=args.scale, verify=verify,
                              perf=perf, obs_out=obs_out, mapper=args.mapper)
            print(format_table1(rows))
        else:
            rows = run_table2(circuits, scale=args.scale, verify=verify,
                              perf=perf, obs_out=obs_out, mapper=args.mapper)
            print(format_table2(rows))
    finally:
        if observing:
            OBS.disable()
    if obs_out:
        merged = merge_reports(obs_out)
        print()
        print(merged.format_table())
    return 0


def _tables_served(args, circuits, verify) -> int:
    """``table1``/``table2`` with every cell answered by ``repro.serve``.

    The service holds the warm library/pattern state and a
    content-addressed result cache (optionally spilled to
    ``--server-spill DIR``, which back-to-back CLI invocations share).
    A cache-statistics line follows the table so hits are visible.
    """
    from repro.obs import OBS
    from repro.serve import Client, ServerConfig
    from repro.serve.driver import run_table1_served, run_table2_served

    if args.cluster is not None:
        from repro.serve.cluster import ClusterConfig, ClusterRouter

        backend = ClusterRouter(ClusterConfig(
            shards=args.cluster, workers=max(1, args.procs),
            spill_dir=args.server_spill))
        client_cm = Client.wrap(backend)
    else:
        client_cm = Client.in_process(ServerConfig(
            workers=max(1, args.procs), spill_dir=args.server_spill))
    if args.profile:
        OBS.enable()
    try:
        with client_cm as client:
            if args.command == "table1":
                rows = run_table1_served(client, circuits, scale=args.scale,
                                         verify=verify, mapper=args.mapper)
                print(format_table1(rows))
            else:
                rows = run_table2_served(client, circuits, scale=args.scale,
                                         verify=verify, mapper=args.mapper)
                print(format_table2(rows))
            stats = client.stats()
            cache = stats["cache"]
            print(f"serve: {stats['counters']['jobs']} jobs, "
                  f"{cache['hits']} cache hits "
                  f"({cache['disk_hits']} from disk), "
                  f"{cache['misses']} misses, "
                  f"{stats['counters']['degraded']} degraded")
            if "router" in stats:
                router = stats["router"]
                print(f"cluster: {router['shards_alive']}/"
                      f"{router['shards']} shards alive, "
                      f"{router['routed']} routed, "
                      f"{router['failovers']} failovers")
            latency = client.metrics().get(
                "histograms", {}).get("serve.latency_s")
            if latency and latency.get("count"):
                print(f"serve latency_s: p50 {latency['p50']:.4g}, "
                      f"p90 {latency['p90']:.4g}, "
                      f"p99 {latency['p99']:.4g} "
                      f"({latency['count']} mapped)")
            if args.profile:
                merged = client.server.merged_obs()
                if merged is not None:
                    print()
                    print(merged.format_table())
    finally:
        if args.profile:
            OBS.disable()
    return 0


def _verify(args, perf) -> int:
    """The ``verify`` command: audit both flows on each circuit.

    Runs the MIS and Lily pipelines (in the requested mode) with the
    ``repro.verify`` audit attached and prints every checker's verdict.
    Returns a non-zero exit code if any check fails, so the command works
    as a CI gate.
    """
    from repro.circuits.suite import SUITE, TABLE1_CIRCUITS, build_circuit
    from repro.flow.pipeline import lily_flow, mis_flow
    from repro.library.standard import big_library

    level = args.verify_level or "fast"
    library = big_library()
    failures = 0
    unknown = [name for name in args.circuits if name not in SUITE]
    if unknown:
        raise SystemExit(
            f"unknown circuit(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(SUITE))})")
    for name in args.circuits or TABLE1_CIRCUITS:
        net = build_circuit(name, scale=args.scale)
        for flow_fn in (mis_flow, lily_flow):
            if flow_fn is mis_flow:
                result = flow_fn(net, library, mode=args.mode, verify=level,
                                 perf=perf, mapper=args.mapper)
            else:
                result = flow_fn(net, library, mode=args.mode, verify=level,
                                 perf=perf)
            report = result.verify_report
            counts = report.counts()
            status = "ok" if report.passed else "FAILED"
            print(f"== {name} / {result.mapper} / {args.mode}: "
                  f"{counts['passed']}/{counts['run']} checks passed "
                  f"[{status}]")
            if not report.passed:
                failures += counts["failed"]
                for check in report.failures:
                    print(f"   {check}")
    print()
    if failures:
        print(f"verification FAILED: {failures} failing checks")
        return 1
    print(f"verification passed (level={level})")
    return 0


def _report(args, verify, perf) -> None:
    from repro.circuits.suite import build_circuit
    from repro.flow.pipeline import lily_flow, mis_flow
    from repro.flow.report import circuit_report, comparison_report
    from repro.library.standard import big_library
    from repro.obs import OBS

    if not args.circuits:
        raise SystemExit("report needs a circuit name")
    if args.trace:
        # Fail before running the flows, not after minutes of mapping.
        try:
            with open(args.trace, "w"):
                pass
        except OSError as exc:
            raise SystemExit(f"cannot write trace file {args.trace!r}: {exc}")
    observing = bool(args.profile or args.trace)
    if observing:
        OBS.enable()
    library = big_library()
    try:
        for name in args.circuits:
            net = build_circuit(name, scale=args.scale)
            mis = mis_flow(net, library, mode=args.mode, verify=verify,
                           perf=perf, mapper=args.mapper)
            lily = lily_flow(net, library, mode=args.mode, verify=verify,
                             perf=perf)
            print(comparison_report(mis, lily))
            print()
            print(circuit_report(lily))
            for result in (mis, lily):
                report = result.verify_report
                if report is None:
                    continue
                counts = report.counts()
                print(f"\nverify[{result.mapper}]: {counts['passed']}/"
                      f"{counts['run']} checks passed (level={report.level})")
                for check in report.failures:
                    print(f"  {check}")
            if args.profile:
                for result in (mis, lily):
                    if result.obs is not None:
                        print()
                        print(result.obs.format_table())
            if args.svg:
                from repro.viz import layout_svg

                svg = layout_svg(
                    lily.backend.routed, lily.backend.pad_positions
                )
                with open(args.svg, "w") as f:
                    f.write(svg)
                print(f"\nlayout written to {args.svg}")
        if args.trace:
            OBS.tracer.write_chrome_trace(args.trace)
            print(f"\ntrace written to {args.trace} "
                  f"(open in chrome://tracing or Perfetto)")
    finally:
        if observing:
            OBS.disable()


if __name__ == "__main__":
    sys.exit(main())
