"""``repro.serve`` — mapping-as-a-service with warm shared state.

The repeated-request shape of physically-aware flows (map→place loops,
mapper fusion, suite regeneration) is exactly what a resident service
amortises: the MSU library is parsed once, pattern graphs and the
pattern index are built once and shared read-only by a worker pool, and
results are cached content-addressed by (netlist hash, library hash,
canonical options) with LRU bounds and optional disk spill.

Scale-out lives in ``repro.serve.cluster``: a :class:`ClusterRouter`
consistent-hashes jobs across N shard servers sharing one disk-spill
cache tier, with bounded queues, load shedding (``retry_after_s``) and
automatic failover off dead shards — behind the exact same protocol
surface, so every client and frontend below works on a cluster too.

Entry points:

* Python — ``Client.in_process()`` / ``Client.subprocess()`` /
  ``Client.connect(host, port)`` — plus ``AsyncClient`` for pipelined
  (many-in-flight) traffic over one connection;
* wire — ``python -m repro.serve`` (stdio JSON lines, or ``--socket``;
  ``--cluster N`` serves an N-shard cluster instead of one server);
* CLI — ``python -m repro.flow table1 --server`` routes the table
  drivers through an in-process service (``--cluster N`` shards it).

See ``docs/SERVING.md`` for the protocol, cache-keying and degradation
rules, and ``docs/OPERATIONS.md`` for deploying and sizing clusters.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import AsyncClient, Client, ServeProtocolError
from repro.serve.cluster import (
    ClusterConfig,
    ClusterRouter,
    HashRing,
    route_key,
)
from repro.serve.driver import run_table1_served, run_table2_served
from repro.serve.jobs import (
    JobError,
    JobSpec,
    build_payload,
    job_key,
    library_hash,
    network_hash,
    payload_hash,
)
from repro.serve.protocol import handle_request, serve_socket, serve_stream
from repro.serve.server import (
    JobCancelled,
    JobHandle,
    MappingServer,
    ServerClosed,
    ServerConfig,
    ServerOverloaded,
)
from repro.serve.state import WarmState, reset_warm_states, warm_state_for

__all__ = [
    "Client",
    "AsyncClient",
    "ServeProtocolError",
    "ClusterRouter",
    "ClusterConfig",
    "HashRing",
    "route_key",
    "ServerOverloaded",
    "ServerClosed",
    "JobSpec",
    "JobError",
    "JobHandle",
    "JobCancelled",
    "MappingServer",
    "ServerConfig",
    "ResultCache",
    "WarmState",
    "warm_state_for",
    "reset_warm_states",
    "job_key",
    "network_hash",
    "library_hash",
    "build_payload",
    "payload_hash",
    "handle_request",
    "serve_stream",
    "serve_socket",
    "run_table1_served",
    "run_table2_served",
]
