"""Route the Table 1 / Table 2 drivers through a mapping service.

``repro.flow --server`` builds the same rows as
:func:`repro.flow.tables.run_table1` / ``run_table2`` but sources every
(circuit, flow, mode) cell from a :class:`~repro.serve.client.Client`.
Because the service is content-addressed, repeating a circuit within a
run — or re-running the suite against the same spill directory — pays
the mapping cost once and answers the rest from cache.

Payload numbers are bit-identical to the direct drivers' (same flows,
same defaults), so ``format_table1``/``format_table2`` render the served
rows unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.circuits.suite import TABLE1_CIRCUITS, TABLE2_CIRCUITS
from repro.flow.tables import Table1Row, Table2Row
from repro.serve.client import Client

__all__ = ["run_table1_served", "run_table2_served", "ServeJobFailed",
           "TABLE2_WIRE_CAP"]

#: The Table 2 wire model (pF/µm), mirrored from ``flow.tables.run_table2``.
TABLE2_WIRE_CAP = (4.0e-4, 3.0e-4)


class ServeJobFailed(RuntimeError):
    """Raised when the service answers a non-ok envelope for a table cell."""

    def __init__(self, circuit: str, flow: str, envelope: Dict[str, Any]):
        self.envelope = envelope
        super().__init__(
            f"{circuit}/{flow}: {envelope.get('status', 'error')}: "
            f"{envelope.get('error', 'no detail')}")


def _cell(client: Client, circuit: str, flow: str, mode: str, scale: float,
          verify: Union[bool, str], **options: Any) -> Dict[str, Any]:
    envelope = client.map_circuit(
        circuit, flow=flow, mode=mode, scale=scale, verify=verify, **options)
    if not envelope.get("ok"):
        raise ServeJobFailed(circuit, flow, envelope)
    return envelope["result"]


def run_table1_served(
    client: Client,
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    verify: Union[bool, str] = True,
    mapper: str = "tree",
) -> List[Table1Row]:
    """Table 1 rows with both flows served per circuit.

    ``mapper`` selects the MIS column's covering backend; the Lily cell
    is always tree-mapped (the serve layer rejects anything else).
    """
    rows: List[Table1Row] = []
    for name in circuits or TABLE1_CIRCUITS:
        mis = _cell(client, name, "mis", "area", scale, verify,
                    mapper=mapper)
        lily = _cell(client, name, "lily", "area", scale, verify)
        rows.append(Table1Row(
            name,
            mis["instance_area_mm2"], mis["chip_area_mm2"],
            mis["wire_length_mm"],
            lily["instance_area_mm2"], lily["chip_area_mm2"],
            lily["wire_length_mm"],
            mis["equivalent"], lily["equivalent"],
        ))
    return rows


def run_table2_served(
    client: Client,
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    verify: Union[bool, str] = True,
    mapper: str = "tree",
) -> List[Table2Row]:
    """Table 2 rows (1µ-scaled library + heavy wire model) served."""
    options = {"library": "big_1u", "wire_cap": list(TABLE2_WIRE_CAP)}
    rows: List[Table2Row] = []
    for name in circuits or TABLE2_CIRCUITS:
        mis = _cell(client, name, "mis", "timing", scale, verify,
                    mapper=mapper, **options)
        lily = _cell(client, name, "lily", "timing", scale, verify, **options)
        rows.append(Table2Row(
            name,
            mis["instance_area_mm2"], mis["delay_ns"],
            lily["instance_area_mm2"], lily["delay_ns"],
            mis["equivalent"], lily["equivalent"],
        ))
    return rows
