"""Scale-out serving: a consistent-hash router over MappingServer shards.

A :class:`ClusterRouter` owns N *shards* — each a full
:class:`~repro.serve.server.MappingServer` with its own worker pool,
result cache and warm state — and routes every job to one of them by
consistent-hashing its :func:`route_key` (the netlist/library
identity, *excluding* flow/mode/options) over a virtual-node
:class:`HashRing`.  Same netlist, same shard: the shard that parsed a
circuit once serves every flow/mode variant of it from warm state,
which is what makes N shards behave like N× capacity instead of N
cold caches.

The shards share one disk-spill directory, so their
:class:`~repro.serve.cache.ResultCache` tiers form a cluster-wide warm
tier: when a shard dies and its keys re-hash to a neighbour, the
neighbour's first miss falls through to the shared spill and answers
warm anyway.

Failure and overload semantics (the operator contract, long form in
``docs/OPERATIONS.md``):

* **dead shard** — a shard answering ``status: "unavailable"`` (or
  whose transport breaks) is marked down and the job retries on the
  next shard in the key's ring preference; the ring itself never
  rebuilds, so surviving keys don't move.  ``serve.cluster.failovers``
  counts the re-routes.
* **overload** — shards run bounded queues
  (``ServerConfig.max_queue_depth``); a shed job answers
  ``status: "overloaded"`` with ``retry_after_s`` *from its owning
  shard* and is **not** spilled to a sibling — spreading a hot key
  would trade one shard's backlog for N cold caches.  Clients back
  off and retry.
* **cache hits never shed** — they cost no worker, so a saturated
  cluster keeps answering its warm traffic.

The router duck-types the ``MappingServer`` surface (``run`` /
``stats`` / ``metrics_snapshot`` / ``health_snapshot`` / ``events`` /
``shutdown`` / ``pipeline_width``), so every existing frontend —
``handle_request``, ``serve_stream``, ``serve_socket``,
``Client.wrap`` and ``python -m repro.obs.monitor`` — works unchanged
with a cluster behind it.  Response envelopes additionally carry
``"shard": <index>``.

Metrics aggregate through
:func:`repro.obs.metrics.merge_metrics_snapshots`: counters and queue
gauges sum across shards, latency histograms merge bucket-exactly (the
cluster p99 is computed from the union of every shard's samples), and
each shard's histograms are also re-exported under a ``shard<i>.``
prefix so per-shard and cluster-aggregate percentiles are both
scrapeable live from the one ``metrics`` verb.

Run one from the CLI with ``python -m repro.serve --cluster 4``
(stdio or socket frontend), or drive it from ``repro.flow`` with
``--server --cluster 4``.
"""

from __future__ import annotations

import bisect
import hashlib
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs.events import EventLog, new_request_id
from repro.obs.metrics import merge_metrics_snapshots
from repro.serve.jobs import JobSpec
from repro.serve.server import MappingServer, ServerConfig

__all__ = ["ClusterRouter", "ClusterConfig", "HashRing", "route_key"]


def route_key(spec: JobSpec) -> str:
    """The shard-affinity key of a job: netlist + library identity.

    Deliberately *narrower* than the result-cache key
    (:func:`repro.serve.jobs.job_key`): flow, mode and option fields
    are excluded, so every variant of one netlist+library pair lands
    on the same shard and shares its warm parse/index state.  Raw-BLIF
    jobs key on the BLIF content hash, named-suite jobs on the name;
    ``scale`` is included because scaled clones are distinct netlists.
    """
    if spec.circuit:
        net = f"circuit:{spec.circuit}"
    else:
        blif = spec.blif or ""
        net = "blif:" + hashlib.sha256(blif.encode("utf-8")).hexdigest()
    genlib = (hashlib.sha256(spec.genlib.encode("utf-8")).hexdigest()[:16]
              if spec.genlib else "-")
    return f"{net}|{spec.scale:g}|{spec.library}|{genlib}"


class HashRing:
    """A consistent-hash ring with virtual nodes.

    Each node is hashed to ``replicas`` points on a 64-bit ring; a key
    maps to the first node point at or after its own hash.  Removing a
    node deletes only that node's points, so only the keys it owned
    move (to their next preference) — the property the cluster leans
    on for shard-death failover.
    """

    def __init__(self, nodes: List[int], replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: List[int] = []
        self._owner: Dict[int, int] = {}
        self._nodes: List[int] = []
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(text: str) -> int:
        return int.from_bytes(
            hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")

    def add(self, node: int) -> None:
        """Insert a node's virtual points (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.append(node)
        for replica in range(self.replicas):
            point = self._hash(f"node:{node}:{replica}")
            self._owner[point] = node
            bisect.insort(self._points, point)

    def remove(self, node: int) -> None:
        """Delete a node's virtual points; other keys don't move."""
        if node not in self._nodes:
            return
        self._nodes.remove(node)
        for replica in range(self.replicas):
            point = self._hash(f"node:{node}:{replica}")
            if self._owner.get(point) == node:
                del self._owner[point]
                index = bisect.bisect_left(self._points, point)
                if index < len(self._points) \
                        and self._points[index] == point:
                    del self._points[index]

    def __len__(self) -> int:
        return len(self._nodes)

    def node_for(self, key: str) -> int:
        """The owning node of ``key`` (raises on an empty ring)."""
        preference = self.preference(key, 1)
        if not preference:
            raise KeyError("hash ring is empty")
        return preference[0]

    def preference(self, key: str, count: Optional[int] = None) -> List[int]:
        """Distinct nodes in ring order from ``key``'s hash: the
        failover sequence (first entry owns the key)."""
        if not self._points:
            return []
        want = len(self._nodes) if count is None else min(
            count, len(self._nodes))
        start = bisect.bisect_right(self._points, self._hash(key))
        order: List[int] = []
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            node = self._owner[point]
            if node not in order:
                order.append(node)
                if len(order) >= want:
                    break
        return order


@dataclass(frozen=True)
class ClusterConfig:
    """Topology and per-shard tuning of one cluster.

    Attributes:
        shards: shard (``MappingServer``) count.
        workers: worker threads *per shard*.
        cache_entries: in-memory result-cache bound per shard.
        spill_dir: the shared disk-spill directory (the cluster-wide
            warm tier).  ``None``: the router makes a private temp dir
            so spill sharing works out of the box.
        timeout_s: default per-job timeout, as in ``ServerConfig``.
        max_queue_depth: per-shard queue bound; ``None`` disables
            shedding (not recommended beyond tests — see
            ``docs/OPERATIONS.md`` for sizing).
        slow_request_s: per-shard slow-request threshold.
        replicas: virtual nodes per shard on the hash ring.
        event_ring: event-log bound for the router *and* each shard.
    """

    shards: int = 4
    workers: int = 2
    cache_entries: int = 128
    spill_dir: Optional[str] = None
    timeout_s: Optional[float] = None
    max_queue_depth: Optional[int] = None
    slow_request_s: float = 5.0
    replicas: int = 64
    event_ring: int = 4096


class _Shard:
    """One in-process shard: a ``MappingServer`` plus liveness state."""

    def __init__(self, index: int, server: MappingServer) -> None:
        self.index = index
        self.server = server
        self.alive = True

    def submit(self, spec: JobSpec, timeout: Optional[float],
               request_id: Optional[str]) -> Dict[str, Any]:
        """Run one job on this shard; always returns an envelope.

        Job-level exceptions (bad circuit name, parse failure) become
        ``status: "error"`` envelopes exactly as the wire protocol
        would answer them — so the router only ever treats *raised*
        exceptions as transport/shard failures, never as bad jobs.
        """
        try:
            return self.server.run(spec, timeout=timeout,
                                   request_id=request_id)
        except Exception as exc:  # noqa: BLE001 — mirror handle_request
            return {"ok": False, "status": "error",
                    "request_id": request_id,
                    "error": f"{type(exc).__name__}: {exc}"}

    def kill(self) -> None:
        """Shut this shard's server down *without* telling the router —
        a simulated crash.  The router discovers it when the next
        routed job answers ``status: "unavailable"`` and fails over."""
        self.server.shutdown(wait=False)


class _ClusterEvents:
    """The cluster's ``events`` verb backend: the router's own routing
    events merged with every live shard's ring, sorted by timestamp —
    so one ``events`` request still reconstructs a request's full
    lifecycle even though its records live on two processes' logs.
    """

    def __init__(self, router: "ClusterRouter", log: EventLog) -> None:
        self._router = router
        self.log = log

    def emit(self, kind: str, request_id: Optional[str] = None,
             **attrs: Any) -> Dict[str, Any]:
        """Record a router-level event (delegates to the own log)."""
        return self.log.emit(kind, request_id, **attrs)

    def __len__(self) -> int:
        return len(self.log)

    def events(self, request_id: Optional[str] = None,
               kind: Optional[str] = None,
               limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Merged event records (router + live shards), oldest first;
        filters as in :meth:`repro.obs.events.EventLog.events`."""
        records = self.log.events(request_id=request_id, kind=kind)
        for shard in self._router.shards:
            if not shard.alive:
                continue
            for record in shard.server.events.events(
                    request_id=request_id, kind=kind):
                record = dict(record)
                record["shard"] = shard.index
                records.append(record)
        records.sort(key=lambda r: (r.get("ts", 0.0), r.get("seq", 0)))
        if limit is not None and limit >= 0:
            records = records[len(records) - min(limit, len(records)):]
        return records

    def close(self) -> None:
        """Close the router's own log."""
        self.log.close()


class ClusterRouter:
    """N ``MappingServer`` shards behind one consistent-hash router.

    Duck-types the single-server surface, so anything that serves or
    scrapes a ``MappingServer`` serves or scrapes a cluster unchanged.
    """

    def __init__(self, config: Optional[ClusterConfig] = None,
                 **kwargs: Any) -> None:
        """``kwargs`` are :class:`ClusterConfig` field overrides, so
        ``ClusterRouter(shards=4)`` works without building a config."""
        if config is None:
            config = ClusterConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a ClusterConfig or field overrides")
        if config.shards < 1:
            raise ValueError("a cluster needs at least one shard")
        self.config = config
        self._owns_spill = config.spill_dir is None
        self.spill_dir = config.spill_dir or tempfile.mkdtemp(
            prefix="repro-cluster-spill-")
        self.shards: List[_Shard] = [
            _Shard(index, MappingServer(ServerConfig(
                workers=config.workers,
                cache_entries=config.cache_entries,
                spill_dir=self.spill_dir,
                timeout_s=config.timeout_s,
                max_queue_depth=config.max_queue_depth,
                slow_request_s=config.slow_request_s,
                event_ring=config.event_ring,
            )))
            for index in range(config.shards)
        ]
        self.ring = HashRing(list(range(config.shards)),
                             replicas=config.replicas)
        self._lock = threading.Lock()
        self._closed = False
        self._started = time.monotonic()
        self.counters: Dict[str, int] = {
            "jobs": 0, "routed": 0, "failovers": 0, "shards_lost": 0,
            "no_capacity": 0,
        }
        self.events = _ClusterEvents(self, EventLog(config.event_ring))
        self.events.emit("cluster.start", shards=config.shards,
                         workers=config.workers, spill_dir=self.spill_dir)

    # -- routing ------------------------------------------------------------

    def _count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + delta

    def mark_down(self, index: int) -> None:
        """Take a shard out of rotation (its ring points go away; keys
        it owned re-hash to their next preference, everyone else's keys
        stay put)."""
        shard = self.shards[index]
        if not shard.alive:
            return
        shard.alive = False
        self.ring.remove(index)
        self._count("shards_lost")
        self.events.emit("cluster.shard_down", shard=index,
                         alive=self.alive_count())

    def alive_count(self) -> int:
        """Shards currently in rotation."""
        return sum(1 for shard in self.shards if shard.alive)

    def shard_for(self, spec: JobSpec) -> int:
        """The index of the shard currently owning ``spec``'s key."""
        return self.ring.node_for(route_key(spec))

    def run(self, spec: JobSpec, timeout: Optional[float] = None,
            request_id: Optional[str] = None) -> Dict[str, Any]:
        """Route one job; returns its envelope, stamped with ``shard``.

        Walks the key's ring preference: the owner first, then — only
        if the owner turns out dead (``status: "unavailable"`` or a
        transport failure) — the next shards in order, marking dead
        ones down as it goes.  Overload does *not* fail over (see the
        module docstring); the shed envelope returns to the caller
        with its ``retry_after_s`` intact.
        """
        request_id = request_id or new_request_id()
        self._count("jobs")
        key = route_key(spec)
        preference = self.ring.preference(key)
        for hop, index in enumerate(preference):
            shard = self.shards[index]
            if not shard.alive:
                continue
            try:
                envelope = shard.submit(spec, timeout, request_id)
            except Exception as exc:  # noqa: BLE001 — treat as shard death
                self.events.emit("cluster.shard_error", request_id,
                                 shard=index,
                                 error=f"{type(exc).__name__}: {exc}")
                self.mark_down(index)
                self._count("failovers")
                continue
            if envelope.get("status") == "unavailable":
                self.mark_down(index)
                self._count("failovers")
                continue
            envelope = dict(envelope)
            envelope["shard"] = index
            self._count("routed")
            if hop:
                self.events.emit("cluster.rerouted", request_id,
                                 shard=index, hops=hop)
            return envelope
        self._count("no_capacity")
        self.events.emit("cluster.no_capacity", request_id)
        return {
            "ok": False, "status": "unavailable",
            "request_id": request_id,
            "error": "no live shards (cluster has no capacity)",
        }

    # -- introspection ------------------------------------------------------

    @property
    def pipeline_width(self) -> int:
        """Useful in-flight depth of one pipelined connection: enough
        to keep every live shard's workers busy at once."""
        alive = max(1, self.alive_count())
        per_shard = max(1, self.config.workers)
        width = max(4, 2 * alive * per_shard)
        if self.config.max_queue_depth is not None:
            width = max(width, alive * (self.config.max_queue_depth + 1))
        return width

    def stats(self) -> Dict[str, Any]:
        """Cluster stats in the single-server shape (counters, cache
        and queue depth sum across shards) plus ``router`` counters and
        a ``shards`` breakdown — so existing scrapers keep working and
        cluster-aware ones see the topology."""
        per_shard = []
        counters: Dict[str, int] = {}
        cache: Dict[str, int] = {"entries": 0}
        queue_depth = 0
        for shard in self.shards:
            if not shard.alive:
                per_shard.append({"shard": shard.index, "alive": False})
                continue
            stats = shard.server.stats()
            queue_depth += stats["queue_depth"]
            for name, value in stats["counters"].items():
                counters[name] = counters.get(name, 0) + value
            for name, value in stats["cache"].items():
                cache[name] = cache.get(name, 0) + value
            per_shard.append({
                "shard": shard.index, "alive": True,
                "queue_depth": stats["queue_depth"],
                "counters": stats["counters"],
                "cache": stats["cache"],
            })
        return {
            "workers": self.config.workers * self.alive_count(),
            "queue_depth": queue_depth,
            "counters": counters,
            "cache": cache,
            "router": {
                "shards": len(self.shards),
                "shards_alive": self.alive_count(),
                **{name: value for name, value in self.counters.items()},
            },
            "shards": per_shard,
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Cluster metrics, scrapeable exactly like a single server's.

        The aggregate tier (``serve.*``) folds every live shard's
        snapshot through
        :func:`~repro.obs.metrics.merge_metrics_snapshots` — summed
        counters, summed queue gauges, bucket-exact merged latency
        histograms.  The per-shard tier re-exports each shard's
        histograms and queue gauge under ``shard<i>.`` so a p99
        regression can be localised to the shard causing it.  Router
        health rides along as ``serve.cluster.*``.
        """
        snapshots = []
        per_shard: Dict[str, Any] = {"gauges": {}, "histograms": {}}
        for shard in self.shards:
            if not shard.alive:
                continue
            snap = shard.server.metrics_snapshot()
            snapshots.append(snap)
            prefix = f"shard{shard.index}."
            for name, summary in snap["histograms"].items():
                per_shard["histograms"][prefix + name] = summary
            for name in ("serve.queue_depth", "serve.cache.entries"):
                if name in snap["gauges"]:
                    per_shard["gauges"][prefix + name] = \
                        snap["gauges"][name]
        merged = merge_metrics_snapshots(snapshots)
        merged["gauges"].update(per_shard["gauges"])
        merged["histograms"].update(per_shard["histograms"])
        with self._lock:
            for name, value in self.counters.items():
                merged["counters"][f"serve.cluster.{name}"] = value
        merged["gauges"]["serve.cluster.shards"] = len(self.shards)
        merged["gauges"]["serve.cluster.shards_alive"] = self.alive_count()
        merged["gauges"]["serve.uptime_s"] = (
            time.monotonic() - self._started)
        return merged

    def health_snapshot(self) -> Dict[str, Any]:
        """Cluster liveness: ``ok`` with every shard up, ``degraded``
        with some down, ``down`` with none left (single-server keys
        kept so monitors need no special casing)."""
        alive = self.alive_count()
        if self._closed or alive == 0:
            status = "down" if alive == 0 else "shutting_down"
        elif alive < len(self.shards):
            status = "degraded"
        else:
            status = "ok"
        totals = {"jobs": 0, "completed": 0, "errors": 0, "timeouts": 0,
                  "degraded": 0, "shed": 0}
        queue_depth = 0
        cache_entries = 0
        shard_health = []
        for shard in self.shards:
            if not shard.alive:
                shard_health.append({"shard": shard.index,
                                     "status": "down"})
                continue
            health = shard.server.health_snapshot()
            for name in totals:
                totals[name] += health.get(name, 0)
            queue_depth += health["queue_depth"]
            cache_entries += health["cache_entries"]
            shard_health.append({
                "shard": shard.index, "status": health["status"],
                "queue_depth": health["queue_depth"],
                "jobs": health["jobs"],
                "shed": health.get("shed", 0),
            })
        return {
            "status": status,
            "uptime_s": time.monotonic() - self._started,
            "workers": self.config.workers * alive,
            "queue_depth": queue_depth,
            "shards": len(self.shards),
            "shards_alive": alive,
            "max_queue_depth": self.config.max_queue_depth,
            "cache_entries": cache_entries,
            "events_buffered": len(self.events),
            "shard_health": shard_health,
            **totals,
        }

    def merged_obs(self):
        """Every shard's collected per-job profiles folded into one
        report (``None`` when profiling was off; see
        ``MappingServer.merged_obs``)."""
        from repro.obs import merge_reports

        reports = [shard.server.merged_obs() for shard in self.shards]
        return merge_reports([r for r in reports if r is not None])

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop every shard and close the router's event log."""
        already = self._closed
        self._closed = True
        for shard in self.shards:
            if shard.alive:
                shard.server.shutdown(wait=wait)
        if not already:
            self.events.emit("cluster.shutdown",
                             jobs=self.counters["jobs"])
            self.events.close()

    def __enter__(self) -> "ClusterRouter":
        """Context-manager entry (shuts every shard down on exit)."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: drain and close all shards."""
        self.shutdown()
