"""Job specifications, content-addressed keys and result payloads.

A *job* names a netlist (either raw BLIF text or a suite circuit plus a
size scale), one pipeline (``mis`` | ``lily``), one mode (``area`` |
``timing``) and the knobs that change the answer (library choice, wire
model, verify level, Lily extensions, and the MIS pipeline's covering
backend — ``mapper``).  Two jobs that would produce the
same :class:`~repro.flow.pipeline.FlowResult` must map to the same
:func:`job_key`, so the key hashes:

* the netlist's *canonical* BLIF serialisation (comments, whitespace and
  declaration quirks wash out through a parse/write round trip);
* the library's canonical genlib serialisation;
* the canonicalised option dict (sorted keys, defaults materialised).

``PerfOptions`` deliberately never enters the key: every fast path is
bit-identical to the naive one (the golden-equivalence tests assert it),
so cache entries are valid across perf configurations — including the
degraded retry path.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

from repro.flow.pipeline import FlowResult, lily_flow, mis_flow
from repro.library.cell import Library
from repro.library.genlib import write_genlib
from repro.map.blif_io import write_mapped_blif
from repro.network.blif import write_blif
from repro.network.network import Network
from repro.perf import PerfOptions
from repro.timing.model import WireCapModel

__all__ = [
    "JobSpec",
    "JobError",
    "job_key",
    "network_hash",
    "library_hash",
    "build_payload",
    "payload_hash",
    "run_flow",
]

#: The flows a job may request.
FLOWS = ("mis", "lily")
#: The modes a job may request.
MODES = ("area", "timing")
#: Built-in library names a job may request (see ``repro.serve.state``).
LIBRARIES = ("big", "tiny", "big_1u")


class JobError(ValueError):
    """Raised when a job specification is malformed or inconsistent."""


@dataclass(frozen=True)
class JobSpec:
    """One mapping request.

    Exactly one of ``circuit`` (a named suite circuit) and ``blif`` (raw
    BLIF text) must be given.  Everything else defaults to the CLI's
    defaults; unknown options are rejected by :meth:`from_dict` so typos
    in protocol requests fail loudly instead of silently running the
    default flow.
    """

    flow: str = "lily"
    mode: str = "area"
    circuit: Optional[str] = None
    blif: Optional[str] = None
    scale: float = 1.0
    library: str = "big"
    genlib: Optional[str] = None
    wire_cap: Optional[Tuple[float, float]] = None
    verify: Union[bool, str] = False
    seed_backend_from_mapper: bool = False
    layout_driven: bool = False
    #: Covering backend for the MIS pipeline (``tree``/``cuts``/``fusion``/
    #: ``lut:K``); changes the answer, so it keys the cache.
    mapper: str = "tree"

    def validate(self) -> None:
        """Raise :class:`JobError` on any inconsistency."""
        from repro.map.cuts import MapperSpecError, parse_mapper_spec

        if self.flow not in FLOWS:
            raise JobError(f"unknown flow: {self.flow!r} (expected {FLOWS})")
        try:
            spec = parse_mapper_spec(self.mapper)
        except MapperSpecError as exc:
            raise JobError(str(exc))
        if spec.kind != "tree" and self.flow != "mis":
            raise JobError(
                f"mapper {self.mapper!r} needs flow 'mis' (Lily's "
                f"constructive placement is tree-based)")
        if self.mode not in MODES:
            raise JobError(f"unknown mode: {self.mode!r} (expected {MODES})")
        if (self.circuit is None) == (self.blif is None):
            raise JobError(
                "exactly one of 'circuit' and 'blif' must be given")
        if self.genlib is None and self.library not in LIBRARIES:
            raise JobError(
                f"unknown library: {self.library!r} (expected one of "
                f"{LIBRARIES}, or pass custom 'genlib' text)")
        if self.scale <= 0:
            raise JobError(f"scale must be positive, got {self.scale!r}")
        if not isinstance(self.verify, bool) and self.verify not in (
                "fast", "full"):
            raise JobError(
                f"verify must be a bool or 'fast'/'full', "
                f"got {self.verify!r}")
        if self.wire_cap is not None and len(self.wire_cap) != 2:
            raise JobError(
                "wire_cap must be a (horizontal, vertical) pF/um pair")
        if self.flow == "mis" and (self.seed_backend_from_mapper
                                   or self.layout_driven):
            raise JobError(
                "seed_backend_from_mapper/layout_driven are Lily-only")

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "JobSpec":
        """Build and validate a spec from a protocol-request dict."""
        if not isinstance(data, dict):
            raise JobError(f"job must be an object, got {type(data).__name__}")
        known = {f for f in JobSpec.__dataclass_fields__}
        unknown = sorted(set(data) - known)
        if unknown:
            raise JobError(
                f"unknown job option(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})")
        kwargs = dict(data)
        if kwargs.get("wire_cap") is not None:
            kwargs["wire_cap"] = tuple(float(c) for c in kwargs["wire_cap"])
        spec = JobSpec(**kwargs)
        spec.validate()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-ready mirror of :meth:`from_dict`."""
        out: Dict[str, Any] = {}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if isinstance(value, tuple):
                value = list(value)
            out[name] = value
        return out

    def options_key(self) -> Dict[str, Any]:
        """The option subset that keys the result cache (netlist/library
        sources are hashed separately, so they are excluded here)."""
        return {
            "flow": self.flow,
            "mode": self.mode,
            "wire_cap": list(self.wire_cap) if self.wire_cap else None,
            "verify": self.verify,
            "seed_backend_from_mapper": self.seed_backend_from_mapper,
            "layout_driven": self.layout_driven,
            "mapper": self.mapper,
        }

    def wire_model(self) -> Optional[WireCapModel]:
        """The spec's wire model (``None`` keeps the flow defaults)."""
        if self.wire_cap is None:
            return None
        return WireCapModel(self.wire_cap[0], self.wire_cap[1])


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def network_hash(net: Network) -> str:
    """Content hash of a network via its canonical BLIF serialisation."""
    return _sha256(write_blif(net))


def library_hash(library: Library) -> str:
    """Content hash of a library via its canonical genlib serialisation."""
    return _sha256(write_genlib(library))


def job_key(spec: JobSpec, net_hash: str, lib_hash: str) -> str:
    """The content-addressed cache key of one job.

    ``(netlist hash, library hash, canonicalised options)``, hashed.  The
    options dict serialises with sorted keys so field order can never
    split the cache.
    """
    blob = json.dumps(
        {"netlist": net_hash, "library": lib_hash,
         "options": spec.options_key()},
        sort_keys=True,
    )
    return _sha256(blob)


def run_flow(
    spec: JobSpec,
    net: Network,
    library: Library,
    perf: Optional[PerfOptions] = None,
    matcher=None,
) -> FlowResult:
    """Dispatch one flow exactly as the CLI drivers would."""
    wire_model = spec.wire_model()
    if spec.flow == "mis":
        return mis_flow(net, library, mode=spec.mode, wire_model=wire_model,
                        verify=spec.verify, perf=perf, matcher=matcher,
                        mapper=spec.mapper)
    return lily_flow(
        net, library, mode=spec.mode, wire_model=wire_model,
        verify=spec.verify, perf=perf,
        seed_backend_from_mapper=spec.seed_backend_from_mapper,
        layout_driven_decomposition=spec.layout_driven,
        matcher=matcher,
    )


def build_payload(spec: JobSpec, result: FlowResult) -> Dict[str, Any]:
    """The deterministic, JSON-ready body of a job response.

    Everything here is a pure function of the job inputs — no wall-clock
    times, worker identities or cache metadata — so two runs of the same
    job produce *bit-identical* payloads and the cache can hand back
    stored bodies indistinguishable from fresh ones.  Volatile facts
    (runtime, hit/degraded flags) live in the response envelope instead.
    """
    payload: Dict[str, Any] = {
        "circuit": result.circuit,
        "flow": result.mapper,
        "mode": result.mode,
        "num_gates": result.num_gates,
        "instance_area_mm2": result.instance_area_mm2,
        "chip_area_mm2": result.chip_area_mm2,
        "wire_length_mm": result.wire_length_mm,
        "delay_ns": result.delay,
        "equivalent": bool(result.equivalent),
        "mapped_blif": write_mapped_blif(result.mapped),
        "gate_positions": [
            [g.name, g.position.x, g.position.y]
            for g in sorted(result.mapped.gates, key=lambda g: g.name)
            if g.position is not None
        ],
    }
    if result.verify_report is not None:
        counts = result.verify_report.counts()
        payload["verify"] = {
            "level": result.verify_report.level,
            "passed": bool(result.verify_report.passed),
            "checks_run": counts["run"],
            "checks_passed": counts["passed"],
            "failures": [str(c) for c in result.verify_report.failures],
        }
    else:
        payload["verify"] = None
    return payload


def payload_hash(payload: Dict[str, Any]) -> str:
    """Fingerprint of a payload's canonical JSON form.

    Responses carry this next to the body so clients (and the soak tests)
    can assert bit-identity without re-serialising.
    """
    return _sha256(json.dumps(payload, sort_keys=True))
