"""Warm process-wide state shared read-only by server workers.

Cold-starting one mapping request costs far more than the request itself
on small circuits: parse the genlib library, derive every cell's pattern
graphs, build the root-kind/height pattern index.  A resident server
pays those once per library and shares the results:

* the parsed :class:`~repro.library.cell.Library` (one instance per
  library spec, so :func:`~repro.library.patterns.pattern_set_for`'s
  identity cache keeps hitting);
* its :class:`~repro.library.patterns.PatternSet` and
  :class:`~repro.perf.patindex.PatternIndex` (read-only after build);
* one cross-job signature->match-template memo, shared by every matcher
  the state hands out (entries are pure functions of structure, so
  racing writers only ever store identical values);
* built suite circuits and parsed BLIF networks, keyed by content.

Counters (``serve.state_builds``, ``serve.library_parses``,
``serve.network_builds``) record cold-start work both in the always-on
plain dict (:attr:`WarmState.stats`) and — when the global observability
session is enabled — in ``repro.obs`` metrics, which is how the
acceptance test proves the second identical job re-parses nothing.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, Optional, Tuple

from repro.circuits.suite import build_circuit
from repro.library.cell import Library
from repro.library.genlib import parse_genlib
from repro.library.patterns import PatternSet, pattern_set_for
from repro.library.standard import big_library, scale_library, tiny_library
from repro.network.blif import parse_blif
from repro.network.network import Network
from repro.obs import OBS
from repro.perf.memomatch import MemoMatcher
from repro.perf.patindex import PatternIndex

__all__ = ["WarmState", "warm_state_for", "reset_warm_states"]

#: Parsed-BLIF network cache bound per warm state (entries are small —
#: the texts served repeatedly are the ones worth keeping).
MAX_CACHED_NETWORKS = 64


class WarmState:
    """Everything one library's jobs share, built once per process."""

    def __init__(self, key: str, library: Library) -> None:
        from repro.serve.jobs import library_hash

        self.key = key
        self.library = library
        self.library_hash = library_hash(library)
        self.patterns: PatternSet = pattern_set_for(library)
        self.pattern_index = PatternIndex(self.patterns)
        #: Cross-job signature -> match-template memo (see module doc).
        self.shared_templates: dict = {}
        self._networks: Dict[Tuple[str, float], Tuple[Network, str]] = {}
        self._network_order: list = []
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = {
            "library_parses": 1,
            "network_builds": 0,
            "network_hits": 0,
        }
        if OBS.enabled:
            OBS.metrics.counter("serve.library_parses").inc()

    def matcher(self) -> MemoMatcher:
        """A fresh matcher wired to the warm index and template memo.

        Per-graph state (gate heights) stays private to the returned
        instance, so concurrent jobs on different subjects are safe.
        """
        return MemoMatcher(
            self.patterns,
            shared_index=self.pattern_index,
            shared_templates=self.shared_templates,
        )

    def network_for(self, circuit: Optional[str], blif: Optional[str],
                    scale: float = 1.0) -> Tuple[Network, str]:
        """``(network, content_hash)`` for a job's netlist source.

        Named circuits key by ``(name, scale)``; BLIF text keys by its
        own SHA-256 so byte-identical submissions share one parse.  The
        cache is LRU-bounded at :data:`MAX_CACHED_NETWORKS`.
        """
        from repro.serve.jobs import network_hash

        if circuit is not None:
            cache_key = (f"circuit:{circuit}", scale)
        else:
            text_sha = hashlib.sha256(
                (blif or "").encode("utf-8")).hexdigest()
            cache_key = (f"blif:{text_sha}", 0.0)
        with self._lock:
            hit = self._networks.get(cache_key)
            if hit is not None:
                self.stats["network_hits"] += 1
                if OBS.enabled:
                    OBS.metrics.counter("serve.network_hits").inc()
                self._network_order.remove(cache_key)
                self._network_order.append(cache_key)
                return hit
        if circuit is not None:
            net = build_circuit(circuit, scale=scale)
        else:
            net = parse_blif(blif or "", filename="<serve-job>")
        entry = (net, network_hash(net))
        with self._lock:
            self.stats["network_builds"] += 1
            if OBS.enabled:
                OBS.metrics.counter("serve.network_builds").inc()
            if cache_key not in self._networks:
                self._networks[cache_key] = entry
                self._network_order.append(cache_key)
                while len(self._network_order) > MAX_CACHED_NETWORKS:
                    evicted = self._network_order.pop(0)
                    del self._networks[evicted]
            return self._networks[cache_key]


_STATES: Dict[str, WarmState] = {}
_STATES_LOCK = threading.Lock()


def _build_library(library: str, genlib: Optional[str]) -> Tuple[str, Library]:
    """Resolve a job's library spec to a registry key and instance."""
    if genlib is not None:
        sha = hashlib.sha256(genlib.encode("utf-8")).hexdigest()
        return f"genlib:{sha}", parse_genlib(genlib, name=f"custom_{sha[:8]}",
                                             filename="<serve-genlib>")
    if library == "big":
        return "big", big_library()
    if library == "tiny":
        return "tiny", tiny_library()
    if library == "big_1u":
        # Table 2's library: delays/caps linearly scaled 3u -> 1u.
        return "big_1u", scale_library(big_library(), 1.0 / 3.0,
                                       name="big_1u")
    raise ValueError(f"unknown library spec: {library!r}")


def warm_state_for(library: str = "big",
                   genlib: Optional[str] = None) -> WarmState:
    """The process-wide :class:`WarmState` for a library spec.

    The first call for a spec parses the library and builds patterns and
    index (``serve.state_builds`` increments); every later call — from
    any worker thread — returns the same instance untouched.
    """
    if genlib is not None:
        key = "genlib:" + hashlib.sha256(genlib.encode("utf-8")).hexdigest()
    else:
        key = library
    with _STATES_LOCK:
        state = _STATES.get(key)
        if state is not None:
            return state
        reg_key, lib = _build_library(library, genlib)
        state = WarmState(reg_key, lib)
        _STATES[reg_key] = state
        if OBS.enabled:
            OBS.metrics.counter("serve.state_builds").inc()
        return state


def reset_warm_states() -> None:
    """Drop every warm state (tests use this to measure cold starts)."""
    with _STATES_LOCK:
        _STATES.clear()
