"""JSON-lines wire protocol: stdio and TCP socket frontends.

One request per line, one response per line, UTF-8 JSON.  Requests::

    {"op": "map",  "id": 1, "job": {...JobSpec fields...},
     "timeout": 30.0,                      # timeout optional
     "request_id": "req-9f31c2d44ab0"}     # trace id, optional
    {"op": "stats", "id": 2}
    {"op": "ping",  "id": 3}
    {"op": "metrics", "id": 4}             # +"format": "prometheus"
    {"op": "health", "id": 5}
    {"op": "events", "id": 6,              # filters all optional
     "request_id": "req-…", "kind": "job.done", "limit": 100}
    {"op": "hello", "id": 7, "pipeline": true}
    {"op": "shutdown", "id": 8}

Responses echo the request ``id`` and carry either the job envelope
(``ok``/``status``/``request_id``/``cache_hit``/``degraded``/
``result``/``result_sha256``; see ``repro.serve.server``) or
``{"ok": false, "error": ...}``.  Overloaded servers answer ``map``
with ``status: "overloaded"`` plus a ``retry_after_s`` hint; a shut
down server answers ``status: "unavailable"`` (see
``docs/OPERATIONS.md`` for the retry contract).  ``map`` requests may
carry a caller ``request_id`` (one is generated otherwise); the id is
echoed in the envelope and stamped on every event and span the job
causes, so a follow-up ``events`` request — or one grep over the
server's event stream — reconstructs that request's lifecycle.
``metrics`` answers the live metrics snapshot as JSON, or as
Prometheus exposition text (``{"ok": true, "text": …}``) with
``"format": "prometheus"``; ``health`` is the cheap liveness summary.
Both work on a *running* server — no restart, no ``--observe``.
Malformed lines answer an error response instead of killing the
connection; an unreadable *stream* ends that connection only.
``shutdown`` answers, then stops the serving loop (and, over a
socket, the whole server).

**Pipelining.**  By default a connection is strictly
request/response: one line in, one line out, in order.  A client that
sends ``{"op": "hello", "pipeline": true}`` switches the connection
into pipelined mode: subsequent ``map`` requests are dispatched to a
per-connection thread pool (``server.pipeline_width`` wide) and their
responses come back *as each job finishes* — possibly out of order —
so the client must match responses to requests by the echoed ``id``.
Control ops (``stats``/``metrics``/…) still answer inline, which is
what lets a monitor scrape a connection that has maps in flight.  Old
servers answer ``hello`` with an unknown-op error and stay ordered;
clients treat that as "no pipelining" and fall back.  This is how
:class:`repro.serve.client.AsyncClient` keeps every shard worker busy
over a single socket.

The socket frontend accepts any number of sequential or concurrent
connections; all of them share the one server (one warm state, one
cache), which is the entire point.  Every frontend talks to its
server only through the duck-typed surface (``run`` / ``stats`` /
``metrics_snapshot`` / ``health_snapshot`` / ``events`` /
``shutdown`` / ``pipeline_width``), so a
:class:`repro.serve.cluster.ClusterRouter` can stand in for a
:class:`~repro.serve.server.MappingServer` behind any of them.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, TextIO

from repro.serve.jobs import JobError, JobSpec
from repro.serve.server import MappingServer

__all__ = ["handle_request", "serve_stream", "serve_socket",
           "connect_lines"]


def _request_id_of(request: Dict[str, Any]) -> Optional[str]:
    """The request's trace id, validated (``None`` when absent)."""
    request_id = request.get("request_id")
    if request_id is None:
        return None
    if not isinstance(request_id, str) or not request_id:
        raise JobError(
            f"request_id must be a non-empty string, got {request_id!r}")
    return request_id


def handle_request(server: MappingServer,
                   request: Dict[str, Any]) -> Dict[str, Any]:
    """Dispatch one decoded request dict; always returns a response dict.

    The response carries ``shutdown: true`` when the serving loop should
    stop after sending it.  ``server`` is duck-typed: anything with the
    ``MappingServer`` verb surface (a :class:`ClusterRouter`, say)
    serves equally well.
    """
    if not isinstance(request, dict):
        return {"ok": False, "error": "request must be a JSON object"}
    rid = request.get("id")
    op = request.get("op", "map")
    try:
        if op == "ping":
            response: Dict[str, Any] = {"ok": True, "status": "pong"}
        elif op == "hello":
            response = {
                "ok": True, "status": "hello",
                "pipeline": bool(request.get("pipeline")),
                "width": int(getattr(server, "pipeline_width", 8)),
            }
        elif op == "stats":
            response = {"ok": True, "stats": server.stats()}
        elif op == "metrics":
            snapshot = server.metrics_snapshot()
            if request.get("format") == "prometheus":
                from repro.obs.expo import format_prometheus

                response = {"ok": True,
                            "text": format_prometheus(snapshot)}
            else:
                response = {"ok": True, "metrics": snapshot}
        elif op == "health":
            health = server.health_snapshot()
            response = {"ok": True, "status": health["status"],
                        "health": health}
        elif op == "events":
            limit = request.get("limit")
            response = {"ok": True, "events": server.events.events(
                request_id=_request_id_of(request),
                kind=request.get("kind"),
                limit=int(limit) if limit is not None else None)}
        elif op == "shutdown":
            response = {"ok": True, "status": "shutting down",
                        "shutdown": True}
        elif op == "map":
            spec = JobSpec.from_dict(request.get("job") or {})
            timeout = request.get("timeout")
            response = server.run(
                spec, timeout=float(timeout) if timeout is not None else None,
                request_id=_request_id_of(request))
        else:
            response = {"ok": False, "error": f"unknown op: {op!r}"}
    except JobError as exc:
        response = {"ok": False, "error": str(exc)}
    except Exception as exc:  # noqa: BLE001 — protocol must answer
        response = {"ok": False,
                    "error": f"{type(exc).__name__}: {exc}"}
    if rid is not None:
        response["id"] = rid
    return response


class _LineSession:
    """One JSON-lines connection's state: ordered by default, pipelined
    after a ``hello`` handshake.

    Owns the write lock (responses are single lines, never torn) and,
    once pipelined, the per-connection dispatch pool.  Both the stdio
    and the socket frontends drive their loop through
    :meth:`handle_line` so the two stay behaviourally identical.
    """

    def __init__(self, server: MappingServer, write_line) -> None:
        self.server = server
        self._write_line = write_line
        self._write_lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None

    def send(self, response: Dict[str, Any]) -> None:
        """Serialize and write one response line (thread-safe)."""
        text = json.dumps(response, sort_keys=True) + "\n"
        with self._write_lock:
            self._write_line(text)

    def _dispatch(self, request: Dict[str, Any]) -> None:
        self.send(handle_request(self.server, request))

    def handle_line(self, line: str) -> bool:
        """Process one request line; returns True when the serving loop
        should stop (a ``shutdown`` request was answered)."""
        try:
            request = json.loads(line)
        except ValueError as exc:
            self.send({"ok": False, "error": f"bad JSON request: {exc}"})
            return False
        pipelined_map = (
            self._pool is not None and isinstance(request, dict)
            and request.get("op", "map") == "map"
        )
        if pipelined_map:
            self._pool.submit(self._dispatch, request)
            return False
        if (isinstance(request, dict) and request.get("op") == "hello"
                and request.get("pipeline") and self._pool is None):
            width = max(1, int(getattr(self.server, "pipeline_width", 8)))
            self._pool = ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="serve-pipe")
        response = handle_request(self.server, request)
        if response.get("shutdown") and self._pool is not None:
            # Flush in-flight map responses before the goodbye line so
            # a pipelining client never loses answers it already sent
            # requests for.
            self._pool.shutdown(wait=True)
            self._pool = None
        self.send(response)
        return bool(response.get("shutdown"))

    def close(self) -> None:
        """Drain the dispatch pool (no-op for ordered connections)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def serve_stream(server: MappingServer, inp: TextIO, out: TextIO,
                 shutdown_on_eof: bool = True) -> bool:
    """Serve JSON-lines requests from ``inp`` to ``out`` until EOF or a
    ``shutdown`` request.  Returns True when shutdown was requested."""
    def write_line(text: str) -> None:
        out.write(text)
        out.flush()

    session = _LineSession(server, write_line)
    try:
        for line in inp:
            line = line.strip()
            if not line:
                continue
            if session.handle_line(line):
                return True
    finally:
        session.close()
    return shutdown_on_eof


class _SocketHandler(socketserver.StreamRequestHandler):
    """One connection: a JSON-lines stream over the shared server."""

    def handle(self) -> None:
        """Serve this connection until EOF or a shutdown request."""
        def write_line(text: str) -> None:
            self.wfile.write(text.encode("utf-8"))
            self.wfile.flush()

        session = _LineSession(self.server.mapping_server, write_line)
        try:
            for raw in self.rfile:
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                if session.handle_line(line):
                    self.server.request_shutdown()
                    return
        finally:
            session.close()


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    """TCP frontend holding the shared :class:`MappingServer`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, addr, mapping_server: MappingServer):
        """Bind to ``addr`` and remember the shared mapping server."""
        super().__init__(addr, _SocketHandler)
        self.mapping_server = mapping_server

    def request_shutdown(self) -> None:
        """Stop the accept loop from a handler thread."""
        threading.Thread(target=self.shutdown, daemon=True).start()


def serve_socket(server: MappingServer, host: str = "127.0.0.1",
                 port: int = 0,
                 ready: Optional[threading.Event] = None,
                 bound_port: Optional[list] = None) -> None:
    """Run the TCP frontend until a client sends ``shutdown``.

    ``port=0`` picks a free port; the chosen one is appended to
    ``bound_port`` (when given) and ``ready`` is set once accepting —
    both exist so tests and the CLI can report the address.
    """
    with _ThreadedTCPServer((host, port), server) as tcp:
        if bound_port is not None:
            bound_port.append(tcp.server_address[1])
        if ready is not None:
            ready.set()
        tcp.serve_forever(poll_interval=0.05)


def connect_lines(host: str, port: int, timeout: float = 10.0):
    """Open a socket to a serve frontend; returns ``(sock, reader, writer)``
    file objects ready for JSON-lines traffic (caller closes all three)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    reader = sock.makefile("r", encoding="utf-8")
    writer = sock.makefile("w", encoding="utf-8")
    return sock, reader, writer
