"""JSON-lines wire protocol: stdio and TCP socket frontends.

One request per line, one response per line, UTF-8 JSON.  Requests::

    {"op": "map",  "id": 1, "job": {...JobSpec fields...},
     "timeout": 30.0,                      # timeout optional
     "request_id": "req-9f31c2d44ab0"}     # trace id, optional
    {"op": "stats", "id": 2}
    {"op": "ping",  "id": 3}
    {"op": "metrics", "id": 4}             # +"format": "prometheus"
    {"op": "health", "id": 5}
    {"op": "events", "id": 6,              # filters all optional
     "request_id": "req-…", "kind": "job.done", "limit": 100}
    {"op": "shutdown", "id": 7}

Responses echo the request ``id`` and carry either the job envelope
(``ok``/``status``/``request_id``/``cache_hit``/``degraded``/
``result``/``result_sha256``; see ``repro.serve.server``) or
``{"ok": false, "error": ...}``.  ``map`` requests may carry a caller
``request_id`` (one is generated otherwise); the id is echoed in the
envelope and stamped on every event and span the job causes, so a
follow-up ``events`` request — or one grep over the server's event
stream — reconstructs that request's lifecycle.  ``metrics`` answers
the live metrics snapshot as JSON, or as Prometheus exposition text
(``{"ok": true, "text": …}``) with ``"format": "prometheus"``;
``health`` is the cheap liveness summary.  Both work on a *running*
server — no restart, no ``--observe``.  Malformed lines answer an
error response instead of killing the connection; an unreadable
*stream* ends that connection only.  ``shutdown`` answers, then stops
the serving loop (and, over a socket, the whole server).

The socket frontend accepts any number of sequential or concurrent
connections; all of them share the one server (one warm state, one
cache), which is the entire point.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any, Dict, Optional, TextIO

from repro.serve.jobs import JobError, JobSpec
from repro.serve.server import MappingServer

__all__ = ["handle_request", "serve_stream", "serve_socket",
           "connect_lines"]


def _request_id_of(request: Dict[str, Any]) -> Optional[str]:
    """The request's trace id, validated (``None`` when absent)."""
    request_id = request.get("request_id")
    if request_id is None:
        return None
    if not isinstance(request_id, str) or not request_id:
        raise JobError(
            f"request_id must be a non-empty string, got {request_id!r}")
    return request_id


def handle_request(server: MappingServer,
                   request: Dict[str, Any]) -> Dict[str, Any]:
    """Dispatch one decoded request dict; always returns a response dict.

    The response carries ``shutdown: true`` when the serving loop should
    stop after sending it.
    """
    if not isinstance(request, dict):
        return {"ok": False, "error": "request must be a JSON object"}
    rid = request.get("id")
    op = request.get("op", "map")
    try:
        if op == "ping":
            response: Dict[str, Any] = {"ok": True, "status": "pong"}
        elif op == "stats":
            response = {"ok": True, "stats": server.stats()}
        elif op == "metrics":
            snapshot = server.metrics_snapshot()
            if request.get("format") == "prometheus":
                from repro.obs.expo import format_prometheus

                response = {"ok": True,
                            "text": format_prometheus(snapshot)}
            else:
                response = {"ok": True, "metrics": snapshot}
        elif op == "health":
            health = server.health_snapshot()
            response = {"ok": True, "status": health["status"],
                        "health": health}
        elif op == "events":
            limit = request.get("limit")
            response = {"ok": True, "events": server.events.events(
                request_id=_request_id_of(request),
                kind=request.get("kind"),
                limit=int(limit) if limit is not None else None)}
        elif op == "shutdown":
            response = {"ok": True, "status": "shutting down",
                        "shutdown": True}
        elif op == "map":
            spec = JobSpec.from_dict(request.get("job") or {})
            timeout = request.get("timeout")
            response = server.run(
                spec, timeout=float(timeout) if timeout is not None else None,
                request_id=_request_id_of(request))
        else:
            response = {"ok": False, "error": f"unknown op: {op!r}"}
    except JobError as exc:
        response = {"ok": False, "error": str(exc)}
    except Exception as exc:  # noqa: BLE001 — protocol must answer
        response = {"ok": False,
                    "error": f"{type(exc).__name__}: {exc}"}
    if rid is not None:
        response["id"] = rid
    return response


def serve_stream(server: MappingServer, inp: TextIO, out: TextIO,
                 shutdown_on_eof: bool = True) -> bool:
    """Serve JSON-lines requests from ``inp`` to ``out`` until EOF or a
    ``shutdown`` request.  Returns True when shutdown was requested."""
    for line in inp:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except ValueError as exc:
            request = None
            response: Dict[str, Any] = {
                "ok": False, "error": f"bad JSON request: {exc}"}
        if request is not None:
            response = handle_request(server, request)
        out.write(json.dumps(response, sort_keys=True) + "\n")
        out.flush()
        if response.get("shutdown"):
            return True
    return shutdown_on_eof


class _SocketHandler(socketserver.StreamRequestHandler):
    """One connection: a JSON-lines stream over the shared server."""

    def handle(self) -> None:
        """Serve this connection until EOF or a shutdown request."""
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except ValueError as exc:
                request = None
                response: Dict[str, Any] = {
                    "ok": False, "error": f"bad JSON request: {exc}"}
            if request is not None:
                response = handle_request(self.server.mapping_server,
                                          request)
            self.wfile.write(
                (json.dumps(response, sort_keys=True) + "\n").encode("utf-8"))
            self.wfile.flush()
            if response.get("shutdown"):
                self.server.request_shutdown()
                return


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    """TCP frontend holding the shared :class:`MappingServer`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, addr, mapping_server: MappingServer):
        """Bind to ``addr`` and remember the shared mapping server."""
        super().__init__(addr, _SocketHandler)
        self.mapping_server = mapping_server

    def request_shutdown(self) -> None:
        """Stop the accept loop from a handler thread."""
        threading.Thread(target=self.shutdown, daemon=True).start()


def serve_socket(server: MappingServer, host: str = "127.0.0.1",
                 port: int = 0,
                 ready: Optional[threading.Event] = None,
                 bound_port: Optional[list] = None) -> None:
    """Run the TCP frontend until a client sends ``shutdown``.

    ``port=0`` picks a free port; the chosen one is appended to
    ``bound_port`` (when given) and ``ready`` is set once accepting —
    both exist so tests and the CLI can report the address.
    """
    with _ThreadedTCPServer((host, port), server) as tcp:
        if bound_port is not None:
            bound_port.append(tcp.server_address[1])
        if ready is not None:
            ready.set()
        tcp.serve_forever(poll_interval=0.05)


def connect_lines(host: str, port: int, timeout: float = 10.0):
    """Open a socket to a serve frontend; returns ``(sock, reader, writer)``
    file objects ready for JSON-lines traffic (caller closes all three)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    reader = sock.makefile("r", encoding="utf-8")
    writer = sock.makefile("w", encoding="utf-8")
    return sock, reader, writer
