"""Client API: one interface over three transports.

* :meth:`Client.in_process` — wraps a :class:`MappingServer` living in
  this interpreter.  Zero serialisation; the natural choice for library
  users and for ``repro.flow --server``.
* :meth:`Client.subprocess` — spawns ``python -m repro.serve --stdio``
  and speaks JSON lines over its pipes.  Isolates the mapping workload
  (memory, GIL) from the caller.
* :meth:`Client.connect` — dials a running socket frontend.

All three expose the same calls (:meth:`map_circuit`, :meth:`map_blif`,
:meth:`submit`, :meth:`ping`, :meth:`stats`, :meth:`metrics`,
:meth:`health`, :meth:`events`, :meth:`shutdown`) and all responses are
the plain envelope dicts of ``repro.serve.server``.

Every mapping call carries a ``request_id`` — caller-provided or
generated client-side — echoed in the response envelope and stamped on
every event the job causes server-side, so a client can always trace
its own requests (including ones that timed out before answering).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from typing import Any, Dict, List, Optional, Union

from repro.obs.events import new_request_id
from repro.serve.jobs import JobSpec
from repro.serve.protocol import connect_lines, handle_request
from repro.serve.server import MappingServer, ServerConfig

__all__ = ["Client", "ServeProtocolError"]


class ServeProtocolError(RuntimeError):
    """Raised when a remote frontend closes or answers garbage."""


class Client:
    """A handle on a mapping service (in-process, subprocess or socket)."""

    def __init__(self, server: Optional[MappingServer] = None) -> None:
        """Use :meth:`in_process` / :meth:`subprocess` / :meth:`connect`
        instead of calling this directly."""
        self._server = server
        self._proc: Optional[subprocess.Popen] = None
        self._sock = None
        self._reader = None
        self._writer = None
        self._io_lock = threading.Lock()
        self._next_id = 0

    # -- constructors -------------------------------------------------------

    @classmethod
    def in_process(cls, config: Optional[ServerConfig] = None,
                   **kwargs) -> "Client":
        """A client over a fresh server in this interpreter."""
        return cls(server=MappingServer(config, **kwargs))

    @classmethod
    def wrap(cls, server: MappingServer) -> "Client":
        """A client over an existing in-process server."""
        return cls(server=server)

    @classmethod
    def subprocess(cls, workers: int = 2, cache_entries: int = 128,
                   spill_dir: Optional[str] = None,
                   timeout_s: Optional[float] = None,
                   slow_request_s: Optional[float] = None,
                   event_stream: Optional[str] = None) -> "Client":
        """Spawn ``python -m repro.serve --stdio`` and connect to it."""
        client = cls()
        argv = [sys.executable, "-m", "repro.serve", "--stdio",
                "--workers", str(workers),
                "--cache-entries", str(cache_entries)]
        if spill_dir:
            argv += ["--spill-dir", spill_dir]
        if timeout_s is not None:
            argv += ["--timeout", str(timeout_s)]
        if slow_request_s is not None:
            argv += ["--slow-request", str(slow_request_s)]
        if event_stream:
            argv += ["--events", event_stream]
        env = dict(os.environ)
        # Make repro importable in the child even when the parent runs
        # from a source tree without installation.
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        parts = [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        if src_root not in parts:
            env["PYTHONPATH"] = os.pathsep.join([src_root] + parts)
        client._proc = subprocess.Popen(
            argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            text=True, env=env)
        client._reader = client._proc.stdout
        client._writer = client._proc.stdin
        return client

    @classmethod
    def connect(cls, host: str, port: int, timeout: float = 30.0) -> "Client":
        """Dial a running socket frontend."""
        client = cls()
        client._sock, client._reader, client._writer = connect_lines(
            host, port, timeout=timeout)
        return client

    # -- transport ----------------------------------------------------------

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one protocol request; returns the response dict."""
        if self._server is not None:
            return handle_request(self._server, {"op": op, **fields})
        with self._io_lock:
            self._next_id += 1
            rid = self._next_id
            line = json.dumps({"op": op, "id": rid, **fields},
                              sort_keys=True)
            try:
                self._writer.write(line + "\n")
                self._writer.flush()
                raw = self._reader.readline()
            except (OSError, ValueError) as exc:
                raise ServeProtocolError(f"transport failed: {exc}")
        if not raw:
            raise ServeProtocolError("server closed the connection")
        try:
            response = json.loads(raw)
        except ValueError as exc:
            raise ServeProtocolError(f"bad response line {raw!r}: {exc}")
        if response.get("id") not in (None, rid):
            raise ServeProtocolError(
                f"response id {response.get('id')!r} != request id {rid}")
        return response

    # -- API ----------------------------------------------------------------

    def submit(self, spec: JobSpec, timeout: Optional[float] = None,
               request_id: Optional[str] = None) -> Dict[str, Any]:
        """Run one job spec; returns its response envelope.

        A ``request_id`` is generated client-side when not given, so
        the caller can correlate even a timed-out job with the server's
        event log.
        """
        fields: Dict[str, Any] = {
            "job": spec.to_dict(),
            "request_id": request_id or new_request_id(),
        }
        if timeout is not None:
            fields["timeout"] = timeout
        return self.request("map", **fields)

    def map_circuit(self, name: str, flow: str = "lily", mode: str = "area",
                    timeout: Optional[float] = None,
                    request_id: Optional[str] = None,
                    **options: Any) -> Dict[str, Any]:
        """Map a named suite circuit (``options``: JobSpec fields)."""
        spec = JobSpec.from_dict(
            {"circuit": name, "flow": flow, "mode": mode, **options})
        return self.submit(spec, timeout=timeout, request_id=request_id)

    def map_blif(self, blif: str, flow: str = "lily", mode: str = "area",
                 timeout: Optional[float] = None,
                 request_id: Optional[str] = None,
                 **options: Any) -> Dict[str, Any]:
        """Map raw BLIF text (``options``: JobSpec fields)."""
        spec = JobSpec.from_dict(
            {"blif": blif, "flow": flow, "mode": mode, **options})
        return self.submit(spec, timeout=timeout, request_id=request_id)

    def ping(self) -> bool:
        """True when the service answers."""
        return bool(self.request("ping").get("ok"))

    def stats(self) -> Dict[str, Any]:
        """The server's stats snapshot (see ``MappingServer.stats``)."""
        return self.request("stats").get("stats", {})

    def metrics(self, prometheus: bool = False) -> Union[Dict[str, Any], str]:
        """The live metrics snapshot — a dict, or Prometheus text with
        ``prometheus=True`` (see ``MappingServer.metrics_snapshot``)."""
        if prometheus:
            return self.request(
                "metrics", format="prometheus").get("text", "")
        return self.request("metrics").get("metrics", {})

    def health(self) -> Dict[str, Any]:
        """The server's health summary (status, uptime, queue depth)."""
        return self.request("health").get("health", {})

    def events(self, request_id: Optional[str] = None,
               kind: Optional[str] = None,
               limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Server event-log records, optionally filtered by trace id /
        kind / newest-N (see ``repro.obs.events.EventLog.events``)."""
        fields: Dict[str, Any] = {}
        if request_id is not None:
            fields["request_id"] = request_id
        if kind is not None:
            fields["kind"] = kind
        if limit is not None:
            fields["limit"] = limit
        return self.request("events", **fields).get("events", [])

    def shutdown(self) -> None:
        """Stop the service (drains in-process pools, ends subprocesses)."""
        if self._server is not None:
            self._server.shutdown()
            return
        try:
            self.request("shutdown")
        except ServeProtocolError:
            pass
        self.close()

    def close(self) -> None:
        """Release transport resources without a remote shutdown."""
        if self._server is not None:
            self._server.shutdown()
            self._server = None
            return
        for stream in (self._writer, self._reader):
            try:
                if stream is not None:
                    stream.close()
            except OSError:
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        if self._proc is not None:
            try:
                self._proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._proc.wait()
            self._proc = None

    @property
    def server(self) -> Optional[MappingServer]:
        """The wrapped in-process server (``None`` on remote transports)."""
        return self._server

    def __enter__(self) -> "Client":
        """Context-manager entry."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: shutdown and close."""
        self.shutdown()
        self.close()
