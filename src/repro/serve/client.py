"""Client API: one interface over three transports, sync or pipelined.

* :meth:`Client.in_process` — wraps a :class:`MappingServer` living in
  this interpreter.  Zero serialisation; the natural choice for library
  users and for ``repro.flow --server``.
* :meth:`Client.subprocess` — spawns ``python -m repro.serve --stdio``
  and speaks JSON lines over its pipes.  Isolates the mapping workload
  (memory, GIL) from the caller.  ``cluster=N`` spawns a whole N-shard
  cluster behind the same pipe.
* :meth:`Client.connect` — dials a running socket frontend.

All three expose the same calls (:meth:`~_ServiceAPI.map_circuit`,
:meth:`~_ServiceAPI.map_blif`, :meth:`~_ServiceAPI.submit`,
:meth:`~_ServiceAPI.ping`, :meth:`~_ServiceAPI.stats`,
:meth:`~_ServiceAPI.metrics`, :meth:`~_ServiceAPI.health`,
:meth:`~_ServiceAPI.events`, ``shutdown``) and all responses are the
plain envelope dicts of ``repro.serve.server``.

:class:`AsyncClient` is the pipelined variant: it performs the
``hello`` handshake of ``repro.serve.protocol``, keeps many requests
in flight over one connection, and matches out-of-order responses to
callers by the echoed protocol ``id`` — so N concurrent
:meth:`AsyncClient.submit_async` calls keep every remote worker busy
without N sockets.  Against an old (pre-handshake) server it degrades
gracefully to ordered responses and still works.

Every mapping call carries a ``request_id`` — caller-provided or
generated client-side — echoed in the response envelope and stamped on
every event the job causes server-side, so a client can always trace
its own requests (including ones that timed out before answering).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Union

from repro.obs.events import new_request_id
from repro.serve.jobs import JobSpec
from repro.serve.protocol import connect_lines, handle_request
from repro.serve.server import MappingServer, ServerConfig

__all__ = ["Client", "AsyncClient", "ServeProtocolError"]


class ServeProtocolError(RuntimeError):
    """Raised when a remote frontend closes or answers garbage."""


def _serve_argv(workers: int, cache_entries: int,
                spill_dir: Optional[str],
                timeout_s: Optional[float],
                slow_request_s: Optional[float],
                event_stream: Optional[str],
                cluster: Optional[int],
                max_queue_depth: Optional[int]) -> List[str]:
    """The ``python -m repro.serve --stdio`` command line for a child."""
    argv = [sys.executable, "-m", "repro.serve", "--stdio",
            "--workers", str(workers),
            "--cache-entries", str(cache_entries)]
    if cluster is not None:
        argv += ["--cluster", str(cluster)]
    if max_queue_depth is not None:
        argv += ["--max-queue-depth", str(max_queue_depth)]
    if spill_dir:
        argv += ["--spill-dir", spill_dir]
    if timeout_s is not None:
        argv += ["--timeout", str(timeout_s)]
    if slow_request_s is not None:
        argv += ["--slow-request", str(slow_request_s)]
    if event_stream:
        argv += ["--events", event_stream]
    return argv


def _spawn_serve(argv: List[str]) -> subprocess.Popen:
    """Spawn a serve child with ``repro`` importable from this tree."""
    env = dict(os.environ)
    # Make repro importable in the child even when the parent runs
    # from a source tree without installation.
    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parts = [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    if src_root not in parts:
        env["PYTHONPATH"] = os.pathsep.join([src_root] + parts)
    return subprocess.Popen(
        argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        text=True, env=env)


class _ServiceAPI:
    """The verb surface shared by :class:`Client` and
    :class:`AsyncClient`; everything funnels through ``self.request``.
    """

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one protocol request; returns the response dict."""
        raise NotImplementedError

    def submit(self, spec: JobSpec, timeout: Optional[float] = None,
               request_id: Optional[str] = None) -> Dict[str, Any]:
        """Run one job spec; returns its response envelope.

        A ``request_id`` is generated client-side when not given, so
        the caller can correlate even a timed-out job with the server's
        event log.
        """
        fields: Dict[str, Any] = {
            "job": spec.to_dict(),
            "request_id": request_id or new_request_id(),
        }
        if timeout is not None:
            fields["timeout"] = timeout
        return self.request("map", **fields)

    def map_circuit(self, name: str, flow: str = "lily", mode: str = "area",
                    timeout: Optional[float] = None,
                    request_id: Optional[str] = None,
                    **options: Any) -> Dict[str, Any]:
        """Map a named suite circuit (``options``: JobSpec fields)."""
        spec = JobSpec.from_dict(
            {"circuit": name, "flow": flow, "mode": mode, **options})
        return self.submit(spec, timeout=timeout, request_id=request_id)

    def map_blif(self, blif: str, flow: str = "lily", mode: str = "area",
                 timeout: Optional[float] = None,
                 request_id: Optional[str] = None,
                 **options: Any) -> Dict[str, Any]:
        """Map raw BLIF text (``options``: JobSpec fields)."""
        spec = JobSpec.from_dict(
            {"blif": blif, "flow": flow, "mode": mode, **options})
        return self.submit(spec, timeout=timeout, request_id=request_id)

    def ping(self) -> bool:
        """True when the service answers."""
        return bool(self.request("ping").get("ok"))

    def stats(self) -> Dict[str, Any]:
        """The server's stats snapshot (see ``MappingServer.stats``)."""
        return self.request("stats").get("stats", {})

    def metrics(self, prometheus: bool = False) -> Union[Dict[str, Any], str]:
        """The live metrics snapshot — a dict, or Prometheus text with
        ``prometheus=True`` (see ``MappingServer.metrics_snapshot``)."""
        if prometheus:
            return self.request(
                "metrics", format="prometheus").get("text", "")
        return self.request("metrics").get("metrics", {})

    def health(self) -> Dict[str, Any]:
        """The server's health summary (status, uptime, queue depth)."""
        return self.request("health").get("health", {})

    def events(self, request_id: Optional[str] = None,
               kind: Optional[str] = None,
               limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Server event-log records, optionally filtered by trace id /
        kind / newest-N (see ``repro.obs.events.EventLog.events``)."""
        fields: Dict[str, Any] = {}
        if request_id is not None:
            fields["request_id"] = request_id
        if kind is not None:
            fields["kind"] = kind
        if limit is not None:
            fields["limit"] = limit
        return self.request("events", **fields).get("events", [])


class Client(_ServiceAPI):
    """A handle on a mapping service (in-process, subprocess or socket)."""

    def __init__(self, server: Optional[MappingServer] = None) -> None:
        """Use :meth:`in_process` / :meth:`subprocess` / :meth:`connect`
        instead of calling this directly."""
        self._server = server
        self._proc: Optional[subprocess.Popen] = None
        self._sock = None
        self._reader = None
        self._writer = None
        self._io_lock = threading.Lock()
        self._next_id = 0

    # -- constructors -------------------------------------------------------

    @classmethod
    def in_process(cls, config: Optional[ServerConfig] = None,
                   **kwargs) -> "Client":
        """A client over a fresh server in this interpreter."""
        return cls(server=MappingServer(config, **kwargs))

    @classmethod
    def wrap(cls, server: MappingServer) -> "Client":
        """A client over an existing in-process server (or anything
        duck-typing its surface — a ``ClusterRouter``, say)."""
        return cls(server=server)

    @classmethod
    def subprocess(cls, workers: int = 2, cache_entries: int = 128,
                   spill_dir: Optional[str] = None,
                   timeout_s: Optional[float] = None,
                   slow_request_s: Optional[float] = None,
                   event_stream: Optional[str] = None,
                   cluster: Optional[int] = None,
                   max_queue_depth: Optional[int] = None) -> "Client":
        """Spawn ``python -m repro.serve --stdio`` and connect to it.

        ``cluster=N`` makes the child an N-shard cluster router instead
        of a single server (``workers``/``cache_entries``/… then apply
        per shard); ``max_queue_depth`` bounds each queue so overload
        sheds instead of piling up.
        """
        client = cls()
        client._proc = _spawn_serve(_serve_argv(
            workers, cache_entries, spill_dir, timeout_s, slow_request_s,
            event_stream, cluster, max_queue_depth))
        client._reader = client._proc.stdout
        client._writer = client._proc.stdin
        return client

    @classmethod
    def connect(cls, host: str, port: int, timeout: float = 30.0) -> "Client":
        """Dial a running socket frontend."""
        client = cls()
        client._sock, client._reader, client._writer = connect_lines(
            host, port, timeout=timeout)
        return client

    # -- transport ----------------------------------------------------------

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one protocol request; returns the response dict."""
        if self._server is not None:
            return handle_request(self._server, {"op": op, **fields})
        with self._io_lock:
            self._next_id += 1
            rid = self._next_id
            line = json.dumps({"op": op, "id": rid, **fields},
                              sort_keys=True)
            try:
                self._writer.write(line + "\n")
                self._writer.flush()
                raw = self._reader.readline()
            except (OSError, ValueError) as exc:
                raise ServeProtocolError(f"transport failed: {exc}")
        if not raw:
            raise ServeProtocolError("server closed the connection")
        try:
            response = json.loads(raw)
        except ValueError as exc:
            raise ServeProtocolError(f"bad response line {raw!r}: {exc}")
        if response.get("id") not in (None, rid):
            raise ServeProtocolError(
                f"response id {response.get('id')!r} != request id {rid}")
        return response

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the service (drains in-process pools, ends subprocesses)."""
        if self._server is not None:
            self._server.shutdown()
            return
        try:
            self.request("shutdown")
        except ServeProtocolError:
            pass
        self.close()

    def close(self) -> None:
        """Release transport resources without a remote shutdown."""
        if self._server is not None:
            self._server.shutdown()
            self._server = None
            return
        for stream in (self._writer, self._reader):
            try:
                if stream is not None:
                    stream.close()
            except OSError:
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        if self._proc is not None:
            try:
                self._proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._proc.wait()
            self._proc = None

    @property
    def server(self) -> Optional[MappingServer]:
        """The wrapped in-process server (``None`` on remote transports)."""
        return self._server

    def __enter__(self) -> "Client":
        """Context-manager entry."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: shutdown and close."""
        self.shutdown()
        self.close()


class AsyncClient(_ServiceAPI):
    """A pipelined client: many requests in flight over one connection.

    On connect it sends ``{"op": "hello", "pipeline": true}``; a
    current server switches the connection into pipelined mode (see
    ``repro.serve.protocol``) and answers maps out of order as they
    finish.  A background reader thread matches every response to its
    caller by the echoed ``id`` and resolves the corresponding future,
    so :meth:`submit_async` is safe from any number of threads.  The
    handshake result is exposed as :attr:`pipelined` / :attr:`width`;
    against a pre-handshake server both read False/1 and responses
    simply come back in order — the futures still resolve correctly.
    """

    def __init__(self) -> None:
        """Use :meth:`connect` / :meth:`subprocess` instead."""
        self._proc: Optional[subprocess.Popen] = None
        self._sock = None
        self._reader = None
        self._writer = None
        self._lock = threading.Lock()
        self._write_lock = threading.Lock()
        self._pending: Dict[int, "Future[Dict[str, Any]]"] = {}
        self._next_id = 0
        self._closed = False
        self._reader_thread: Optional[threading.Thread] = None
        #: True when the server accepted the pipelining handshake.
        self.pipelined = False
        #: Server-advertised useful in-flight depth (1 when ordered).
        self.width = 1

    # -- constructors -------------------------------------------------------

    @classmethod
    def connect(cls, host: str, port: int,
                timeout: float = 30.0) -> "AsyncClient":
        """Dial a running socket frontend and handshake."""
        client = cls()
        client._sock, client._reader, client._writer = connect_lines(
            host, port, timeout=timeout)
        client._handshake()
        return client

    @classmethod
    def subprocess(cls, workers: int = 2, cache_entries: int = 128,
                   spill_dir: Optional[str] = None,
                   timeout_s: Optional[float] = None,
                   slow_request_s: Optional[float] = None,
                   event_stream: Optional[str] = None,
                   cluster: Optional[int] = None,
                   max_queue_depth: Optional[int] = None) -> "AsyncClient":
        """Spawn ``python -m repro.serve --stdio``, pipelined.

        Same knobs as :meth:`Client.subprocess`; this is the transport
        a :class:`repro.serve.cluster.ClusterRouter` uses per shard,
        because one pipe then carries one request per idle shard
        worker instead of one request at a time.
        """
        client = cls()
        client._proc = _spawn_serve(_serve_argv(
            workers, cache_entries, spill_dir, timeout_s, slow_request_s,
            event_stream, cluster, max_queue_depth))
        client._reader = client._proc.stdout
        client._writer = client._proc.stdin
        client._handshake()
        return client

    # -- transport ----------------------------------------------------------

    def _handshake(self) -> None:
        """Negotiate pipelining, then start the response-reader thread."""
        line = json.dumps({"op": "hello", "id": 0, "pipeline": True},
                          sort_keys=True)
        try:
            self._writer.write(line + "\n")
            self._writer.flush()
            raw = self._reader.readline()
        except (OSError, ValueError) as exc:
            raise ServeProtocolError(f"handshake transport failed: {exc}")
        if not raw:
            raise ServeProtocolError("server closed during handshake")
        try:
            response = json.loads(raw)
        except ValueError as exc:
            raise ServeProtocolError(f"bad handshake line {raw!r}: {exc}")
        if response.get("ok") and response.get("pipeline"):
            self.pipelined = True
            self.width = max(1, int(response.get("width", 1)))
        self._reader_thread = threading.Thread(
            target=self._read_loop, name="serve-async-reader", daemon=True)
        self._reader_thread.start()

    def _read_loop(self) -> None:
        try:
            for raw in self._reader:
                try:
                    response = json.loads(raw)
                except ValueError:
                    continue
                if not isinstance(response, dict):
                    continue
                with self._lock:
                    future = self._pending.pop(response.get("id"), None)
                if future is not None:
                    future.set_result(response)
        except (OSError, ValueError):
            pass
        finally:
            self._fail_pending("server closed the connection")

    def _fail_pending(self, reason: str) -> None:
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(ServeProtocolError(reason))

    def request_async(self, op: str,
                      **fields: Any) -> "Future[Dict[str, Any]]":
        """Send one request without waiting; the returned future
        resolves to the response dict (or raises
        :class:`ServeProtocolError` if the connection dies first)."""
        future: "Future[Dict[str, Any]]" = Future()
        with self._lock:
            if self._closed:
                raise ServeProtocolError("client is closed")
            self._next_id += 1
            rid = self._next_id
            self._pending[rid] = future
        line = json.dumps({"op": op, "id": rid, **fields}, sort_keys=True)
        try:
            with self._write_lock:
                self._writer.write(line + "\n")
                self._writer.flush()
        except (OSError, ValueError) as exc:
            with self._lock:
                self._pending.pop(rid, None)
            raise ServeProtocolError(f"transport failed: {exc}")
        return future

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Blocking convenience over :meth:`request_async`."""
        return self.request_async(op, **fields).result()

    def submit_async(self, spec: JobSpec, timeout: Optional[float] = None,
                     request_id: Optional[str] = None
                     ) -> "Future[Dict[str, Any]]":
        """Pipeline one job; returns a future of its envelope.

        The generated (or given) ``request_id`` rides in the request,
        is echoed in the envelope and tags the job's server-side
        events — the future resolving out of submission order never
        scrambles which answer belongs to which job.
        """
        fields: Dict[str, Any] = {
            "job": spec.to_dict(),
            "request_id": request_id or new_request_id(),
        }
        if timeout is not None:
            fields["timeout"] = timeout
        return self.request_async("map", **fields)

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self) -> None:
        """Ask the service to stop, then release the transport."""
        try:
            self.request("shutdown")
        except ServeProtocolError:
            pass
        self.close()

    def close(self) -> None:
        """Release transport resources without a remote shutdown."""
        with self._lock:
            self._closed = True
        for stream in (self._writer, self._reader):
            try:
                if stream is not None:
                    stream.close()
            except OSError:
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        if self._reader_thread is not None:
            self._reader_thread.join(timeout=5)
            self._reader_thread = None
        self._fail_pending("client closed")
        if self._proc is not None:
            try:
                self._proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._proc.wait()
            self._proc = None

    def __enter__(self) -> "AsyncClient":
        """Context-manager entry."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: shutdown and close."""
        self.shutdown()
