"""The resident mapping server: worker pool + cache + warm state.

One :class:`MappingServer` owns a thread pool, a
:class:`~repro.serve.cache.ResultCache` and references into the
process-wide warm state registry.  A job travels::

    submit(spec)
      -> content-addressed key (netlist/library/options hashed)
      -> cache probe ............................ hit: answer immediately
      -> in-flight table ........... duplicate: join the running leader
      -> worker thread:
           warm state lookup (library/patterns/index, built once)
           network build (cached per circuit name / BLIF content)
           flow run (fast perf; on failure retry PerfOptions.naive())
           payload build; cache store

Three degradation rules keep the server answering under stress:

* **fast-path failure** — any exception from the flow with the standard
  fast ``PerfOptions`` is retried once with ``PerfOptions.naive()`` and
  the response is flagged ``degraded`` (``serve.degraded`` counts it);
* **timeout** — :meth:`MappingServer.run` bounds the wait; on expiry the
  job is cancelled (cooperatively between phases if already running,
  outright if still queued) and the caller gets ``status: "timeout"``;
* **bad jobs** — malformed specs or netlists answer ``status: "error"``
  with the contextual parser message; the server itself never dies.

Identical concurrent submissions are *single-flighted*: followers share
the leader's future and count as cache hits (``serve.inflight_joins``),
which is what lets N parallel identical jobs finish with one mapping and
N-1 hits.

Telemetry is first-class and always on (independent of the global
``repro.obs`` session, which stays opt-in for *profiling*): the server
owns a :class:`~repro.obs.metrics.Metrics` registry recording the
``serve.latency_s`` / ``serve.queue_wait_s`` / ``serve.queue_depth``
percentile histograms, and an :class:`~repro.obs.events.EventLog` where
every job's lifecycle — received, queued, joined, started, degraded,
timed out, cancelled, done, slow — is recorded under one generated (or
caller-provided) ``request_id``.  ``metrics_snapshot()`` /
``health_snapshot()`` back the protocol's ``metrics`` and ``health``
verbs, so a running server is scrapeable without restart.  Jobs whose
runtime exceeds ``ServerConfig.slow_request_s`` auto-log a ``job.slow``
event.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs import OBS, Metrics, ObsReport, merge_reports
from repro.obs.events import EventLog, new_request_id
from repro.perf import PerfOptions
from repro.serve.cache import ResultCache
from repro.serve.jobs import (
    JobError,
    JobSpec,
    build_payload,
    job_key,
    payload_hash,
    run_flow,
)
from repro.serve.state import WarmState, warm_state_for

__all__ = ["MappingServer", "ServerConfig", "JobHandle", "JobCancelled",
           "ServerOverloaded", "ServerClosed"]


class JobCancelled(Exception):
    """Raised inside a worker when its job's cancel token is set."""


class ServerClosed(RuntimeError):
    """Raised by :meth:`MappingServer.submit` after shutdown.

    :meth:`MappingServer.run` (and therefore the wire protocol) turns
    it into a ``status: "unavailable"`` envelope, which is what lets a
    cluster router distinguish a *dead shard* from a bad job and
    re-hash the key instead of failing the request.
    """


class ServerOverloaded(RuntimeError):
    """Raised by :meth:`MappingServer.submit` when the bounded queue is
    full (load shedding).

    Carries ``retry_after_s`` — the server's estimate of when capacity
    frees up — which :meth:`MappingServer.run` copies into the
    ``status: "overloaded"`` error envelope.  A shed job never starts,
    so it can never poison the cache.
    """

    def __init__(self, depth: int, retry_after_s: float) -> None:
        self.depth = depth
        self.retry_after_s = retry_after_s
        super().__init__(
            f"queue full ({depth} jobs in flight); "
            f"retry in {retry_after_s:.2f}s")


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of one server instance.

    Attributes:
        workers: worker threads mapping concurrently (they share the
            warm state read-only, so more workers add no cold starts).
        cache_entries: in-memory LRU bound of the result cache.
        spill_dir: optional directory for disk spill of cache entries;
            point two processes at the same directory to share results.
        timeout_s: default per-job timeout for :meth:`MappingServer.run`
            (``None``: wait forever).
        perf: flow fast-path switches; jobs that fail under them retry
            with ``PerfOptions.naive()``.
        slow_request_s: jobs whose mapping runtime exceeds this log a
            ``job.slow`` event (the slow-request audit trail).
        event_ring: in-memory event-log bound (older events drop).
        event_stream: optional JSONL path every event is appended to —
            the durable tier of the event log.
        max_queue_depth: bound on jobs in flight (queued + running).
            ``None`` (the default) queues without bound; with a bound,
            a submission that would exceed it is *shed* — it answers
            ``status: "overloaded"`` with a ``retry_after_s`` hint
            instead of queueing (cache hits and single-flight joins
            are never shed: they cost no worker).
    """

    workers: int = 2
    cache_entries: int = 128
    spill_dir: Optional[str] = None
    timeout_s: Optional[float] = None
    perf: Optional[PerfOptions] = None
    slow_request_s: float = 5.0
    event_ring: int = 4096
    event_stream: Optional[str] = None
    max_queue_depth: Optional[int] = None


class JobHandle:
    """A submitted job: its key, request id, future and cancel token."""

    def __init__(self, job_id: int, key: str, spec: JobSpec,
                 request_id: Optional[str] = None) -> None:
        self.job_id = job_id
        self.key = key
        self.spec = spec
        #: The trace id carried through every event/span of this job.
        self.request_id = request_id or new_request_id()
        #: ``perf_counter`` at enqueue; queue wait = start − this.
        self.enqueued_at = time.perf_counter()
        self.future: "Future[Dict[str, Any]]" = Future()
        self._cancel = threading.Event()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancel.is_set()

    def cancel(self) -> None:
        """Request cancellation: queued jobs never start, running jobs
        stop at their next phase boundary."""
        self._cancel.set()

    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block for the response envelope (raises on timeout)."""
        return self.future.result(timeout)


class MappingServer:
    """Batched mapping-as-a-service over a persistent worker pool."""

    def __init__(self, config: Optional[ServerConfig] = None, **kwargs):
        """``kwargs`` are :class:`ServerConfig` field overrides, so
        ``MappingServer(workers=4)`` works without building a config."""
        if config is None:
            config = ServerConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a ServerConfig or field overrides")
        self.config = config
        self.cache = ResultCache(config.cache_entries, config.spill_dir)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, config.workers),
            thread_name_prefix="serve-worker",
        )
        self._lock = threading.Lock()
        self._inflight: Dict[str, JobHandle] = {}
        self._next_id = 0
        self._closed = False
        self._started = time.monotonic()
        self.stats_counters: Dict[str, int] = {
            "jobs": 0, "completed": 0, "errors": 0, "timeouts": 0,
            "cancelled": 0, "degraded": 0, "inflight_joins": 0,
            "slow": 0, "shed": 0,
        }
        self.obs_reports: List[ObsReport] = []
        #: Always-on serve telemetry (latency/queue histograms); the
        #: global ``repro.obs`` session is mirrored only when enabled.
        self.metrics = Metrics()
        #: Request-scoped structured event log (ring + optional stream).
        self.events = EventLog(config.event_ring,
                               stream=config.event_stream)

    # -- submission ---------------------------------------------------------

    def submit(self, spec: JobSpec,
               request_id: Optional[str] = None) -> JobHandle:
        """Enqueue one job; returns immediately with its handle.

        Cache hits resolve the handle synchronously; a duplicate of a
        job already in flight joins that job instead of re-mapping.
        ``request_id`` (generated when absent) tags every event and
        span this job causes and is echoed in the response envelope.
        With a ``max_queue_depth`` configured, a submission that would
        exceed it raises :class:`ServerOverloaded` (cache hits and
        single-flight joins always go through — they cost no worker).
        """
        if self._closed:
            raise ServerClosed("server is shut down")
        spec.validate()
        self._count("jobs")
        if OBS.enabled:
            OBS.metrics.counter("serve.jobs").inc()
        state = warm_state_for(spec.library, spec.genlib)
        _, net_hash = state.network_for(spec.circuit, spec.blif, spec.scale)
        key = job_key(spec, net_hash, state.library_hash)

        cached = self.cache.get(key)
        leader: Optional[JobHandle] = None
        shed_depth: Optional[int] = None
        with self._lock:
            self._next_id += 1
            handle = JobHandle(self._next_id, key, spec,
                               request_id=request_id)
            if cached is None:
                leader = self._inflight.get(key)
                if leader is None:
                    bound = self.config.max_queue_depth
                    if bound is not None and len(self._inflight) >= bound:
                        # Load shedding: the job never enters the
                        # in-flight table, never starts, never caches.
                        shed_depth = len(self._inflight)
                    else:
                        self._inflight[key] = handle
                        self._set_queue_depth_locked()
                else:
                    self.stats_counters["inflight_joins"] += 1
                    self.cache.stats["hits"] += 1
                    if OBS.enabled:
                        OBS.metrics.counter("serve.inflight_joins").inc()
                        OBS.metrics.counter("serve.cache.hits").inc()
        self.events.emit(
            "job.received", handle.request_id, key=key, flow=spec.flow,
            mode=spec.mode, circuit=spec.circuit or "<blif>")
        if shed_depth is not None:
            retry_after = self._retry_after_estimate(shed_depth)
            self._count("shed")
            if OBS.enabled:
                OBS.metrics.counter("serve.shed").inc()
            self.events.emit("job.shed", handle.request_id, key=key,
                             queue_depth=shed_depth,
                             retry_after_s=retry_after)
            raise ServerOverloaded(shed_depth, retry_after)
        # Resolution happens outside the lock: done-callbacks can fire
        # synchronously and _resolve_follower/_finish re-take it.
        if cached is not None:
            self._count("completed")
            self.events.emit("job.cache_hit", handle.request_id, key=key)
            envelope = self._envelope(
                key, cached, cache_hit=True, runtime_s=0.0,
                request_id=handle.request_id)
            self.events.emit("job.done", handle.request_id, key=key,
                             status="ok", cache_hit=True, runtime_s=0.0)
            handle.future.set_result(envelope)
        elif leader is not None:
            self.events.emit("job.join", handle.request_id, key=key,
                             leader_request_id=leader.request_id)
            leader.future.add_done_callback(
                lambda f, h=handle: self._resolve_follower(f, h))
        else:
            self.events.emit("job.queued", handle.request_id, key=key)
            self._pool.submit(self._work, handle, state)
        return handle

    def run(self, spec: JobSpec, timeout: Optional[float] = None,
            request_id: Optional[str] = None) -> Dict[str, Any]:
        """Submit and wait; the blocking convenience wrapper.

        ``timeout`` (default: the server's ``timeout_s``) bounds the
        wait; on expiry the job is cancelled and the envelope reports
        ``status: "timeout"``.
        """
        request_id = request_id or new_request_id()
        try:
            handle = self.submit(spec, request_id=request_id)
        except ServerOverloaded as exc:
            return {"ok": False, "status": "overloaded",
                    "retry_after_s": exc.retry_after_s,
                    "request_id": request_id, "error": str(exc)}
        except ServerClosed as exc:
            return {"ok": False, "status": "unavailable",
                    "request_id": request_id, "error": str(exc)}
        except (JobError, ValueError) as exc:
            self._count("errors")
            self.events.emit("job.rejected", request_id, error=str(exc))
            return {"ok": False, "status": "error", "error": str(exc),
                    "request_id": request_id}
        if timeout is None:
            timeout = self.config.timeout_s
        try:
            return handle.result(timeout)
        except FutureTimeoutError:
            handle.cancel()
            self._count("timeouts")
            if OBS.enabled:
                OBS.metrics.counter("serve.timeouts").inc()
            self.events.emit("job.timeout", handle.request_id,
                             key=handle.key, timeout_s=timeout)
            return {
                "ok": False, "status": "timeout", "job_key": handle.key,
                "request_id": handle.request_id,
                "error": f"job exceeded {timeout:g}s "
                         f"(cancelled; it will not be retried)",
            }

    # -- worker side --------------------------------------------------------

    def _work(self, handle: JobHandle, state: WarmState) -> None:
        start = time.perf_counter()
        queue_wait = start - handle.enqueued_at
        self._observe("serve.queue_wait_s", queue_wait)
        self.events.emit("job.start", handle.request_id, key=handle.key,
                         queue_wait_s=queue_wait)
        counters_before = (
            OBS.metrics.snapshot_counters() if OBS.enabled else None
        )
        try:
            # With profiling on, every span the job causes hangs under
            # one root annotated with the request id (worker threads
            # have an empty span stack, so this opens a fresh root).
            if OBS.enabled:
                with OBS.span("serve.job", request_id=handle.request_id,
                              key=handle.key):
                    payload, degraded, reports = self._execute(handle, state)
            else:
                payload, degraded, reports = self._execute(handle, state)
        except JobCancelled:
            self.events.emit("job.cancelled", handle.request_id,
                             key=handle.key)
            self._finish(handle, {
                "ok": False, "status": "cancelled", "job_key": handle.key,
                "request_id": handle.request_id,
                "error": "job cancelled before completion",
            })
            self._count("cancelled")
            return
        except Exception as exc:  # noqa: BLE001 — the envelope carries it
            self.events.emit("job.error", handle.request_id,
                             key=handle.key,
                             error=f"{type(exc).__name__}: {exc}")
            self._finish(handle, {
                "ok": False, "status": "error", "job_key": handle.key,
                "request_id": handle.request_id,
                "error": f"{type(exc).__name__}: {exc}",
            })
            self._count("errors")
            if OBS.enabled:
                OBS.metrics.counter("serve.errors").inc()
            return
        runtime = time.perf_counter() - start
        del counters_before  # flows snapshot their own deltas
        self.cache.put(handle.key, payload)
        with self._lock:
            self.obs_reports.extend(reports)
        if degraded:
            self._count("degraded")
            if OBS.enabled:
                OBS.metrics.counter("serve.degraded").inc()
        self._observe("serve.latency_s", runtime)
        if runtime >= self.config.slow_request_s:
            self._count("slow")
            self.events.emit(
                "job.slow", handle.request_id, key=handle.key,
                runtime_s=runtime,
                threshold_s=self.config.slow_request_s)
        self.events.emit("job.done", handle.request_id, key=handle.key,
                         status="ok", cache_hit=False, degraded=degraded,
                         runtime_s=runtime)
        self._finish(handle, self._envelope(
            handle.key, payload, cache_hit=False, runtime_s=runtime,
            degraded=degraded, request_id=handle.request_id))

    def _execute(self, handle: JobHandle, state: WarmState):
        """Run one job body; returns ``(payload, degraded, obs_reports)``."""
        spec = handle.spec
        if handle.cancelled:
            raise JobCancelled(handle.key)
        net, _ = state.network_for(spec.circuit, spec.blif, spec.scale)
        if handle.cancelled:
            raise JobCancelled(handle.key)
        perf = self.config.perf if self.config.perf is not None \
            else PerfOptions()
        degraded = False
        reports: List[ObsReport] = []
        try:
            result = run_flow(spec, net, state.library, perf=perf,
                              matcher=state.matcher())
        except Exception as exc:  # noqa: BLE001 — degrade, don't error
            if handle.cancelled:
                raise JobCancelled(handle.key)
            # Graceful degradation: the naive paths are the reference
            # implementation; answer slowly rather than not at all.
            degraded = True
            self.events.emit(
                "job.degraded", handle.request_id, key=handle.key,
                error=f"{type(exc).__name__}: {exc}")
            result = run_flow(spec, net, state.library,
                              perf=PerfOptions.naive())
        if result.obs is not None:
            reports.append(result.obs)
        if handle.cancelled:
            raise JobCancelled(handle.key)
        return build_payload(spec, result), degraded, reports

    # -- bookkeeping --------------------------------------------------------

    def _envelope(self, key: str, payload: Dict[str, Any], cache_hit: bool,
                  runtime_s: float, degraded: bool = False,
                  request_id: Optional[str] = None) -> Dict[str, Any]:
        return {
            "ok": True,
            "status": "ok",
            "job_key": key,
            "request_id": request_id,
            "cache_hit": cache_hit,
            "degraded": degraded,
            "runtime_s": runtime_s,
            "result": payload,
            "result_sha256": payload_hash(payload),
        }

    def _finish(self, handle: JobHandle, envelope: Dict[str, Any]) -> None:
        with self._lock:
            if self._inflight.get(handle.key) is handle:
                del self._inflight[handle.key]
                self._set_queue_depth_locked()
            if envelope.get("ok"):
                self.stats_counters["completed"] += 1
        handle.future.set_result(envelope)

    def _resolve_follower(self, leader_future: "Future[Dict[str, Any]]",
                          handle: JobHandle) -> None:
        envelope = dict(leader_future.result())
        envelope["request_id"] = handle.request_id
        if envelope.get("ok"):
            envelope["cache_hit"] = True
            with self._lock:
                self.stats_counters["completed"] += 1
        self.events.emit(
            "job.done", handle.request_id, key=handle.key,
            status=envelope.get("status", "error"),
            cache_hit=bool(envelope.get("cache_hit")), joined=True)
        handle.future.set_result(envelope)

    def _count(self, stat: str) -> None:
        with self._lock:
            self.stats_counters[stat] += 1

    def _retry_after_estimate(self, depth: int) -> float:
        """When a shed caller should retry: roughly one queue drain.

        Estimated as the observed p50 mapping latency times the number
        of worker "waves" the backlog represents, clamped to
        ``[0.05s, 30s]`` (0.25s stands in for the p50 before any job
        has completed).
        """
        latency = self.metrics.histograms.get("serve.latency_s")
        p50 = (latency.percentile(50.0)
               if latency is not None and latency.count else 0.0)
        if p50 <= 0.0:
            p50 = 0.25
        waves = max(1.0, depth / max(1, self.config.workers))
        return min(30.0, max(0.05, p50 * waves))

    @property
    def pipeline_width(self) -> int:
        """Concurrent requests one pipelined protocol connection may
        dispatch (see ``repro.serve.protocol``): enough to keep every
        worker busy, with headroom to fill a bounded queue."""
        width = max(4, 2 * max(1, self.config.workers))
        if self.config.max_queue_depth is not None:
            width = max(width, self.config.max_queue_depth + 1)
        return width

    def _observe(self, name: str, value: float) -> None:
        """Record into the always-on server histogram (and mirror the
        global session when profiling is enabled)."""
        self.metrics.histogram(name).observe(value)
        if OBS.enabled:
            OBS.metrics.histogram(name).observe(value)

    def _set_queue_depth_locked(self) -> None:
        """Refresh the queue-depth gauge/histogram from the in-flight
        table itself (the single source of truth — callers hold the
        lock, so the gauge can never go stale or negative)."""
        depth = len(self._inflight)
        self.metrics.gauge("serve.queue_depth").set(depth)
        self.metrics.histogram("serve.queue_depth").observe(depth)
        if OBS.enabled:
            OBS.metrics.gauge("serve.queue_depth").set(depth)

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of server, cache and warm-state stats."""
        from repro.serve.state import _STATES

        with self._lock:
            counters = dict(self.stats_counters)
            queue_depth = len(self._inflight)
        states = {
            key: dict(state.stats) for key, state in sorted(_STATES.items())
        }
        return {
            "workers": self.config.workers,
            "queue_depth": queue_depth,
            "counters": counters,
            "cache": {"entries": len(self.cache), **self.cache.stats},
            "warm_states": states,
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Everything scrapeable, in the ``Metrics.snapshot`` shape.

        Combines the lifecycle counters (``serve.jobs`` …), the cache
        tier counters (``serve.cache.*``), warm-state cold-start
        counters (``serve.state.*``), the queue-depth/uptime gauges and
        the always-on percentile histograms.  This is what the
        protocol's ``metrics`` verb answers and what
        :func:`repro.obs.expo.format_prometheus` renders, so a running
        server can be scraped without restart (and without the global
        profiling session).
        """
        from repro.serve.state import _STATES

        with self._lock:
            counters = {
                f"serve.{name}": value
                for name, value in self.stats_counters.items()
            }
            queue_depth = len(self._inflight)
        for name, value in self.cache.stats.items():
            counters[f"serve.cache.{name}"] = value
        for _, state in sorted(_STATES.items()):
            for name, value in state.stats.items():
                counters[f"serve.state.{name}"] = (
                    counters.get(f"serve.state.{name}", 0) + value)
        snap = self.metrics.snapshot()
        gauges = dict(snap["gauges"])
        gauges["serve.queue_depth"] = queue_depth
        gauges["serve.uptime_s"] = time.monotonic() - self._started
        gauges["serve.cache.entries"] = len(self.cache)
        gauges["serve.events_buffered"] = len(self.events)
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": snap["histograms"],
        }

    def health_snapshot(self) -> Dict[str, Any]:
        """A cheap liveness/readiness summary for the ``health`` verb."""
        with self._lock:
            counters = dict(self.stats_counters)
            queue_depth = len(self._inflight)
        return {
            "status": "shutting_down" if self._closed else "ok",
            "uptime_s": time.monotonic() - self._started,
            "workers": self.config.workers,
            "queue_depth": queue_depth,
            "jobs": counters["jobs"],
            "completed": counters["completed"],
            "errors": counters["errors"],
            "timeouts": counters["timeouts"],
            "degraded": counters["degraded"],
            "shed": counters["shed"],
            "max_queue_depth": self.config.max_queue_depth,
            "cache_entries": len(self.cache),
            "events_buffered": len(self.events),
        }

    def merged_obs(self) -> Optional[ObsReport]:
        """All collected per-job profiles folded into one report."""
        with self._lock:
            reports = list(self.obs_reports)
        return merge_reports(reports)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs and (optionally) drain the pool."""
        already = self._closed
        self._closed = True
        self._pool.shutdown(wait=wait)
        if not already:
            self.events.emit("server.shutdown",
                             jobs=self.stats_counters["jobs"])
            self.events.close()

    def __enter__(self) -> "MappingServer":
        """Context-manager entry (shuts the pool down on exit)."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: drain and close the pool."""
        self.shutdown()
