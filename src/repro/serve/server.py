"""The resident mapping server: worker pool + cache + warm state.

One :class:`MappingServer` owns a thread pool, a
:class:`~repro.serve.cache.ResultCache` and references into the
process-wide warm state registry.  A job travels::

    submit(spec)
      -> content-addressed key (netlist/library/options hashed)
      -> cache probe ............................ hit: answer immediately
      -> in-flight table ........... duplicate: join the running leader
      -> worker thread:
           warm state lookup (library/patterns/index, built once)
           network build (cached per circuit name / BLIF content)
           flow run (fast perf; on failure retry PerfOptions.naive())
           payload build; cache store

Three degradation rules keep the server answering under stress:

* **fast-path failure** — any exception from the flow with the standard
  fast ``PerfOptions`` is retried once with ``PerfOptions.naive()`` and
  the response is flagged ``degraded`` (``serve.degraded`` counts it);
* **timeout** — :meth:`MappingServer.run` bounds the wait; on expiry the
  job is cancelled (cooperatively between phases if already running,
  outright if still queued) and the caller gets ``status: "timeout"``;
* **bad jobs** — malformed specs or netlists answer ``status: "error"``
  with the contextual parser message; the server itself never dies.

Identical concurrent submissions are *single-flighted*: followers share
the leader's future and count as cache hits (``serve.inflight_joins``),
which is what lets N parallel identical jobs finish with one mapping and
N-1 hits.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs import OBS, ObsReport, merge_reports
from repro.perf import PerfOptions
from repro.serve.cache import ResultCache
from repro.serve.jobs import (
    JobError,
    JobSpec,
    build_payload,
    job_key,
    payload_hash,
    run_flow,
)
from repro.serve.state import WarmState, warm_state_for

__all__ = ["MappingServer", "ServerConfig", "JobHandle", "JobCancelled"]


class JobCancelled(Exception):
    """Raised inside a worker when its job's cancel token is set."""


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of one server instance.

    Attributes:
        workers: worker threads mapping concurrently (they share the
            warm state read-only, so more workers add no cold starts).
        cache_entries: in-memory LRU bound of the result cache.
        spill_dir: optional directory for disk spill of cache entries;
            point two processes at the same directory to share results.
        timeout_s: default per-job timeout for :meth:`MappingServer.run`
            (``None``: wait forever).
        perf: flow fast-path switches; jobs that fail under them retry
            with ``PerfOptions.naive()``.
    """

    workers: int = 2
    cache_entries: int = 128
    spill_dir: Optional[str] = None
    timeout_s: Optional[float] = None
    perf: Optional[PerfOptions] = None


class JobHandle:
    """A submitted job: its key, future and cooperative cancel token."""

    def __init__(self, job_id: int, key: str, spec: JobSpec) -> None:
        self.job_id = job_id
        self.key = key
        self.spec = spec
        self.future: "Future[Dict[str, Any]]" = Future()
        self._cancel = threading.Event()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancel.is_set()

    def cancel(self) -> None:
        """Request cancellation: queued jobs never start, running jobs
        stop at their next phase boundary."""
        self._cancel.set()

    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block for the response envelope (raises on timeout)."""
        return self.future.result(timeout)


class MappingServer:
    """Batched mapping-as-a-service over a persistent worker pool."""

    def __init__(self, config: Optional[ServerConfig] = None, **kwargs):
        """``kwargs`` are :class:`ServerConfig` field overrides, so
        ``MappingServer(workers=4)`` works without building a config."""
        if config is None:
            config = ServerConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a ServerConfig or field overrides")
        self.config = config
        self.cache = ResultCache(config.cache_entries, config.spill_dir)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, config.workers),
            thread_name_prefix="serve-worker",
        )
        self._lock = threading.Lock()
        self._inflight: Dict[str, JobHandle] = {}
        self._next_id = 0
        self._queue_depth = 0
        self._closed = False
        self.stats_counters: Dict[str, int] = {
            "jobs": 0, "completed": 0, "errors": 0, "timeouts": 0,
            "cancelled": 0, "degraded": 0, "inflight_joins": 0,
        }
        self.obs_reports: List[ObsReport] = []

    # -- submission ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobHandle:
        """Enqueue one job; returns immediately with its handle.

        Cache hits resolve the handle synchronously; a duplicate of a
        job already in flight joins that job instead of re-mapping.
        """
        if self._closed:
            raise RuntimeError("server is shut down")
        spec.validate()
        self._count("jobs")
        if OBS.enabled:
            OBS.metrics.counter("serve.jobs").inc()
        state = warm_state_for(spec.library, spec.genlib)
        _, net_hash = state.network_for(spec.circuit, spec.blif, spec.scale)
        key = job_key(spec, net_hash, state.library_hash)

        cached = self.cache.get(key)
        leader: Optional[JobHandle] = None
        with self._lock:
            self._next_id += 1
            handle = JobHandle(self._next_id, key, spec)
            if cached is None:
                leader = self._inflight.get(key)
                if leader is None:
                    self._inflight[key] = handle
                    self._queue_depth += 1
                    if OBS.enabled:
                        OBS.metrics.gauge("serve.queue_depth").set(
                            self._queue_depth)
                else:
                    self.stats_counters["inflight_joins"] += 1
                    self.cache.stats["hits"] += 1
                    if OBS.enabled:
                        OBS.metrics.counter("serve.inflight_joins").inc()
                        OBS.metrics.counter("serve.cache.hits").inc()
        # Resolution happens outside the lock: done-callbacks can fire
        # synchronously and _resolve_follower/_finish re-take it.
        if cached is not None:
            self._count("completed")
            handle.future.set_result(self._envelope(
                key, cached, cache_hit=True, runtime_s=0.0))
        elif leader is not None:
            leader.future.add_done_callback(
                lambda f, h=handle: self._resolve_follower(f, h))
        else:
            self._pool.submit(self._work, handle, state)
        return handle

    def run(self, spec: JobSpec,
            timeout: Optional[float] = None) -> Dict[str, Any]:
        """Submit and wait; the blocking convenience wrapper.

        ``timeout`` (default: the server's ``timeout_s``) bounds the
        wait; on expiry the job is cancelled and the envelope reports
        ``status: "timeout"``.
        """
        try:
            handle = self.submit(spec)
        except (JobError, ValueError) as exc:
            self._count("errors")
            return {"ok": False, "status": "error", "error": str(exc)}
        if timeout is None:
            timeout = self.config.timeout_s
        try:
            return handle.result(timeout)
        except FutureTimeoutError:
            handle.cancel()
            self._count("timeouts")
            if OBS.enabled:
                OBS.metrics.counter("serve.timeouts").inc()
            return {
                "ok": False, "status": "timeout", "job_key": handle.key,
                "error": f"job exceeded {timeout:g}s "
                         f"(cancelled; it will not be retried)",
            }

    # -- worker side --------------------------------------------------------

    def _work(self, handle: JobHandle, state: WarmState) -> None:
        start = time.perf_counter()
        counters_before = (
            OBS.metrics.snapshot_counters() if OBS.enabled else None
        )
        try:
            payload, degraded, reports = self._execute(handle, state)
        except JobCancelled:
            self._finish(handle, {
                "ok": False, "status": "cancelled", "job_key": handle.key,
                "error": "job cancelled before completion",
            })
            self._count("cancelled")
            return
        except Exception as exc:  # noqa: BLE001 — the envelope carries it
            self._finish(handle, {
                "ok": False, "status": "error", "job_key": handle.key,
                "error": f"{type(exc).__name__}: {exc}",
            })
            self._count("errors")
            if OBS.enabled:
                OBS.metrics.counter("serve.errors").inc()
            return
        runtime = time.perf_counter() - start
        del counters_before  # flows snapshot their own deltas
        self.cache.put(handle.key, payload)
        with self._lock:
            self.obs_reports.extend(reports)
        if degraded:
            self._count("degraded")
            if OBS.enabled:
                OBS.metrics.counter("serve.degraded").inc()
        if OBS.enabled:
            OBS.metrics.histogram("serve.latency_s").observe(runtime)
        self._finish(handle, self._envelope(
            handle.key, payload, cache_hit=False, runtime_s=runtime,
            degraded=degraded))

    def _execute(self, handle: JobHandle, state: WarmState):
        """Run one job body; returns ``(payload, degraded, obs_reports)``."""
        spec = handle.spec
        if handle.cancelled:
            raise JobCancelled(handle.key)
        net, _ = state.network_for(spec.circuit, spec.blif, spec.scale)
        if handle.cancelled:
            raise JobCancelled(handle.key)
        perf = self.config.perf if self.config.perf is not None \
            else PerfOptions()
        degraded = False
        reports: List[ObsReport] = []
        try:
            result = run_flow(spec, net, state.library, perf=perf,
                              matcher=state.matcher())
        except Exception:  # noqa: BLE001 — degrade, don't error
            if handle.cancelled:
                raise JobCancelled(handle.key)
            # Graceful degradation: the naive paths are the reference
            # implementation; answer slowly rather than not at all.
            degraded = True
            result = run_flow(spec, net, state.library,
                              perf=PerfOptions.naive())
        if result.obs is not None:
            reports.append(result.obs)
        if handle.cancelled:
            raise JobCancelled(handle.key)
        return build_payload(spec, result), degraded, reports

    # -- bookkeeping --------------------------------------------------------

    def _envelope(self, key: str, payload: Dict[str, Any], cache_hit: bool,
                  runtime_s: float, degraded: bool = False) -> Dict[str, Any]:
        return {
            "ok": True,
            "status": "ok",
            "job_key": key,
            "cache_hit": cache_hit,
            "degraded": degraded,
            "runtime_s": runtime_s,
            "result": payload,
            "result_sha256": payload_hash(payload),
        }

    def _finish(self, handle: JobHandle, envelope: Dict[str, Any]) -> None:
        with self._lock:
            if self._inflight.get(handle.key) is handle:
                del self._inflight[handle.key]
                self._queue_depth -= 1
                if OBS.enabled:
                    OBS.metrics.gauge("serve.queue_depth").set(
                        self._queue_depth)
            if envelope.get("ok"):
                self.stats_counters["completed"] += 1
        handle.future.set_result(envelope)

    def _resolve_follower(self, leader_future: "Future[Dict[str, Any]]",
                          handle: JobHandle) -> None:
        envelope = dict(leader_future.result())
        if envelope.get("ok"):
            envelope["cache_hit"] = True
            with self._lock:
                self.stats_counters["completed"] += 1
        handle.future.set_result(envelope)

    def _count(self, stat: str) -> None:
        with self._lock:
            self.stats_counters[stat] += 1

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of server, cache and warm-state stats."""
        from repro.serve.state import _STATES

        with self._lock:
            counters = dict(self.stats_counters)
            queue_depth = self._queue_depth
        states = {
            key: dict(state.stats) for key, state in sorted(_STATES.items())
        }
        return {
            "workers": self.config.workers,
            "queue_depth": queue_depth,
            "counters": counters,
            "cache": {"entries": len(self.cache), **self.cache.stats},
            "warm_states": states,
        }

    def merged_obs(self) -> Optional[ObsReport]:
        """All collected per-job profiles folded into one report."""
        with self._lock:
            reports = list(self.obs_reports)
        return merge_reports(reports)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs and (optionally) drain the pool."""
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "MappingServer":
        """Context-manager entry (shuts the pool down on exit)."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: drain and close the pool."""
        self.shutdown()
