"""Content-addressed result cache: bounded in-memory LRU + disk spill.

Entries key by :func:`repro.serve.jobs.job_key` — a hash of (netlist,
library, canonical options) — and hold the deterministic payload dict a
job produced.  The in-memory tier is an LRU bounded by ``max_entries``;
when a ``spill_dir`` is configured, evicted (and freshly stored) entries
are written as ``<key>.json`` files, so a *new process* pointed at the
same directory starts warm — that is what makes repeated
``repro.flow --server`` suite runs cheap across invocations.

Payloads are pure functions of the key (see ``jobs.build_payload``), so
a disk entry produced by any process is valid in every other; there is
no invalidation protocol beyond deleting the directory.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.obs import OBS

__all__ = ["ResultCache"]


class ResultCache:
    """Thread-safe LRU payload cache with optional disk spill."""

    def __init__(self, max_entries: int = 128,
                 spill_dir: Optional[str] = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.spill_dir = spill_dir
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "evictions": 0,
            "spills": 0, "disk_hits": 0,
        }
        if spill_dir:
            os.makedirs(spill_dir, exist_ok=True)

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, stat: str, n: int = 1) -> None:
        self.stats[stat] += n
        if OBS.enabled:
            OBS.metrics.counter(f"serve.cache.{stat}").inc(n)

    def _spill_path(self, key: str) -> Optional[str]:
        if not self.spill_dir:
            return None
        return os.path.join(self.spill_dir, f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` on a miss.

        Memory hits refresh LRU order; disk hits are promoted back into
        the memory tier (they count as both a ``hit`` and a
        ``disk_hit``).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._count("hits")
                return entry
        path = self._spill_path(key)
        if path and os.path.exists(path):
            try:
                with open(path) as f:
                    payload = json.load(f)
            except (OSError, ValueError):
                # A torn spill file is just a miss; the job recomputes
                # and overwrites it.
                payload = None
            if payload is not None:
                self._count("disk_hits")
                self._count("hits")
                self._store(key, payload, spill=False)
                return payload
        self._count("misses")
        return None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store a payload under its job key (idempotent)."""
        self._store(key, payload, spill=True)

    def _store(self, key: str, payload: Dict[str, Any], spill: bool) -> None:
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                evicted_key, evicted = self._entries.popitem(last=False)
                self._count("evictions")
                if spill:
                    self._spill(evicted_key, evicted)
        if spill:
            self._spill(key, payload)

    def _spill(self, key: str, payload: Dict[str, Any]) -> None:
        path = self._spill_path(key)
        if not path or os.path.exists(path):
            return
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        try:
            with open(tmp, "w") as f:
                json.dump(payload, f, sort_keys=True)
            os.replace(tmp, path)
            self._count("spills")
        except OSError:
            try:
                os.remove(tmp)
            except OSError:
                pass

    def clear(self) -> None:
        """Drop the memory tier (the spill directory is left alone)."""
        with self._lock:
            self._entries.clear()
