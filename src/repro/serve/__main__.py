"""``python -m repro.serve`` — run a mapping service frontend.

Default is the stdio JSON-lines protocol (one request per line on
stdin, one response per line on stdout), which is what
``Client.subprocess()`` drives.  ``--socket HOST:PORT`` runs the TCP
frontend instead (``PORT`` 0 picks a free port and prints it).

``--cluster N`` serves an N-shard :class:`repro.serve.cluster.
ClusterRouter` instead of a single server — same protocol, same
frontends; ``--workers``/``--cache-entries``/``--max-queue-depth``
then apply *per shard* and ``--spill-dir`` becomes the shared warm
tier (a private temp dir when omitted).  See ``docs/OPERATIONS.md``
for sizing.
"""

from __future__ import annotations

import argparse
import sys

from repro.serve.server import MappingServer, ServerConfig


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(prog="repro.serve")
    parser.add_argument("--stdio", action="store_true",
                        help="serve JSON lines on stdin/stdout (default)")
    parser.add_argument("--socket", default=None, metavar="HOST:PORT",
                        help="serve a TCP socket instead of stdio "
                             "(PORT 0 picks a free port)")
    parser.add_argument("--cluster", type=int, default=None, metavar="N",
                        help="serve an N-shard cluster (consistent-hash "
                             "router) instead of a single server")
    parser.add_argument("--max-queue-depth", type=int, default=None,
                        metavar="N",
                        help="bound jobs in flight (per shard with "
                             "--cluster); excess submissions answer "
                             "status=overloaded with retry_after_s")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="mapping worker threads (per shard with "
                             "--cluster; default 2)")
    parser.add_argument("--cache-entries", type=int, default=128,
                        metavar="N",
                        help="in-memory result-cache LRU bound (default 128)")
    parser.add_argument("--spill-dir", default=None, metavar="DIR",
                        help="spill evicted/stored cache entries to DIR "
                             "(shared across processes)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="default per-job timeout in seconds "
                             "(default: none)")
    parser.add_argument("--observe", action="store_true",
                        help="enable the repro.obs session for the whole "
                             "serve lifetime (per-job profiles collected)")
    parser.add_argument("--slow-request", type=float, default=5.0,
                        metavar="S",
                        help="auto-log a job.slow event for jobs mapping "
                             "longer than S seconds (default 5.0)")
    parser.add_argument("--events", default=None, metavar="FILE",
                        help="stream every telemetry event to FILE as "
                             "JSONL (the in-memory ring stays bounded)")
    parser.add_argument("--event-ring", type=int, default=4096, metavar="N",
                        help="in-memory event-log ring bound (default 4096)")
    args = parser.parse_args(argv)

    if args.cluster is not None:
        if args.cluster < 1:
            raise SystemExit("--cluster expects a shard count >= 1")
        from repro.serve.cluster import ClusterConfig, ClusterRouter

        server = ClusterRouter(ClusterConfig(
            shards=args.cluster,
            workers=args.workers,
            cache_entries=args.cache_entries,
            spill_dir=args.spill_dir,
            timeout_s=args.timeout,
            max_queue_depth=args.max_queue_depth,
            slow_request_s=args.slow_request,
            event_ring=args.event_ring,
        ))
    else:
        config = ServerConfig(
            workers=args.workers,
            cache_entries=args.cache_entries,
            spill_dir=args.spill_dir,
            timeout_s=args.timeout,
            max_queue_depth=args.max_queue_depth,
            slow_request_s=args.slow_request,
            event_ring=args.event_ring,
            event_stream=args.events,
        )
        server = MappingServer(config)
    if args.observe:
        from repro.obs import OBS

        OBS.enable()
    try:
        if args.socket:
            host, _, port = args.socket.rpartition(":")
            if not host or not port.lstrip("-").isdigit():
                raise SystemExit(
                    f"--socket expects HOST:PORT, got {args.socket!r}")
            from repro.serve.protocol import serve_socket

            bound = []
            import threading

            ready = threading.Event()
            thread = threading.Thread(
                target=serve_socket,
                args=(server, host, int(port)),
                kwargs={"ready": ready, "bound_port": bound},
                daemon=True,
            )
            thread.start()
            ready.wait()
            print(f"serving on {host}:{bound[0]}", flush=True)
            thread.join()
        else:
            from repro.serve.protocol import serve_stream

            serve_stream(server, sys.stdin, sys.stdout)
    finally:
        server.shutdown()
        if args.observe:
            from repro.obs import OBS

            OBS.disable()
    return 0


if __name__ == "__main__":
    sys.exit(main())
