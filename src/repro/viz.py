"""SVG visualisation of placements and routed layouts.

Pure-string SVG generation (no rendering dependencies): a scatter plot of
a global placement, and a full layout view of a routed design — cell rows,
gate outlines, routing channels shaded by track count, pads on the
boundary and optional net traces.  Used by the report CLI and the examples.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.geometry import Point, Rect

__all__ = ["placement_svg", "layout_svg"]

_HEADER = (
    '<svg xmlns="http://www.w3.org/2000/svg" viewBox="{vb}" '
    'width="{w}" height="{h}">'
)


def _scale(region: Rect, target: float) -> float:
    extent = max(region.width, region.height, 1e-9)
    return target / extent


def placement_svg(
    positions: Dict[str, Point],
    region: Rect,
    pads: Optional[Dict[str, Point]] = None,
    target_size: float = 640.0,
) -> str:
    """Scatter plot of a (global) placement inside its region."""
    s = _scale(region, target_size)
    width = region.width * s
    height = region.height * s

    def sx(x: float) -> float:
        return (x - region.lx) * s

    def sy(y: float) -> float:
        # SVG y grows downward; flip so the layout reads naturally.
        return height - (y - region.ly) * s

    parts = [
        _HEADER.format(vb=f"0 0 {width:.1f} {height:.1f}",
                       w=f"{width:.0f}", h=f"{height:.0f}"),
        f'<rect x="0" y="0" width="{width:.1f}" height="{height:.1f}" '
        'fill="#fcfcf8" stroke="#888"/>',
    ]
    for name, p in sorted(positions.items()):
        parts.append(
            f'<circle cx="{sx(p.x):.1f}" cy="{sy(p.y):.1f}" r="2.5" '
            f'fill="#356" opacity="0.8"><title>{name}</title></circle>'
        )
    for name, p in sorted((pads or {}).items()):
        parts.append(
            f'<rect x="{sx(p.x) - 3:.1f}" y="{sy(p.y) - 3:.1f}" '
            f'width="6" height="6" fill="#b43" opacity="0.9">'
            f'<title>{name}</title></rect>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def layout_svg(
    routed,
    pad_positions: Optional[Dict[str, Point]] = None,
    show_nets: bool = False,
    target_size: float = 720.0,
) -> str:
    """Full layout view of a :class:`~repro.route.global_route.RoutedDesign`.

    Rows are drawn as light bands, gates as outlined boxes, channels shaded
    with intensity proportional to their track count; pads appear on the
    boundary, and ``show_nets`` overlays trunk lines.
    """
    placement = routed.placement
    region = Rect(0.0, 0.0, max(routed.chip_width, 1.0),
                  max(routed.chip_height, 1.0))
    s = _scale(region, target_size)
    width = region.width * s
    height = region.height * s

    def sx(x: float) -> float:
        return x * s

    def sy(y: float) -> float:
        return height - y * s

    parts = [
        _HEADER.format(vb=f"0 0 {width:.1f} {height:.1f}",
                       w=f"{width:.0f}", h=f"{height:.0f}"),
        f'<rect x="0" y="0" width="{width:.1f}" height="{height:.1f}" '
        'fill="#fcfcf8" stroke="#444"/>',
    ]

    # Channels (shaded by congestion), walked bottom-up alongside rows.
    max_tracks = max((c.num_tracks for c in routed.channels), default=0)
    y = 0.0
    for index, channel_height in enumerate(routed.channel_heights):
        tracks = routed.channels[index].num_tracks
        intensity = 0.08 + 0.5 * (tracks / max_tracks if max_tracks else 0)
        parts.append(
            f'<rect x="0" y="{sy(y + channel_height):.1f}" '
            f'width="{width:.1f}" height="{channel_height * s:.1f}" '
            f'fill="#d77" opacity="{intensity:.2f}">'
            f'<title>channel {index}: {tracks} tracks</title></rect>'
        )
        y += channel_height
        if index < placement.num_rows:
            row = placement.rows[index]
            parts.append(
                f'<rect x="0" y="{sy(y + placement.cell_height):.1f}" '
                f'width="{width:.1f}" '
                f'height="{placement.cell_height * s:.1f}" '
                'fill="#dde8dd" stroke="#9a9" stroke-width="0.5"/>'
            )
            for cell in row.cells:
                lo, hi = row.x_spans[cell]
                parts.append(
                    f'<rect x="{sx(lo):.1f}" '
                    f'y="{sy(y + placement.cell_height):.1f}" '
                    f'width="{(hi - lo) * s:.1f}" '
                    f'height="{placement.cell_height * s:.1f}" '
                    'fill="#8ab" stroke="#245" stroke-width="0.5" '
                    f'opacity="0.85"><title>{cell}</title></rect>'
                )
            y += placement.cell_height

    if show_nets:
        for name, length in sorted(routed.net_lengths.items()):
            # Trunk-only trace: horizontal line at the driver row height.
            p = placement.positions.get(name)
            if p is None:
                continue
            parts.append(
                f'<line x1="{sx(p.x) - 8:.1f}" y1="{sy(p.y):.1f}" '
                f'x2="{sx(p.x) + 8:.1f}" y2="{sy(p.y):.1f}" '
                f'stroke="#b60" stroke-width="0.7" opacity="0.6">'
                f'<title>{name}: {length:.0f} um</title></line>'
            )

    for name, p in sorted((pad_positions or {}).items()):
        px = min(max(p.x, 0.0), region.ux)
        py = min(max(p.y, 0.0), region.uy)
        parts.append(
            f'<rect x="{sx(px) - 3:.1f}" y="{sy(py) - 3:.1f}" width="6" '
            f'height="6" fill="#b43"><title>{name}</title></rect>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
