"""The Boolean network data structure (MIS-style multi-level logic).

A :class:`Network` is a DAG of named :class:`Node` objects.  Internal nodes
carry a sum-of-products function (:class:`~repro.network.logic.SopCover`)
over their ordered fanin list, exactly as in MIS/BLIF.  Primary outputs are
modelled as explicit zero-logic nodes with a single fanin; this keeps the
"one logic cone per primary output" view of Section 2 simple and gives the
pad placer concrete objects to position on the chip boundary.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.network.logic import Cube, SopCover, TruthTable

__all__ = ["NodeKind", "Node", "Network"]


class NodeKind(enum.Enum):
    """Role of a node in the network."""

    PRIMARY_INPUT = "pi"
    PRIMARY_OUTPUT = "po"
    INTERNAL = "internal"


class Node:
    """One vertex of the Boolean network.

    Attributes:
        name: unique name within the owning network.
        kind: PI / PO / internal.
        fanins: ordered fanin nodes (function input order for internal nodes;
            a single driver for POs; empty for PIs).
        function: the node's local function over its fanins (internal only;
            constants are internal nodes with an empty fanin list).
    """

    __slots__ = ("name", "kind", "fanins", "fanouts", "function")

    def __init__(
        self,
        name: str,
        kind: NodeKind,
        fanins: Optional[List["Node"]] = None,
        function: Optional[SopCover] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.fanins: List[Node] = fanins or []
        self.fanouts: List[Node] = []
        self.function = function

    @property
    def is_pi(self) -> bool:
        return self.kind is NodeKind.PRIMARY_INPUT

    @property
    def is_po(self) -> bool:
        return self.kind is NodeKind.PRIMARY_OUTPUT

    @property
    def is_internal(self) -> bool:
        return self.kind is NodeKind.INTERNAL

    @property
    def num_fanins(self) -> int:
        return len(self.fanins)

    @property
    def num_fanouts(self) -> int:
        return len(self.fanouts)

    @property
    def is_constant(self) -> bool:
        return self.is_internal and not self.fanins

    def truth_table(self) -> TruthTable:
        """Local function as a truth table over the ordered fanins."""
        if self.function is None:
            raise ValueError(f"node {self.name!r} has no local function")
        return self.function.to_truth_table()

    def __repr__(self) -> str:
        return f"Node({self.name!r}, {self.kind.value}, fanins={len(self.fanins)})"


class Network:
    """A combinational multi-level Boolean network.

    Construction is incremental: add primary inputs, internal nodes (with
    their covers), then primary outputs pointing at drivers.  The class
    maintains fanout lists and provides topological traversal, structural
    statistics and consistency checking.
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self.primary_inputs: List[Node] = []
        self.primary_outputs: List[Node] = []

    # -- construction --------------------------------------------------------

    def _register(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name: {node.name!r}")
        self._nodes[node.name] = node
        return node

    def add_primary_input(self, name: str) -> Node:
        node = self._register(Node(name, NodeKind.PRIMARY_INPUT))
        self.primary_inputs.append(node)
        return node

    def add_node(
        self,
        name: str,
        fanins: Sequence[Node],
        function: SopCover,
    ) -> Node:
        """Add an internal node computing ``function`` over ``fanins``."""
        if function.num_inputs != len(fanins):
            raise ValueError(
                f"node {name!r}: cover width {function.num_inputs} != "
                f"{len(fanins)} fanins"
            )
        for f in fanins:
            if f.name not in self._nodes or self._nodes[f.name] is not f:
                raise ValueError(f"fanin {f.name!r} is not in this network")
            if f.is_po:
                raise ValueError(f"primary output {f.name!r} cannot drive logic")
        node = self._register(Node(name, NodeKind.INTERNAL, list(fanins), function))
        for f in fanins:
            f.fanouts.append(node)
        return node

    def add_constant(self, name: str, value: bool) -> Node:
        """Add a constant-0 or constant-1 internal node."""
        return self.add_node(name, [], SopCover.constant(value, 0))

    def add_primary_output(self, name: str, driver: Node) -> Node:
        if driver.name not in self._nodes or self._nodes[driver.name] is not driver:
            raise ValueError(f"driver {driver.name!r} is not in this network")
        if driver.is_po:
            raise ValueError(f"primary output cannot drive {name!r}")
        node = self._register(Node(name, NodeKind.PRIMARY_OUTPUT, [driver]))
        driver.fanouts.append(node)
        self.primary_outputs.append(node)
        return node

    # -- lookup / iteration ----------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __getitem__(self, name: str) -> Node:
        return self._nodes[name]

    def get(self, name: str) -> Optional[Node]:
        return self._nodes.get(name)

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    @property
    def internal_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.is_internal]

    def __len__(self) -> int:
        return len(self._nodes)

    def topological_order(self) -> List[Node]:
        """All nodes in topological (fanin-before-fanout) order.

        Raises ``ValueError`` on a combinational cycle.
        """
        order: List[Node] = []
        state: Dict[str, int] = {}  # 0 unseen, 1 on stack, 2 done

        for root in self._nodes.values():
            if state.get(root.name, 0) == 2:
                continue
            stack: List[tuple] = [(root, iter(root.fanins))]
            state[root.name] = 1
            while stack:
                node, it = stack[-1]
                advanced = False
                for child in it:
                    s = state.get(child.name, 0)
                    if s == 1:
                        raise ValueError(
                            f"combinational cycle through {child.name!r}"
                        )
                    if s == 0:
                        state[child.name] = 1
                        stack.append((child, iter(child.fanins)))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    state[node.name] = 2
                    order.append(node)
        return order

    def transitive_fanin(self, roots: Iterable[Node]) -> Set[Node]:
        """All nodes in the transitive fanin of ``roots`` (roots included)."""
        seen: Set[Node] = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(node.fanins)
        return seen

    # -- statistics / maintenance ------------------------------------------------

    def num_literals(self) -> int:
        """Total factored-literal count over all internal nodes."""
        return sum(n.function.num_literals for n in self.internal_nodes)

    def depth(self) -> int:
        """Longest PI-to-PO path length counted in internal nodes."""
        level: Dict[str, int] = {}
        for node in self.topological_order():
            if node.is_pi or node.is_constant:
                level[node.name] = 0
            elif node.is_po:
                level[node.name] = level[node.fanins[0].name]
            else:
                level[node.name] = 1 + max(level[f.name] for f in node.fanins)
        if not self.primary_outputs:
            return 0
        return max(level[po.name] for po in self.primary_outputs)

    def sweep_dangling(self) -> int:
        """Remove internal nodes with no path to any primary output.

        Returns the number of removed nodes.
        """
        live = self.transitive_fanin(self.primary_outputs)
        dead = [
            n for n in self._nodes.values() if n.is_internal and n not in live
        ]
        for node in dead:
            for f in node.fanins:
                f.fanouts.remove(node)
            del self._nodes[node.name]
        return len(dead)

    def check(self) -> None:
        """Validate structural invariants; raises ``ValueError`` on breakage."""
        for node in self._nodes.values():
            for f in node.fanins:
                if self._nodes.get(f.name) is not f:
                    raise ValueError(f"{node.name}: foreign fanin {f.name}")
                if node not in f.fanouts:
                    raise ValueError(f"{node.name}: missing fanout backlink on {f.name}")
            for g in node.fanouts:
                if self._nodes.get(g.name) is not g:
                    raise ValueError(f"{node.name}: foreign fanout {g.name}")
                if node not in g.fanins:
                    raise ValueError(f"{node.name}: fanout {g.name} lacks fanin link")
            if node.is_internal and node.function is None:
                raise ValueError(f"internal node {node.name} lacks a function")
            if node.is_po and len(node.fanins) != 1:
                raise ValueError(f"PO {node.name} must have exactly one driver")
            if node.is_pi and node.fanins:
                raise ValueError(f"PI {node.name} must have no fanins")
        self.topological_order()  # raises on cycles

    def stats(self) -> Dict[str, int]:
        """Summary counts used in reports and tests."""
        return {
            "inputs": len(self.primary_inputs),
            "outputs": len(self.primary_outputs),
            "nodes": len(self.internal_nodes),
            "literals": self.num_literals(),
            "depth": self.depth(),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Network({self.name!r}, pi={s['inputs']}, po={s['outputs']}, "
            f"nodes={s['nodes']}, lits={s['literals']})"
        )
