"""Light technology-independent clean-up.

The paper's input is "a Boolean network ... optimized by technology
independent synthesis procedures".  Full MIS-style kernel extraction is out
of scope, but the clean-up passes every real flow runs before mapping are
here: constant propagation, support reduction, buffer and inverter-pair
collapsing, structural duplicate merging and dead-logic sweeping, iterated
to a fixpoint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.network.logic import SopCover, TruthTable
from repro.network.network import Network, Node

__all__ = ["clean_network", "CleanupStats"]


class CleanupStats(dict):
    """Counts per clean-up action (dict subclass for easy reporting)."""

    def bump(self, key: str, amount: int = 1) -> None:
        self[key] = self.get(key, 0) + amount


def _redirect(old: Node, new: Node) -> int:
    """Rewire every consumer of ``old`` to read ``new``; returns count.

    Fanout lists hold one entry per fanin *connection*, so a sink reading
    ``old`` on two pins moves two entries.
    """
    moved = 0
    for sink in list(dict.fromkeys(old.fanouts)):
        connections = 0
        for i, fanin in enumerate(sink.fanins):
            if fanin is old:
                sink.fanins[i] = new
                connections += 1
        for _ in range(connections):
            old.fanouts.remove(sink)
            new.fanouts.append(sink)
        if connections:
            moved += 1
    return moved


def _detach_fanins(node: Node) -> None:
    for fanin in node.fanins:
        if node in fanin.fanouts:
            fanin.fanouts.remove(node)
    node.fanins = []


def _propagate_constants(net: Network, stats: CleanupStats) -> bool:
    """Cofactor away constant fanins; fold constant nodes."""
    changed = False
    for node in net.topological_order():
        if not node.is_internal or node.is_constant:
            continue
        tt = node.truth_table()
        fanins = list(node.fanins)
        # Cofactor constant fanins.
        for index, fanin in enumerate(fanins):
            if fanin.is_constant:
                value = fanin.function.evaluate([])
                tt = tt.cofactor(index, value)
                changed = True
                stats.bump("constants_propagated")
        # Shrink to true support (also drops the cofactored variables).
        keep = tt.support()
        if len(keep) != len(fanins) or tt != node.truth_table():
            new_fanins = [fanins[i] for i in keep]
            new_tt = tt.project(keep)
            _detach_fanins(node)
            node.fanins = new_fanins
            for f in new_fanins:
                f.fanouts.append(node)
            node.function = new_tt.to_sop()
            changed = True
            stats.bump("support_reduced")
    return changed


def _collapse_wires(net: Network, stats: CleanupStats) -> bool:
    """Replace buffers by their drivers; collapse inverter pairs."""
    changed = False
    identity = TruthTable.variable(0, 1)
    for node in net.topological_order():
        if not node.is_internal or node.num_fanins != 1:
            continue
        tt = node.truth_table()
        driver = node.fanins[0]
        if tt == identity and not driver.is_po:
            if _redirect(node, driver):
                changed = True
                stats.bump("buffers_collapsed")
        elif tt == ~identity:
            # INV(INV(x)) -> x.
            if (
                driver.is_internal
                and driver.num_fanins == 1
                and driver.truth_table() == ~identity
            ):
                grand = driver.fanins[0]
                if not grand.is_po and _redirect(node, grand):
                    changed = True
                    stats.bump("inverter_pairs_collapsed")
    return changed


def _merge_duplicates(net: Network, stats: CleanupStats) -> bool:
    """Share structurally identical nodes (same fanins, same function)."""
    changed = False
    seen: Dict[Tuple, Node] = {}
    for node in net.topological_order():
        if not node.is_internal or node.is_constant:
            continue
        key = (
            tuple(f.name for f in node.fanins),
            node.truth_table().bits,
            node.num_fanins,
        )
        keeper = seen.get(key)
        if keeper is None:
            seen[key] = node
        elif _redirect(node, keeper):
            changed = True
            stats.bump("duplicates_merged")
    return changed


def clean_network(net: Network, max_rounds: int = 10) -> CleanupStats:
    """Run all clean-up passes to a fixpoint (in place).

    Primary-output drivers are preserved by identity only when they would
    become dangling; the function of every output is always preserved.
    """
    stats = CleanupStats()
    for _ in range(max_rounds):
        changed = False
        changed |= _propagate_constants(net, stats)
        changed |= _collapse_wires(net, stats)
        changed |= _merge_duplicates(net, stats)
        removed = net.sweep_dangling()
        if removed:
            stats.bump("swept", removed)
            changed = True
        if not changed:
            break
    net.check()
    return stats
