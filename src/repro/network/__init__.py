"""Boolean network substrate: logic functions, networks, BLIF I/O,
technology decomposition into the NAND2/INV subject graph, and bit-parallel
simulation used for equivalence checking of mapped circuits."""

from repro.network.logic import Cube, SopCover, TruthTable
from repro.network.network import Network, Node, NodeKind
from repro.network.blif import parse_blif, parse_blif_file, write_blif
from repro.network.decompose import decompose_to_subject
from repro.network.subject import SubjectGraph, SubjectNode, SubjectNodeType
from repro.network.simulate import simulate, networks_equivalent
from repro.network.optimize import CleanupStats, clean_network
from repro.network.factor import FactorStats, extract_common_cubes

__all__ = [
    "CleanupStats",
    "clean_network",
    "FactorStats",
    "extract_common_cubes",
    "Cube",
    "SopCover",
    "TruthTable",
    "Network",
    "Node",
    "NodeKind",
    "parse_blif",
    "parse_blif_file",
    "write_blif",
    "decompose_to_subject",
    "SubjectGraph",
    "SubjectNode",
    "SubjectNodeType",
    "simulate",
    "networks_equivalent",
]
