"""The subject graph: the network re-expressed in base functions.

Following DAGON/MIS (Section 2), the optimized Boolean network is converted
into a DAG whose internal nodes are only 2-input NAND gates and inverters.
This is the network "in its unmapped form ... the *inchoate* network,
N_inchoate".  Technology mapping covers this graph with library pattern
graphs.

The graph is structurally hashed: NAND2 nodes are commutatively unique and
inverter chains are shared, which creates the multi-fanout *stems* whose
*branches* and *true fanouts* drive Lily's fanin-rectangle construction.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.network.logic import TruthTable

__all__ = ["SubjectNodeType", "SubjectNode", "SubjectGraph"]

_TT_NAND2 = TruthTable(2, 0b0111)
_TT_INV = TruthTable(1, 0b01)


class SubjectNodeType(enum.Enum):
    """Node species in the subject graph."""

    PRIMARY_INPUT = "pi"
    PRIMARY_OUTPUT = "po"
    NAND2 = "nand2"
    INV = "inv"
    CONST0 = "const0"
    CONST1 = "const1"


class SubjectNode:
    """One base-function node of the inchoate network."""

    __slots__ = ("uid", "name", "type", "fanins", "fanouts", "source")

    def __init__(
        self,
        uid: int,
        name: str,
        node_type: SubjectNodeType,
        fanins: Sequence["SubjectNode"] = (),
    ) -> None:
        self.uid = uid
        self.name = name
        self.type = node_type
        self.fanins: List[SubjectNode] = list(fanins)
        self.fanouts: List[SubjectNode] = []
        #: Name of the source-network node this subject node realises
        #: (set for decomposition roots, ``None`` for interior tree nodes).
        self.source: Optional[str] = None

    @property
    def is_pi(self) -> bool:
        return self.type is SubjectNodeType.PRIMARY_INPUT

    @property
    def is_po(self) -> bool:
        return self.type is SubjectNodeType.PRIMARY_OUTPUT

    @property
    def is_gate(self) -> bool:
        return self.type in (SubjectNodeType.NAND2, SubjectNodeType.INV)

    @property
    def is_constant(self) -> bool:
        return self.type in (SubjectNodeType.CONST0, SubjectNodeType.CONST1)

    @property
    def num_fanouts(self) -> int:
        return len(self.fanouts)

    @property
    def is_stem(self) -> bool:
        """A *stem* is a multiple-fanout node of N_inchoate (Section 2)."""
        return len(self.fanouts) > 1

    def truth_table(self) -> TruthTable:
        """Local function over the ordered fanins (simulation protocol)."""
        if self.type is SubjectNodeType.NAND2:
            return _TT_NAND2
        if self.type is SubjectNodeType.INV:
            return _TT_INV
        if self.type is SubjectNodeType.CONST0:
            return TruthTable.constant(False)
        if self.type is SubjectNodeType.CONST1:
            return TruthTable.constant(True)
        raise ValueError(f"{self.type} node has no local function")

    def __repr__(self) -> str:
        return f"SubjectNode({self.name!r}, {self.type.value})"


class SubjectGraph:
    """A structurally-hashed DAG of NAND2/INV nodes plus PI/PO terminals."""

    def __init__(self, name: str = "subject") -> None:
        self.name = name
        self._nodes: List[SubjectNode] = []
        self.primary_inputs: List[SubjectNode] = []
        self.primary_outputs: List[SubjectNode] = []
        self._by_name: Dict[str, SubjectNode] = {}
        # Structural-hash tables.
        self._nand_cache: Dict[Tuple[int, int], SubjectNode] = {}
        self._inv_cache: Dict[int, SubjectNode] = {}
        self._const: Dict[bool, SubjectNode] = {}
        self._counter = 0

    # -- construction -----------------------------------------------------------

    def _new_node(
        self,
        name: Optional[str],
        node_type: SubjectNodeType,
        fanins: Sequence[SubjectNode] = (),
    ) -> SubjectNode:
        uid = self._counter
        self._counter += 1
        if name is None:
            name = f"{node_type.value}_{uid}"
        if name in self._by_name:
            raise ValueError(f"duplicate subject node name: {name!r}")
        node = SubjectNode(uid, name, node_type, fanins)
        for f in fanins:
            f.fanouts.append(node)
        self._nodes.append(node)
        self._by_name[name] = node
        return node

    def add_primary_input(self, name: str) -> SubjectNode:
        node = self._new_node(name, SubjectNodeType.PRIMARY_INPUT)
        self.primary_inputs.append(node)
        return node

    def add_primary_output(self, name: str, driver: SubjectNode) -> SubjectNode:
        if driver.is_po:
            raise ValueError("primary output cannot drive another output")
        node = self._new_node(name, SubjectNodeType.PRIMARY_OUTPUT, [driver])
        self.primary_outputs.append(node)
        return node

    def constant(self, value: bool) -> SubjectNode:
        """The shared constant node (created on first use)."""
        if value not in self._const:
            node_type = SubjectNodeType.CONST1 if value else SubjectNodeType.CONST0
            self._const[value] = self._new_node(None, node_type)
        return self._const[value]

    def nand(self, a: SubjectNode, b: SubjectNode) -> SubjectNode:
        """Structurally-hashed 2-input NAND (commutative).

        Degenerate forms are simplified on the fly: ``NAND(x, x) = !x``,
        ``NAND(x, 1) = !x``, ``NAND(x, 0) = 1``.
        """
        for n in (a, b):
            if n.is_po:
                raise ValueError("primary output cannot drive logic")
        if a is b:
            return self.inv(a)
        if a.type is SubjectNodeType.CONST0 or b.type is SubjectNodeType.CONST0:
            return self.constant(True)
        if a.type is SubjectNodeType.CONST1:
            return self.inv(b)
        if b.type is SubjectNodeType.CONST1:
            return self.inv(a)
        key = (min(a.uid, b.uid), max(a.uid, b.uid))
        node = self._nand_cache.get(key)
        if node is None:
            node = self._new_node(None, SubjectNodeType.NAND2, [a, b])
            self._nand_cache[key] = node
        return node

    def inv(self, a: SubjectNode) -> SubjectNode:
        """Structurally-hashed inverter; collapses inverter pairs and
        complements constants."""
        if a.is_po:
            raise ValueError("primary output cannot drive logic")
        if a.type is SubjectNodeType.INV:
            return a.fanins[0]
        if a.type is SubjectNodeType.CONST0:
            return self.constant(True)
        if a.type is SubjectNodeType.CONST1:
            return self.constant(False)
        node = self._inv_cache.get(a.uid)
        if node is None:
            node = self._new_node(None, SubjectNodeType.INV, [a])
            self._inv_cache[a.uid] = node
        return node

    # -- lookup / iteration -------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> SubjectNode:
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[SubjectNode]:
        return list(self._nodes)

    @property
    def gates(self) -> List[SubjectNode]:
        """All NAND2/INV nodes (the placeable base-function gates)."""
        return [n for n in self._nodes if n.is_gate]

    def topological_order(self) -> List[SubjectNode]:
        """Nodes in fanin-before-fanout order (graph is acyclic by build)."""
        order: List[SubjectNode] = []
        done: Set[int] = set()
        for root in self._nodes:
            if root.uid in done:
                continue
            stack: List[Tuple[SubjectNode, int]] = [(root, 0)]
            while stack:
                node, idx = stack[-1]
                if idx < len(node.fanins):
                    stack[-1] = (node, idx + 1)
                    child = node.fanins[idx]
                    if child.uid not in done and all(
                        s[0] is not child for s in stack
                    ):
                        stack.append((child, 0))
                else:
                    stack.pop()
                    if node.uid not in done:
                        done.add(node.uid)
                        order.append(node)
        return order

    def transitive_fanin(self, roots: Iterable[SubjectNode]) -> Set[SubjectNode]:
        """All nodes in the transitive fanin of ``roots`` (roots included)."""
        seen: Set[SubjectNode] = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(node.fanins)
        return seen

    def sweep_dangling(self) -> int:
        """Remove gates with no path to a primary output; returns count removed."""
        live = self.transitive_fanin(self.primary_outputs)
        dead = [n for n in self._nodes if (n.is_gate or n.is_constant) and n not in live]
        dead_set = set(dead)
        for node in dead:
            for f in node.fanins:
                f.fanouts.remove(node)
            del self._by_name[node.name]
        self._nodes = [n for n in self._nodes if n not in dead_set]
        self._nand_cache = {
            k: v for k, v in self._nand_cache.items() if v not in dead_set
        }
        self._inv_cache = {
            k: v for k, v in self._inv_cache.items() if v not in dead_set
        }
        self._const = {k: v for k, v in self._const.items() if v not in dead_set}
        return len(dead)

    # -- structure queries used by the mappers ------------------------------------

    def tree_roots(self) -> List[SubjectNode]:
        """Roots of the maximal-tree partition used by DAGON.

        A gate is a tree root iff it is a stem (multi-fanout), feeds a primary
        output, or has no fanout at all.
        """
        roots = []
        for node in self._nodes:
            if not node.is_gate:
                continue
            if node.num_fanouts != 1 or node.fanouts[0].is_po:
                roots.append(node)
        return roots

    def cone_nodes(self, po: SubjectNode) -> Set[SubjectNode]:
        """The logic cone K_i of a primary output: its transitive fanin gates."""
        cone = self.transitive_fanin([po])
        return {n for n in cone if n.is_gate}

    def check(self) -> None:
        """Validate structural invariants; raises ``ValueError`` on breakage."""
        for node in self._nodes:
            expected = {
                SubjectNodeType.PRIMARY_INPUT: 0,
                SubjectNodeType.PRIMARY_OUTPUT: 1,
                SubjectNodeType.NAND2: 2,
                SubjectNodeType.INV: 1,
                SubjectNodeType.CONST0: 0,
                SubjectNodeType.CONST1: 0,
            }[node.type]
            if len(node.fanins) != expected:
                raise ValueError(
                    f"{node.name}: {node.type.value} with {len(node.fanins)} fanins"
                )
            for f in node.fanins:
                if node not in f.fanouts:
                    raise ValueError(f"{node.name}: missing fanout backlink on {f.name}")
            for g in node.fanouts:
                if node not in g.fanins:
                    raise ValueError(f"{node.name}: fanout {g.name} lacks fanin link")

    def stats(self) -> Dict[str, int]:
        counts = {t: 0 for t in SubjectNodeType}
        for n in self._nodes:
            counts[n.type] += 1
        return {
            "inputs": counts[SubjectNodeType.PRIMARY_INPUT],
            "outputs": counts[SubjectNodeType.PRIMARY_OUTPUT],
            "nand2": counts[SubjectNodeType.NAND2],
            "inv": counts[SubjectNodeType.INV],
            "gates": counts[SubjectNodeType.NAND2] + counts[SubjectNodeType.INV],
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"SubjectGraph({self.name!r}, pi={s['inputs']}, po={s['outputs']}, "
            f"nand2={s['nand2']}, inv={s['inv']})"
        )
