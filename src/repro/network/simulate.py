"""Bit-parallel network simulation and combinational equivalence checking.

Every mapped circuit in the test and benchmark suites is verified against
its source network by simulation: exhaustively for small input counts, with
a large randomized vector set otherwise.  Words are arbitrary-precision
Python integers, so one pass simulates thousands of vectors at once.
"""

from __future__ import annotations

import functools
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.logic import SopCover, TruthTable

__all__ = ["simulate", "evaluate_words", "networks_equivalent"]


@functools.lru_cache(maxsize=65536)
def _cached_sop(num_inputs: int, bits: int) -> Tuple[str, ...]:
    """Cube masks of a (cached) SOP cover for the given truth table."""
    cover = TruthTable(num_inputs, bits).to_sop()
    return tuple(c.mask for c in cover.cubes)


def _eval_tt_words(tt: TruthTable, fanin_words: Sequence[int], mask: int) -> int:
    """Evaluate a truth table over bit-parallel fanin words."""
    const = tt.is_constant()
    if const is not None:
        return mask if const else 0
    out = 0
    for cube in _cached_sop(tt.num_inputs, tt.bits):
        term = mask
        for i, lit in enumerate(cube):
            if lit == "1":
                term &= fanin_words[i]
            elif lit == "0":
                term &= ~fanin_words[i]
            if not term:
                break
        out |= term & mask
    return out


def evaluate_words(net, pi_words: Dict[str, int], width: int) -> Dict[str, int]:
    """Simulate ``width`` vectors in parallel; returns PO port -> output word.

    Works for any network-like object whose nodes expose ``is_pi``/``is_po``,
    ``fanins`` and ``truth_table()`` — both the unmapped
    :class:`~repro.network.network.Network` and the mapped netlist satisfy
    this protocol.
    """
    mask = (1 << width) - 1
    values: Dict[str, int] = {}
    for node in net.topological_order():
        if node.is_pi:
            if node.name not in pi_words:
                raise KeyError(f"missing stimulus for input {node.name!r}")
            values[node.name] = pi_words[node.name] & mask
        elif node.is_po:
            values[node.name] = values[node.fanins[0].name]
        else:
            fanin_words = [values[f.name] for f in node.fanins]
            values[node.name] = _eval_tt_words(node.truth_table(), fanin_words, mask)
    return {po.name: values[po.name] for po in net.primary_outputs}


def simulate(net, assignment: Dict[str, bool]) -> Dict[str, bool]:
    """Single-vector simulation; returns PO name -> value."""
    pi_words = {name: (1 if value else 0) for name, value in assignment.items()}
    out = evaluate_words(net, pi_words, width=1)
    return {name: bool(word & 1) for name, word in out.items()}


def _po_port(name: str) -> str:
    """Strip the ``__po`` wrapper suffix so ports compare across netlists."""
    return name[:-4] if name.endswith("__po") else name


def networks_equivalent(
    a,
    b,
    num_vectors: int = 4096,
    seed: int = 0,
    exhaustive_limit: int = 12,
) -> bool:
    """Check two networks compute the same function, matching ports by name.

    Inputs with up to ``exhaustive_limit`` PIs are checked exhaustively;
    larger ones use ``num_vectors`` random vectors (bit-parallel).
    """
    a_pis = sorted(pi.name for pi in a.primary_inputs)
    b_pis = sorted(pi.name for pi in b.primary_inputs)
    if a_pis != b_pis:
        return False
    a_pos = sorted(_po_port(po.name) for po in a.primary_outputs)
    b_pos = sorted(_po_port(po.name) for po in b.primary_outputs)
    if a_pos != b_pos:
        return False

    n = len(a_pis)
    if n <= exhaustive_limit:
        width = 1 << n
        pi_words = {
            name: TruthTable.variable(i, n).bits for i, name in enumerate(a_pis)
        }
    else:
        width = num_vectors
        rng = random.Random(seed)
        pi_words = {name: rng.getrandbits(width) for name in a_pis}

    out_a = {
        _po_port(k): v for k, v in evaluate_words(a, pi_words, width).items()
    }
    out_b = {
        _po_port(k): v for k, v in evaluate_words(b, pi_words, width).items()
    }
    return out_a == out_b
