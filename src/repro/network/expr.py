"""A small Boolean-expression language and parser.

Used by the genlib library reader (cell functions like ``!(A*B+C*D)``), by
the circuit generators, and by tests.  Supported syntax:

* identifiers (``[A-Za-z_][A-Za-z0-9_\\[\\]\\.]*``), constants ``0`` / ``1``
* negation: prefix ``!`` or postfix ``'``
* conjunction: ``*`` or ``&``
* disjunction: ``+`` or ``|``
* exclusive-or: ``^``
* parentheses

Precedence, loosest to tightest: ``+`` < ``^`` < ``*`` < negation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.logic import TruthTable

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Not",
    "And",
    "Or",
    "Xor",
    "parse_expression",
    "ExprError",
]


class ExprError(ValueError):
    """Raised on a malformed expression."""


class Expr:
    """Base class for expression AST nodes."""

    def variables(self) -> List[str]:
        """Variable names in order of first occurrence (left to right)."""
        seen: List[str] = []
        self._collect(seen)
        return seen

    def _collect(self, seen: List[str]) -> None:
        raise NotImplementedError

    def evaluate(self, env: Dict[str, bool]) -> bool:
        raise NotImplementedError

    def to_truth_table(self, var_order: Optional[Sequence[str]] = None) -> TruthTable:
        """Dense truth table over ``var_order`` (default: first-occurrence order)."""
        order = list(var_order) if var_order is not None else self.variables()
        index = {name: i for i, name in enumerate(order)}
        missing = [v for v in self.variables() if v not in index]
        if missing:
            raise ExprError(f"variables not in order list: {missing}")

        def fn(assignment: Tuple[bool, ...]) -> bool:
            env = {name: assignment[index[name]] for name in order}
            return self.evaluate(env)

        return TruthTable.from_function(len(order), fn)


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def _collect(self, seen: List[str]) -> None:
        if self.name not in seen:
            seen.append(self.name)

    def evaluate(self, env: Dict[str, bool]) -> bool:
        return env[self.name]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    value: bool

    def _collect(self, seen: List[str]) -> None:
        pass

    def evaluate(self, env: Dict[str, bool]) -> bool:
        return self.value

    def __str__(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class Not(Expr):
    child: Expr

    def _collect(self, seen: List[str]) -> None:
        self.child._collect(seen)

    def evaluate(self, env: Dict[str, bool]) -> bool:
        return not self.child.evaluate(env)

    def __str__(self) -> str:
        return f"!{self.child}" if isinstance(self.child, (Var, Const)) else f"!({self.child})"


class _Nary(Expr):
    """Common base for associative n-ary connectives."""

    symbol = "?"

    def __init__(self, children: Sequence[Expr]) -> None:
        if len(children) < 2:
            raise ExprError(f"{type(self).__name__} needs >= 2 children")
        self.children: Tuple[Expr, ...] = tuple(children)

    def _collect(self, seen: List[str]) -> None:
        for child in self.children:
            child._collect(seen)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.children == other.children

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.children))

    def __str__(self) -> str:
        parts = []
        for child in self.children:
            text = str(child)
            if isinstance(child, _Nary):
                text = f"({text})"
            parts.append(text)
        return self.symbol.join(parts)


class And(_Nary):
    symbol = "*"

    def evaluate(self, env: Dict[str, bool]) -> bool:
        return all(c.evaluate(env) for c in self.children)


class Or(_Nary):
    symbol = "+"

    def evaluate(self, env: Dict[str, bool]) -> bool:
        return any(c.evaluate(env) for c in self.children)


class Xor(_Nary):
    symbol = "^"

    def evaluate(self, env: Dict[str, bool]) -> bool:
        result = False
        for c in self.children:
            result ^= c.evaluate(env)
        return result


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z0-9_\[\]\.]*)"
    r"|(?P<const>[01])"
    r"|(?P<op>[!'*&+|^()]))"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ExprError(f"bad character at {text[pos:]!r}")
        if m.end() == pos:  # only whitespace consumed and nothing matched
            break
        if m.group("ident"):
            tokens.append(("ident", m.group("ident")))
        elif m.group("const"):
            tokens.append(("const", m.group("const")))
        else:
            op = m.group("op")
            op = {"&": "*", "|": "+"}.get(op, op)
            tokens.append(("op", op))
        pos = m.end()
    return tokens


class _Parser:
    """Recursive-descent parser: or_expr > xor_expr > and_expr > unary."""

    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> Tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise ExprError("unexpected end of expression")
        self.pos += 1
        return tok

    def expect_op(self, op: str) -> None:
        tok = self.take()
        if tok != ("op", op):
            raise ExprError(f"expected {op!r}, got {tok!r}")

    def parse(self) -> Expr:
        expr = self.or_expr()
        if self.peek() is not None:
            raise ExprError(f"trailing tokens: {self.tokens[self.pos:]!r}")
        return expr

    def or_expr(self) -> Expr:
        parts = [self.xor_expr()]
        while self.peek() == ("op", "+"):
            self.take()
            parts.append(self.xor_expr())
        return parts[0] if len(parts) == 1 else Or(parts)

    def xor_expr(self) -> Expr:
        parts = [self.and_expr()]
        while self.peek() == ("op", "^"):
            self.take()
            parts.append(self.and_expr())
        return parts[0] if len(parts) == 1 else Xor(parts)

    def and_expr(self) -> Expr:
        parts = [self.unary()]
        while self.peek() == ("op", "*"):
            self.take()
            parts.append(self.unary())
        return parts[0] if len(parts) == 1 else And(parts)

    def unary(self) -> Expr:
        tok = self.take()
        if tok == ("op", "!"):
            return self._postfix(Not(self.unary()))
        if tok == ("op", "("):
            inner = self.or_expr()
            self.expect_op(")")
            return self._postfix(inner)
        if tok[0] == "ident":
            return self._postfix(Var(tok[1]))
        if tok[0] == "const":
            return self._postfix(Const(tok[1] == "1"))
        raise ExprError(f"unexpected token {tok!r}")

    def _postfix(self, expr: Expr) -> Expr:
        while self.peek() == ("op", "'"):
            self.take()
            expr = Not(expr)
        return expr


def parse_expression(text: str) -> Expr:
    """Parse Boolean-expression text into an AST."""
    tokens = _tokenize(text)
    if not tokens:
        raise ExprError("empty expression")
    return _Parser(tokens).parse()
