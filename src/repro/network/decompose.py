"""Technology decomposition: Boolean network -> NAND2/INV subject graph.

Every internal node's SOP cover is expanded into a balanced tree of 2-input
NANDs and inverters (the DAGON/MIS base-function set).  The decomposition is
polarity-aware — AND trees produce their complemented form for free at the
root NAND — and the subject graph's structural hashing shares common
subtrees, creating the multi-fanout stems of Section 2.

Section 1 (Figure 1.1b) argues the *shape* of the decomposition tree should
agree with placement: fanins that sit near one another on the layout plane
should enter the tree at topologically-near points.  The ``positions``
argument enables that layout-driven mode: leaves are merged
nearest-cluster-first (greedy agglomerative pairing on the companion
placement) instead of in textual order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.geometry import Point
from repro.network.network import Network, Node
from repro.network.subject import SubjectGraph, SubjectNode
from repro.obs import OBS

__all__ = ["decompose_to_subject", "proximity_pairer", "balanced_pairer"]

#: A pairing strategy reduces a list of (node, position) clusters by one
#: merge step, returning the indices of the two clusters to combine next.
Pairer = Callable[[List[Tuple[SubjectNode, Optional[Point]]]], Tuple[int, int]]


def balanced_pairer(
    clusters: List[Tuple[SubjectNode, Optional[Point]]]
) -> Tuple[int, int]:
    """Merge the first two clusters: with re-appending at the back this
    yields a balanced (breadth-first) reduction tree."""
    return 0, 1


def proximity_pairer(
    clusters: List[Tuple[SubjectNode, Optional[Point]]]
) -> Tuple[int, int]:
    """Merge the two geometrically closest clusters (layout-driven mode).

    Clusters without a position fall back to maximal distance so that
    placed leaves pair up among themselves first.
    """
    best = (0, 1)
    best_dist = float("inf")
    for i in range(len(clusters)):
        for j in range(i + 1, len(clusters)):
            pi, pj = clusters[i][1], clusters[j][1]
            if pi is None or pj is None:
                dist = float("inf")
            else:
                dist = abs(pi.x - pj.x) + abs(pi.y - pj.y)
            if dist < best_dist:
                best_dist = dist
                best = (i, j)
    return best


def _merged_position(a: Optional[Point], b: Optional[Point]) -> Optional[Point]:
    if a is None:
        return b
    if b is None:
        return a
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def _and_tree(
    graph: SubjectGraph,
    leaves: Sequence[Tuple[SubjectNode, Optional[Point]]],
    invert_output: bool,
    pairer: Pairer,
) -> SubjectNode:
    """Build AND(leaves) (or NAND at the root when ``invert_output``)."""
    if not leaves:
        raise ValueError("empty AND tree")
    if len(leaves) == 1:
        node = leaves[0][0]
        return graph.inv(node) if invert_output else node
    clusters = list(leaves)
    while len(clusters) > 2:
        i, j = pairer(clusters)
        if i > j:
            i, j = j, i
        (na, pa) = clusters[i]
        (nb, pb) = clusters[j]
        merged = (graph.inv(graph.nand(na, nb)), _merged_position(pa, pb))
        del clusters[j]
        del clusters[i]
        clusters.append(merged)
    top = graph.nand(clusters[0][0], clusters[1][0])
    return top if invert_output else graph.inv(top)


def _decompose_cover(
    graph: SubjectGraph,
    node: Node,
    fanin_subjects: Sequence[SubjectNode],
    fanin_positions: Sequence[Optional[Point]],
    pairer: Pairer,
) -> SubjectNode:
    """Decompose one network node's SOP cover into subject-graph gates."""
    cover = node.function
    if not cover.cubes:
        return graph.constant(False)
    if any(c.num_literals == 0 for c in cover.cubes):
        return graph.constant(True)

    negated_cubes: List[Tuple[SubjectNode, Optional[Point]]] = []
    cube_nodes: List[Tuple[SubjectNode, Optional[Point]]] = []
    single_cube = len(cover.cubes) == 1
    for cube in cover.cubes:
        literals: List[Tuple[SubjectNode, Optional[Point]]] = []
        for i, lit in enumerate(cube.mask):
            if lit == "-":
                continue
            leaf = fanin_subjects[i]
            if lit == "0":
                leaf = graph.inv(leaf)
            literals.append((leaf, fanin_positions[i]))
        position = literals[0][1] if len(literals) == 1 else None
        if single_cube:
            cube_nodes.append(
                (_and_tree(graph, literals, invert_output=False, pairer=pairer), position)
            )
        else:
            negated_cubes.append(
                (_and_tree(graph, literals, invert_output=True, pairer=pairer), position)
            )
    if single_cube:
        return cube_nodes[0][0]
    # OR of cubes: OR(c_i) = NAND(!c_1, ..., !c_k) built as an AND tree over
    # the negated cubes with an inverted root.
    return _and_tree(graph, negated_cubes, invert_output=True, pairer=pairer)


def decompose_to_subject(
    net: Network,
    positions: Optional[Dict[str, Point]] = None,
    pairer: Optional[Pairer] = None,
) -> SubjectGraph:
    """Convert a Boolean network into its NAND2/INV subject graph.

    Args:
        net: the technology-independent optimized network.
        positions: optional companion placement, keyed by *network* node
            name.  When given (and no explicit ``pairer``), decomposition
            trees are built proximity-first so that nearby signals enter
            each tree at topologically-near points (Figure 1.1).
        pairer: explicit leaf-pairing strategy, overriding the default.

    Returns:
        The inchoate network N_inchoate as a :class:`SubjectGraph`.
    """
    if pairer is None:
        pairer = proximity_pairer if positions is not None else balanced_pairer
    positions = positions or {}

    graph = SubjectGraph(net.name)
    node_map: Dict[str, SubjectNode] = {}
    for pi in net.primary_inputs:
        node_map[pi.name] = graph.add_primary_input(pi.name)

    covers = 0
    for node in net.topological_order():
        if node.is_pi or node.is_po:
            continue
        fanin_subjects = [node_map[f.name] for f in node.fanins]
        fanin_positions = [positions.get(f.name) for f in node.fanins]
        subject = _decompose_cover(
            graph, node, fanin_subjects, fanin_positions, pairer
        )
        if subject.is_gate and subject.source is None:
            subject.source = node.name
        node_map[node.name] = subject
        covers += 1

    for po in net.primary_outputs:
        graph.add_primary_output(po.name, node_map[po.fanins[0].name])
    graph.sweep_dangling()
    graph.check()
    if OBS.enabled:
        OBS.metrics.counter("decompose.covers").inc(covers)
        OBS.metrics.counter("decompose.subject_gates").inc(len(graph.gates))
    return graph
