"""Common-cube extraction (a slice of MIS's technology-independent phase).

The paper's introduction discusses how "excessive factorization based on
common kernel extraction during the technology independent phase ... can
lead to gates with high fanout count and increased path delay" — exactly
the kind of network Lily is designed to map well.  This module implements
greedy common-*cube* extraction (the 0-level kernel case): two-literal
products that appear in several covers are pulled out into shared nodes,
reducing literals while creating multi-fanout divisor nodes.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.network.logic import Cube, SopCover
from repro.network.network import Network, Node

__all__ = ["FactorStats", "extract_common_cubes"]

#: A literal: (signal name, phase character '1' or '0').
Literal = Tuple[str, str]


@dataclass
class FactorStats:
    """Outcome of the extraction pass."""

    divisors_added: int = 0
    literals_before: int = 0
    literals_after: int = 0
    rewrites: int = 0

    @property
    def literals_saved(self) -> int:
        return self.literals_before - self.literals_after


def _cube_literals(node: Node, cube: Cube) -> List[Literal]:
    return [
        (node.fanins[i].name, c)
        for i, c in enumerate(cube.mask)
        if c != "-"
    ]


def _count_pairs(net: Network) -> Counter:
    """Occurrences of each unordered two-literal product across all covers."""
    counts: Counter = Counter()
    for node in net.internal_nodes:
        if node.is_constant:
            continue
        for cube in node.function.cubes:
            literals = sorted(set(_cube_literals(node, cube)))
            for a, b in itertools.combinations(literals, 2):
                if a[0] == b[0]:
                    continue  # same signal, both phases: degenerate
                counts[(a, b)] += 1
    return counts


def _rewrite_cover(
    node: Node, pair: Tuple[Literal, Literal], divisor: Node
) -> int:
    """Replace occurrences of the pair in ``node``'s cover with the divisor.

    Returns the number of cubes rewritten.  The divisor is appended as a
    new fanin when needed.
    """
    (name_a, phase_a), (name_b, phase_b) = pair
    fanin_names = [f.name for f in node.fanins]
    positions_a = [
        i for i, n in enumerate(fanin_names) if n == name_a
    ]
    positions_b = [
        i for i, n in enumerate(fanin_names) if n == name_b
    ]
    if not positions_a or not positions_b:
        return 0

    rewritten = 0
    divisor_index: Optional[int] = None
    new_cubes: List[str] = [c.mask for c in node.function.cubes]
    for k, mask in enumerate(new_cubes):
        hit_a = next((i for i in positions_a if mask[i] == phase_a), None)
        hit_b = next((i for i in positions_b if mask[i] == phase_b), None)
        if hit_a is None or hit_b is None:
            continue
        if divisor_index is None:
            if divisor.name in fanin_names:
                divisor_index = fanin_names.index(divisor.name)
            else:
                node.fanins.append(divisor)
                divisor.fanouts.append(node)
                fanin_names.append(divisor.name)
                divisor_index = len(fanin_names) - 1
                new_cubes = [m + "-" for m in new_cubes]
                mask = new_cubes[k]
        chars = list(mask)
        chars[hit_a] = "-"
        chars[hit_b] = "-"
        if divisor_index >= len(chars):
            chars.extend("-" * (divisor_index + 1 - len(chars)))
        chars[divisor_index] = "1"
        new_cubes[k] = "".join(chars)
        rewritten += 1
    if rewritten:
        width = len(node.fanins)
        node.function = SopCover(
            width,
            [Cube(m.ljust(width, "-")) for m in new_cubes],
        )
    return rewritten


def extract_common_cubes(
    net: Network,
    min_occurrences: int = 3,
    max_divisors: int = 200,
) -> FactorStats:
    """Greedy common-cube extraction, in place.

    Repeatedly finds the two-literal product with the most occurrences
    across all covers (at least ``min_occurrences``, below which extraction
    saves no literals), creates a shared AND node for it, and rewrites the
    covers to read the divisor.  Divisor nodes are shared across consumers
    (they become the multi-fanout points the paper's introduction talks
    about).

    Returns literal-count statistics.  Function is always preserved.
    """
    stats = FactorStats(literals_before=net.num_literals())
    divisors: Dict[Tuple[Literal, Literal], Node] = {}
    counter = 0
    while stats.divisors_added < max_divisors:
        counts = _count_pairs(net)
        # Never re-extract through an existing divisor output with the
        # same literal pair (its cover is exactly that pair).
        best: Optional[Tuple[Literal, Literal]] = None
        best_count = min_occurrences - 1
        for pair, count in counts.items():
            if count > best_count and pair not in divisors:
                existing = divisors.get(pair)
                if existing is not None:
                    continue
                best, best_count = pair, count
        if best is None:
            break
        (name_a, phase_a), (name_b, phase_b) = best
        counter += 1
        divisor_name = f"_cx{counter}"
        while divisor_name in net:
            counter += 1
            divisor_name = f"_cx{counter}"
        mask = ("1" if phase_a == "1" else "0") + (
            "1" if phase_b == "1" else "0"
        )
        divisor = net.add_node(
            divisor_name,
            [net[name_a], net[name_b]],
            SopCover(2, [Cube(mask)]),
        )
        divisors[best] = divisor
        for node in net.internal_nodes:
            if node is divisor or node.is_constant:
                continue
            stats.rewrites += _rewrite_cover(node, best, divisor)
        stats.divisors_added += 1
    # Rewrites can leave vacuous fanin columns; clean them up.
    from repro.network.optimize import clean_network

    clean_network(net)
    stats.literals_after = net.num_literals()
    net.check()
    return stats
