"""BLIF (Berkeley Logic Interchange Format) reader and writer.

Supports the combinational subset used by MIS-era tools: ``.model``,
``.inputs``, ``.outputs``, ``.names`` with single-output covers, and ``.end``.
Latches and subcircuits are out of scope for this reproduction (the paper
maps combinational networks).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.logic import Cube, SopCover
from repro.network.network import Network, Node

__all__ = ["parse_blif", "parse_blif_file", "write_blif", "BlifError"]


class BlifError(ValueError):
    """Raised on malformed BLIF input.

    The message is prefixed with ``filename:line:`` context whenever it is
    known; the bare reason, file name and line number are also available as
    the :attr:`reason`, :attr:`filename` and :attr:`line` attributes.
    """

    def __init__(self, reason: str, filename: Optional[str] = None,
                 line: Optional[int] = None):
        self.reason = reason
        self.filename = filename
        self.line = line
        prefix = filename or "<blif>"
        if line is not None:
            prefix += f":{line}"
        super().__init__(f"{prefix}: {reason}")


def _logical_lines(text: str) -> List[Tuple[int, str]]:
    """Split text into ``(lineno, line)`` logical lines.

    Comments are stripped and ``\\`` continuations joined; a joined line
    reports the 1-based number of its first physical line.
    """
    lines: List[Tuple[int, str]] = []
    pending = ""
    pending_start = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        # Strip comments; BLIF comments run from '#' to end of line.
        hash_pos = raw.find("#")
        if hash_pos >= 0:
            raw = raw[:hash_pos]
        raw = raw.rstrip()
        if raw.endswith("\\"):
            if not pending:
                pending_start = lineno
            pending += raw[:-1] + " "
            continue
        line = (pending + raw).strip()
        start = pending_start if pending else lineno
        pending = ""
        if line:
            lines.append((start, line))
    if pending.strip():
        lines.append((pending_start, pending.strip()))
    return lines


def parse_blif(text: str, name: Optional[str] = None,
               filename: Optional[str] = None) -> Network:
    """Parse BLIF text into a :class:`Network`.

    Node declaration order in the file need not be topological; signals may
    be used before the ``.names`` block defining them appears.  ``filename``
    is only used to contextualise :class:`BlifError` messages.
    """
    lines = _logical_lines(text)
    model_name = name or "blif"
    inputs: List[str] = []
    outputs: List[str] = []
    # Each .names block: (lineno, output_signal, input_signals, rows)
    names_blocks: List[
        Tuple[int, str, List[str], List[Tuple[str, str]]]
    ] = []

    i = 0
    while i < len(lines):
        lineno, line = lines[i]
        tokens = line.split()
        directive = tokens[0]
        if directive == ".model":
            if len(tokens) > 1 and name is None:
                model_name = tokens[1]
            i += 1
        elif directive == ".inputs":
            inputs.extend(tokens[1:])
            i += 1
        elif directive == ".outputs":
            outputs.extend(tokens[1:])
            i += 1
        elif directive == ".names":
            signals = tokens[1:]
            if not signals:
                raise BlifError(".names with no signals", filename, lineno)
            out_sig = signals[-1]
            in_sigs = signals[:-1]
            rows: List[Tuple[str, str]] = []
            i += 1
            while i < len(lines) and not lines[i][1].startswith("."):
                row_lineno, row = lines[i]
                parts = row.split()
                if in_sigs:
                    if len(parts) != 2:
                        raise BlifError(
                            f"bad cover row {row!r}: expected "
                            f"'<mask> <value>'", filename, row_lineno)
                    mask, value = parts
                    if len(mask) != len(in_sigs):
                        raise BlifError(
                            f"cover row {row!r}: mask width {len(mask)} != "
                            f"{len(in_sigs)} inputs of {out_sig!r}",
                            filename, row_lineno)
                else:
                    if len(parts) != 1:
                        raise BlifError(
                            f"bad constant row {row!r}: expected a single "
                            f"output value", filename, row_lineno)
                    mask, value = "", parts[0]
                if value not in ("0", "1"):
                    raise BlifError(
                        f"bad output value {value!r} in row {row!r} "
                        f"(must be 0 or 1)", filename, row_lineno)
                rows.append((mask, value))
                i += 1
            names_blocks.append((lineno, out_sig, in_sigs, rows))
        elif directive == ".end":
            i += 1
        elif directive in (".latch", ".subckt", ".gate", ".mlatch"):
            raise BlifError(
                f"unsupported BLIF directive: {directive} (only the "
                f"combinational subset is accepted, see docs/FORMATS.md)",
                filename, lineno)
        else:
            raise BlifError(f"unknown BLIF directive: {directive}",
                            filename, lineno)

    return _build_network(model_name, inputs, outputs, names_blocks,
                          filename)


def parse_blif_file(path: str) -> Network:
    """Parse a BLIF file from disk."""
    with open(path) as f:
        return parse_blif(f.read(), filename=path)


def _cover_from_rows(
    num_inputs: int, rows: Sequence[Tuple[str, str]],
    filename: Optional[str], line: Optional[int], out_sig: str,
) -> SopCover:
    """Convert .names rows to an on-set SOP cover.

    BLIF permits either on-set rows (value ``1``) or off-set rows (value
    ``0``), not a mixture.  Off-set covers are complemented via truth tables
    (node functions are small, so this is cheap).
    """
    if not rows:
        return SopCover.constant(False, num_inputs)
    values = {value for _, value in rows}
    if values == {"1"}:
        return SopCover(num_inputs, [Cube(mask) for mask, _ in rows])
    if values == {"0"}:
        off = SopCover(num_inputs, [Cube(mask) for mask, _ in rows])
        return (~off.to_truth_table()).to_sop()
    raise BlifError(
        f"mixed on-set and off-set rows in .names block for {out_sig!r}",
        filename, line)


def _build_network(
    model_name: str,
    inputs: List[str],
    outputs: List[str],
    names_blocks: List[Tuple[int, str, List[str], List[Tuple[str, str]]]],
    filename: Optional[str] = None,
) -> Network:
    net = Network(model_name)
    defined: Dict[str, int] = {}
    for lineno, out, _, _ in names_blocks:
        if out in defined:
            raise BlifError(
                f"signal {out!r} driven by more than one .names block "
                f"(first defined at line {defined[out]})", filename, lineno)
        defined[out] = lineno
    for sig in inputs:
        if sig in defined:
            raise BlifError(
                f"signal {sig!r} is both a .names output and an input",
                filename, defined[sig])
        net.add_primary_input(sig)

    # Build internal nodes in dependency order (blocks may appear unordered).
    remaining = list(names_blocks)
    placed: Dict[str, Node] = {pi.name: pi for pi in net.primary_inputs}
    while remaining:
        progressed = False
        deferred = []
        for lineno, out_sig, in_sigs, rows in remaining:
            if all(s in placed for s in in_sigs):
                cover = _cover_from_rows(len(in_sigs), rows, filename,
                                         lineno, out_sig)
                node = net.add_node(out_sig, [placed[s] for s in in_sigs], cover)
                placed[out_sig] = node
                progressed = True
            else:
                deferred.append((lineno, out_sig, in_sigs, rows))
        if not progressed:
            missing = sorted(
                {
                    s
                    for _, _, in_sigs, _ in deferred
                    for s in in_sigs
                    if s not in placed and s not in defined
                }
            )
            if missing:
                first = min(
                    lineno for lineno, _, in_sigs, _ in deferred
                    if any(s in missing for s in in_sigs)
                )
                raise BlifError(
                    f"undefined signals: {', '.join(missing)}",
                    filename, first)
            cycle = sorted(out for _, out, _, _ in deferred)
            raise BlifError(
                f"cyclic .names dependencies among: {', '.join(cycle)}",
                filename, min(lineno for lineno, _, _, _ in deferred))
        remaining = deferred

    for sig in outputs:
        driver = placed.get(sig)
        if driver is None:
            raise BlifError(f"undriven primary output: {sig!r}", filename)
        net.add_primary_output(f"{sig}__po", driver)
    net.check()
    return net


def write_blif(net: Network) -> str:
    """Serialise a network back to BLIF text.

    Primary-output wrapper nodes are folded back onto their drivers; if a PO
    name (minus the ``__po`` suffix convention) differs from its driver's
    name, a buffer ``.names`` block is emitted to preserve the port name.
    """
    lines = [f".model {net.name}"]
    lines.append(".inputs " + " ".join(pi.name for pi in net.primary_inputs))

    po_names: List[str] = []
    buffer_blocks: List[str] = []
    for po in net.primary_outputs:
        driver = po.fanins[0]
        port = po.name[:-4] if po.name.endswith("__po") else po.name
        po_names.append(port)
        if port != driver.name:
            buffer_blocks.append(f".names {driver.name} {port}\n1 1")
    lines.append(".outputs " + " ".join(po_names))

    for node in net.topological_order():
        if not node.is_internal:
            continue
        header = ".names " + " ".join(f.name for f in node.fanins + [node])
        lines.append(header)
        if node.is_constant:
            if node.function.evaluate([]):
                lines.append("1")
            # Constant 0 has an empty cover: header alone suffices.
        else:
            for cube in node.function.cubes:
                lines.append(f"{cube.mask} 1")
    lines.extend(buffer_blocks)
    lines.append(".end")
    return "\n".join(lines) + "\n"
