"""Boolean function representations.

Two complementary forms are used throughout the reproduction, mirroring MIS:

* :class:`SopCover` — a sum-of-products cover (list of :class:`Cube`), the
  node-function form read from and written to BLIF.
* :class:`TruthTable` — a dense truth table packed into a Python integer,
  used for equivalence checks, pattern canonisation and decomposition.

Truth tables are practical up to ~16 inputs; node functions in multi-level
networks are far smaller than that (the big library tops out at 6 inputs).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Cube", "SopCover", "TruthTable"]

#: Maximum support size for dense truth-table operations.
MAX_TT_INPUTS = 16


@dataclass(frozen=True)
class Cube:
    """A product term over ``n`` ordered inputs.

    Each input position holds ``'0'`` (complemented literal), ``'1'``
    (positive literal) or ``'-'`` (absent), exactly as in a BLIF cover row.
    """

    mask: str

    def __post_init__(self) -> None:
        if any(c not in "01-" for c in self.mask):
            raise ValueError(f"bad cube mask: {self.mask!r}")

    @property
    def num_inputs(self) -> int:
        return len(self.mask)

    @property
    def num_literals(self) -> int:
        """Number of literals (non-don't-care positions) in the cube."""
        return sum(1 for c in self.mask if c != "-")

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate the cube under a truth assignment of its inputs."""
        if len(assignment) != len(self.mask):
            raise ValueError("assignment length mismatch")
        for bit, lit in zip(assignment, self.mask):
            if lit == "1" and not bit:
                return False
            if lit == "0" and bit:
                return False
        return True

    def restricted(self, positions: Sequence[int]) -> "Cube":
        """Return a cube over only the given input positions."""
        return Cube("".join(self.mask[i] for i in positions))


class SopCover:
    """A sum-of-products cover: OR of :class:`Cube` product terms.

    An empty cube list denotes the constant-zero function; a cover containing
    the all-don't-care cube denotes constant one (BLIF convention).
    """

    def __init__(self, num_inputs: int, cubes: Iterable[Cube] = ()) -> None:
        self.num_inputs = num_inputs
        self.cubes: List[Cube] = []
        for cube in cubes:
            if cube.num_inputs != num_inputs:
                raise ValueError(
                    f"cube width {cube.num_inputs} != cover width {num_inputs}"
                )
            self.cubes.append(cube)

    @staticmethod
    def constant(value: bool, num_inputs: int = 0) -> "SopCover":
        """The constant-0 or constant-1 cover over ``num_inputs`` inputs."""
        if value:
            return SopCover(num_inputs, [Cube("-" * num_inputs)] if num_inputs else [Cube("")])
        return SopCover(num_inputs, [])

    @property
    def num_cubes(self) -> int:
        return len(self.cubes)

    @property
    def num_literals(self) -> int:
        """Total literal count — MIS's technology-independent cost metric."""
        return sum(c.num_literals for c in self.cubes)

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate the cover under a truth assignment of its inputs."""
        if self.num_inputs == 0:
            # Constant function: any cube present means constant 1.
            return bool(self.cubes)
        return any(c.evaluate(assignment) for c in self.cubes)

    def to_truth_table(self) -> "TruthTable":
        """Expand the cover to a dense truth table."""
        n = self.num_inputs
        if n > MAX_TT_INPUTS:
            raise ValueError(f"cover too wide for a dense table: {n} inputs")
        bits = 0
        for minterm in range(1 << n):
            assignment = [(minterm >> i) & 1 == 1 for i in range(n)]
            if self.evaluate(assignment):
                bits |= 1 << minterm
        return TruthTable(n, bits)

    def __repr__(self) -> str:
        return f"SopCover({self.num_inputs}, {[c.mask for c in self.cubes]})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SopCover):
            return NotImplemented
        return (
            self.num_inputs == other.num_inputs
            and self.to_truth_table() == other.to_truth_table()
        )

    def __hash__(self) -> int:
        tt = self.to_truth_table()
        return hash((tt.num_inputs, tt.bits))


class TruthTable:
    """A dense truth table over ``num_inputs`` ordered variables.

    Bit ``m`` of :attr:`bits` is the function value on the minterm whose
    variable ``i`` equals bit ``i`` of ``m`` (variable 0 is the LSB).
    """

    __slots__ = ("num_inputs", "bits")

    def __init__(self, num_inputs: int, bits: int) -> None:
        if num_inputs < 0 or num_inputs > MAX_TT_INPUTS:
            raise ValueError(f"unsupported truth-table width: {num_inputs}")
        self.num_inputs = num_inputs
        self.bits = bits & self._full_mask(num_inputs)

    @staticmethod
    def _full_mask(num_inputs: int) -> int:
        return (1 << (1 << num_inputs)) - 1

    # -- constructors ------------------------------------------------------

    @staticmethod
    def constant(value: bool, num_inputs: int = 0) -> "TruthTable":
        mask = TruthTable._full_mask(num_inputs)
        return TruthTable(num_inputs, mask if value else 0)

    @staticmethod
    def variable(index: int, num_inputs: int) -> "TruthTable":
        """The projection function ``x_index`` over ``num_inputs`` variables."""
        if not 0 <= index < num_inputs:
            raise ValueError(f"variable {index} out of range for {num_inputs} inputs")
        bits = 0
        for m in range(1 << num_inputs):
            if (m >> index) & 1:
                bits |= 1 << m
        return TruthTable(num_inputs, bits)

    @staticmethod
    def from_function(num_inputs: int, fn) -> "TruthTable":
        """Build a table by evaluating ``fn(assignment_tuple) -> bool``."""
        bits = 0
        for m in range(1 << num_inputs):
            assignment = tuple((m >> i) & 1 == 1 for i in range(num_inputs))
            if fn(assignment):
                bits |= 1 << m
        return TruthTable(num_inputs, bits)

    # -- Boolean connectives ----------------------------------------------

    def _check_width(self, other: "TruthTable") -> None:
        if self.num_inputs != other.num_inputs:
            raise ValueError("truth-table width mismatch")

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check_width(other)
        return TruthTable(self.num_inputs, self.bits & other.bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check_width(other)
        return TruthTable(self.num_inputs, self.bits | other.bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check_width(other)
        return TruthTable(self.num_inputs, self.bits ^ other.bits)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.num_inputs, ~self.bits)

    def nand(self, other: "TruthTable") -> "TruthTable":
        return ~(self & other)

    # -- predicates / queries ----------------------------------------------

    def is_constant(self) -> Optional[bool]:
        """Return the constant value, or ``None`` if not constant."""
        if self.bits == 0:
            return False
        if self.bits == self._full_mask(self.num_inputs):
            return True
        return None

    def depends_on(self, index: int) -> bool:
        """Return whether the function actually depends on variable ``index``."""
        return self.cofactor(index, False) != self.cofactor(index, True)

    def support(self) -> List[int]:
        """Indices of variables the function truly depends on."""
        return [i for i in range(self.num_inputs) if self.depends_on(i)]

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        if len(assignment) != self.num_inputs:
            raise ValueError("assignment length mismatch")
        m = 0
        for i, bit in enumerate(assignment):
            if bit:
                m |= 1 << i
        return (self.bits >> m) & 1 == 1

    def count_ones(self) -> int:
        """Number of on-set minterms."""
        return bin(self.bits).count("1")

    # -- structural operations ----------------------------------------------

    def cofactor(self, index: int, value: bool) -> "TruthTable":
        """Shannon cofactor with variable ``index`` fixed, same width."""
        bits = 0
        for m in range(1 << self.num_inputs):
            src = (m | (1 << index)) if value else (m & ~(1 << index))
            if (self.bits >> src) & 1:
                bits |= 1 << m
        return TruthTable(self.num_inputs, bits)

    def shrink_to_support(self) -> Tuple["TruthTable", List[int]]:
        """Project onto the true support; returns ``(table, kept_indices)``."""
        keep = self.support()
        return self.project(keep), keep

    def project(self, positions: Sequence[int]) -> "TruthTable":
        """Reorder/select variables: new variable ``j`` is old ``positions[j]``.

        The function must not depend on dropped variables.
        """
        for i in range(self.num_inputs):
            if i not in positions and self.depends_on(i):
                raise ValueError(f"cannot drop live variable {i}")
        n_new = len(positions)
        bits = 0
        for m in range(1 << n_new):
            src = 0
            for j, old in enumerate(positions):
                if (m >> j) & 1:
                    src |= 1 << old
            if (self.bits >> src) & 1:
                bits |= 1 << m
        return TruthTable(n_new, bits)

    def permuted(self, perm: Sequence[int]) -> "TruthTable":
        """Apply an input permutation: new variable ``j`` reads old ``perm[j]``."""
        if sorted(perm) != list(range(self.num_inputs)):
            raise ValueError(f"not a permutation: {perm}")
        bits = 0
        for m in range(1 << self.num_inputs):
            src = 0
            for j, old in enumerate(perm):
                if (m >> j) & 1:
                    src |= 1 << old
            if (self.bits >> src) & 1:
                bits |= 1 << m
        return TruthTable(self.num_inputs, bits)

    def with_phases(self, phases: Sequence[bool], out_phase: bool) -> "TruthTable":
        """Complement selected inputs and optionally the output."""
        bits = 0
        flip = 0
        for i, ph in enumerate(phases):
            if ph:
                flip |= 1 << i
        for m in range(1 << self.num_inputs):
            if (self.bits >> (m ^ flip)) & 1:
                bits |= 1 << m
        tt = TruthTable(self.num_inputs, bits)
        return ~tt if out_phase else tt

    # -- canonisation --------------------------------------------------------

    def p_canonical(self) -> "TruthTable":
        """Canonical representative under input permutation (P-class)."""
        best = None
        for perm in itertools.permutations(range(self.num_inputs)):
            cand = self.permuted(perm).bits
            if best is None or cand < best:
                best = cand
        return TruthTable(self.num_inputs, best if best is not None else self.bits)

    def npn_canonical(self) -> "TruthTable":
        """Canonical representative under input/output negation + permutation.

        Exhaustive over the NPN group; fine for library-cell widths (<= 6).
        """
        best = None
        n = self.num_inputs
        for out_phase in (False, True):
            base = ~self if out_phase else self
            for phase_bits in range(1 << n):
                phases = [(phase_bits >> i) & 1 == 1 for i in range(n)]
                phased = base.with_phases(phases, False)
                for perm in itertools.permutations(range(n)):
                    cand = phased.permuted(perm).bits
                    if best is None or cand < best:
                        best = cand
        return TruthTable(n, best if best is not None else self.bits)

    # -- SOP extraction -------------------------------------------------------

    def to_sop(self) -> SopCover:
        """Extract an irredundant-ish SOP cover (greedy prime-implicant pick).

        Quine–McCluskey prime generation followed by a greedy cover; exact
        minimality is not required — BLIF output and decomposition only need
        a correct, reasonably small cover.
        """
        n = self.num_inputs
        const = self.is_constant()
        if const is not None:
            return SopCover.constant(const, n)
        primes = self._prime_implicants()
        cover: List[str] = []
        remaining = {m for m in range(1 << n) if (self.bits >> m) & 1}
        # Greedy set cover over the on-set.
        while remaining:
            best_cube, best_gain = None, -1
            for cube in primes:
                gain = sum(1 for m in remaining if _cube_covers(cube, m))
                if gain > best_gain:
                    best_cube, best_gain = cube, gain
            assert best_cube is not None
            cover.append(best_cube)
            remaining = {m for m in remaining if not _cube_covers(best_cube, m)}
        return SopCover(n, [Cube(c) for c in cover])

    def _prime_implicants(self) -> List[str]:
        """All prime implicants, by iterative cube merging (Quine–McCluskey)."""
        n = self.num_inputs
        current = set()
        for m in range(1 << n):
            if (self.bits >> m) & 1:
                current.add("".join("1" if (m >> i) & 1 else "0" for i in range(n)))
        primes: List[str] = []
        while current:
            merged_into = set()
            next_level = set()
            cur = sorted(current)
            for i, a in enumerate(cur):
                for b in cur[i + 1:]:
                    merged = _merge_cubes(a, b)
                    if merged is not None:
                        next_level.add(merged)
                        merged_into.add(a)
                        merged_into.add(b)
            primes.extend(c for c in cur if c not in merged_into)
            current = next_level
        return primes

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self.num_inputs == other.num_inputs and self.bits == other.bits

    def __hash__(self) -> int:
        return hash((self.num_inputs, self.bits))

    def __repr__(self) -> str:
        width = max(1, (1 << self.num_inputs) // 4)
        return f"TruthTable({self.num_inputs}, 0x{self.bits:0{width}x})"


def _cube_covers(cube: str, minterm: int) -> bool:
    """Return whether positional cube string covers the given minterm."""
    for i, lit in enumerate(cube):
        bit = (minterm >> i) & 1
        if lit == "1" and not bit:
            return False
        if lit == "0" and bit:
            return False
    return True


def _merge_cubes(a: str, b: str) -> Optional[str]:
    """Merge two cubes differing in exactly one specified position."""
    diff = -1
    for i, (ca, cb) in enumerate(zip(a, b)):
        if ca != cb:
            if ca == "-" or cb == "-" or diff >= 0:
                return None
            diff = i
    if diff < 0:
        return None
    return a[:diff] + "-" + a[diff + 1:]
