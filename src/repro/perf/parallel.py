"""Parallel per-cone match precomputation (``--jobs N``).

The only thread-hostile state in the covering engine is the *sequential*
part: lifecycle transitions, placement updates and cover commitment must
see cones in order (each cone's costs depend on the hawks committed by
the previous ones).  Structural matching, by contrast, is a pure function
of the immutable subject graph — so that is what fans out.

Each logic cone owns the gate nodes that first appear in it (walking
cones in processing order); an executor computes ``matches_at`` for every
owned node, cone-per-task, and the results are merged into the mapper's
match cache in cone order before the sequential DP sweep starts.  The
merge order is deterministic and the computed lists are pure, so mapping
results are bit-identical for any job count — asserted by the
equivalence tests.

Sharing one :class:`~repro.perf.memomatch.MemoMatcher` across workers is
safe: its memo tables are keyed by structure and store deterministic
values, so racing writers publish identical entries (dict operations are
atomic under the GIL).  Observability counters bumped from workers may
under-count by a few on a race; span accounting stays exact thanks to
the tracer's per-thread stacks.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Sequence, Set, Tuple

from repro.network.subject import SubjectNode
from repro.obs import OBS

__all__ = ["prewarm_match_cache", "cone_ownership"]


def cone_ownership(
    cones: Sequence[Tuple[SubjectNode, Set[SubjectNode]]],
    order: Sequence[int],
) -> List[Tuple[SubjectNode, List[SubjectNode]]]:
    """Assign every gate node to the first cone (in processing order)
    that contains it; nodes within a cone are sorted by uid."""
    owned: List[Tuple[SubjectNode, List[SubjectNode]]] = []
    claimed: Set[int] = set()
    for index in order:
        po, cone = cones[index]
        mine = [
            n
            for n in sorted(cone, key=lambda n: n.uid)
            if n.is_gate and n.uid not in claimed
        ]
        claimed.update(n.uid for n in mine)
        owned.append((po, mine))
    return owned


def prewarm_match_cache(mapper, cones, order, jobs: int) -> None:
    """Fill ``mapper._match_cache`` for every cone's gates, in parallel.

    Args:
        mapper: a :class:`~repro.map.base.BaseMapper`; only its (pure)
            ``matcher`` and its ``_match_cache`` dict are touched.
        cones: ``logic_cones(subject)`` output.
        order: cone processing order (indices into ``cones``).
        jobs: worker thread count; values <= 1 prewarm inline.
    """
    owned = cone_ownership(cones, order)
    total = sum(len(nodes) for _, nodes in owned)
    matcher = mapper.matcher
    cache: Dict[int, list] = mapper._match_cache
    with OBS.span("map.prewarm", cones=len(owned), nodes=total,
                  jobs=jobs) as parent:

        def work(batch: Tuple[SubjectNode, List[SubjectNode]]):
            po, nodes = batch
            with OBS.span_in(parent, "map.prewarm.cone", po=po.name,
                             nodes=len(nodes)):
                return [(n.uid, matcher.matches_at(n)) for n in nodes]

        if jobs <= 1:
            results = [work(batch) for batch in owned]
        else:
            with ThreadPoolExecutor(
                max_workers=jobs, thread_name_prefix="prewarm"
            ) as executor:
                results = list(executor.map(work, owned))
        for batch_result in results:
            for uid, matches in batch_result:
                cache[uid] = matches
