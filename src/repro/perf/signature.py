"""Canonical truncated-subtree signatures for match memoization.

The structural matcher explores the fanin DAG below a subject node to at
most the deepest pattern's depth.  Everything it can observe down there —
node types, fanin order, node *identity* (shared subtrees, repeated leaf
bindings) and, in tree mode, whether a node is a multi-fanout stem — is
captured by an order-sensitive preorder encoding of the truncated DAG.
Two nodes with equal signatures therefore have isomorphic match lists,
related by the signature's first-visit node enumeration; the memoized
matcher stores match *templates* against the signature and re-binds them
to the concrete nodes of each new root.

Truncation is by *minimum* depth from the root (a BFS pre-pass), not by
the depth of the preorder walk's first arrival: with reconvergent fanin
a node can first appear on a long path (beyond the horizon) and later on
a short one, where the matcher does descend into its fanins.  Expanding
every node whose shortest path lies inside the horizon covers all fanin
inspections any pattern can make.

The encoding is deliberately order-sensitive (no commutative
canonicalisation): a NAND with swapped fanins gets a different signature.
That costs some hit rate but makes the template correspondence a plain
index mapping, with no permutation bookkeeping to get wrong.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.network.subject import SubjectNode

__all__ = ["subtree_signature", "DEFAULT_NODE_BUDGET"]

#: Signatures enumerating more than this many DAG entries are abandoned
#: (pathologically reconvergent fanin; the naive matcher is used instead).
DEFAULT_NODE_BUDGET = 256


def subtree_signature(
    node: SubjectNode,
    depth: int,
    tree_mode: bool = False,
    budget: int = DEFAULT_NODE_BUDGET,
) -> Tuple[Optional[tuple], List[SubjectNode]]:
    """Signature of the fanin DAG below ``node``, truncated at ``depth``.

    Returns ``(signature, nodes)`` where ``nodes`` is the first-visit
    enumeration of every subject node the encoding touched — the
    correspondence used to re-bind memoized match templates.  Returns
    ``(None, [])`` when the enumeration exceeds ``budget`` entries.

    Args:
        node: prospective match root.
        depth: exploration depth — the maximum pattern-tree depth.  A
            pattern interior node sits at depth < ``depth``, so a gate is
            expanded iff its min depth from the root is < ``depth``;
            everything else (and every non-gate) appears as an opaque
            leaf entry.
        tree_mode: include each expanded gate's is-single-fanout flag
            (tree-mode legality depends on it).
        budget: cap on the number of emitted entries.
    """
    # Pass 1: minimum depth of every node within the horizon.  BFS visits
    # in nondecreasing depth, so the first assignment is the minimum.
    min_depth: Dict[int, int] = {node.uid: 0}
    queue = deque([(node, 0)])
    while queue:
        n, d = queue.popleft()
        if d >= depth or not n.is_gate:
            continue
        for fanin in n.fanins:
            if fanin.uid not in min_depth:
                if len(min_depth) >= budget:
                    return None, []
                min_depth[fanin.uid] = d + 1
                queue.append((fanin, d + 1))

    # Pass 2: order-sensitive preorder encoding with identity references.
    nodes: List[SubjectNode] = []
    index: Dict[int, int] = {}
    sig: List[tuple] = []
    # Children pushed in reverse keeps fanin order in the signature.
    stack = [node]
    while stack:
        if len(sig) >= budget:
            return None, []
        n = stack.pop()
        uid = n.uid
        i = index.get(uid)
        if i is not None:
            sig.append(("R", i))
            continue
        index[uid] = len(nodes)
        nodes.append(n)
        if not n.is_gate or min_depth[uid] >= depth:
            sig.append(("X",))
            continue
        if tree_mode:
            sig.append((n.type.value, n.num_fanouts == 1))
        else:
            sig.append((n.type.value,))
        for fanin in reversed(n.fanins):
            stack.append(fanin)
    return tuple(sig), nodes
