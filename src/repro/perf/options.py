"""Switches for the ``repro.perf`` optimization layer.

All caches default to *on* — they are bit-identical to the naive paths —
while parallel mapping defaults to one job (the executor is opt-in via
``--jobs N`` on the CLI).  ``PerfOptions.naive()`` turns everything off;
the golden-equivalence tests map every circuit both ways and assert the
results are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["PerfOptions"]


@dataclass(frozen=True)
class PerfOptions:
    """Tuning switches of the mapping hot path.

    Attributes:
        memoize_matches: share match lists between subject nodes with equal
            canonical subtree signatures.
        index_patterns: prune candidate patterns with the root/child-kind
            and gate-height index instead of trying the full library.
        incremental_nets: cache per-net true-fanout lists and pin points
            with delta invalidation on commit (Lily cost hooks).
        jobs: worker threads for the parallel per-cone match prewarm
            (1 = sequential; results are identical for any value).
    """

    memoize_matches: bool = True
    index_patterns: bool = True
    incremental_nets: bool = True
    jobs: int = 1

    @staticmethod
    def naive() -> "PerfOptions":
        """Every optimization off — the reference paths."""
        return PerfOptions(
            memoize_matches=False,
            index_patterns=False,
            incremental_nets=False,
            jobs=1,
        )

    def with_jobs(self, jobs: int) -> "PerfOptions":
        return replace(self, jobs=max(1, int(jobs)))
