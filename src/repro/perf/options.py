"""Switches for the ``repro.perf`` optimization layer.

All caches default to *on* — they are bit-identical to the naive paths —
while parallel mapping defaults to one job (the executor is opt-in via
``--jobs N`` on the CLI).  ``PerfOptions.naive()`` turns everything off;
the golden-equivalence tests map every circuit both ways and assert the
results are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["PerfOptions"]


@dataclass(frozen=True)
class PerfOptions:
    """Tuning switches of the mapping hot path.

    Attributes:
        memoize_matches: share match lists between subject nodes with equal
            canonical subtree signatures.
        index_patterns: prune candidate patterns with the root/child-kind
            and gate-height index instead of trying the full library.
        incremental_nets: cache per-net true-fanout lists and pin points
            with delta invalidation on commit (Lily cost hooks).
        incremental_place: per-net bounding-box caches with O(pins-of-
            moved-cell) delta updates in annealing and the detailed
            swap pass (bit-identical to full recomputation).
        incremental_sta: dirty-frontier arrival/required propagation in
            re-timing loops instead of whole-netlist passes
            (bit-identical to full recomputation).
        warm_replace: seed Lily's periodic quadratic re-place CG solves
            with the previous solution.  Only affects flows with
            ``replace_interval > 0``; warm CG matches a cold solve to
            solver tolerance, not bitwise.
        vec_place: struct-of-arrays numpy kernels (``repro.perf.vec``)
            for the placement hot paths — vectorized quadratic-system
            assembly, bulk net-box builds, and the annealer's SoA HPWL
            delta engine (bit-identical to the naive folds; see
            ``docs/SCALING.md``).
        vec_sta: levelized array-form STA
            (:mod:`repro.timing.array_sta`) for full timing passes and
            the level-batched dirty-frontier updates of
            :class:`repro.timing.incremental.IncrementalTiming`;
            bit-identical to :func:`repro.timing.sta.analyze`.
        vec_route: struct-of-arrays routing estimators — the
            :class:`~repro.perf.vec.PinTable` wirelength/Steiner folds
            of :func:`repro.route.wirelength.netlist_wirelength`, the
            batched Prim kernel of
            :func:`repro.route.spanning.mst_lengths_batched`, and the
            ordered length fold of global routing (bit-identical to the
            naive per-net loops; see ``docs/SCALING.md``).
        jobs: worker threads for the parallel per-cone match prewarm
            (1 = sequential; results are identical for any value).
        procs: worker *processes* for suite runs (``run_table1`` /
            ``run_table2``); circuits fan out over a process pool and
            per-circuit rows/profiles merge deterministically in
            submission order (identical for any value).
    """

    memoize_matches: bool = True
    index_patterns: bool = True
    incremental_nets: bool = True
    incremental_place: bool = True
    incremental_sta: bool = True
    warm_replace: bool = True
    vec_place: bool = True
    vec_sta: bool = True
    vec_route: bool = True
    jobs: int = 1
    procs: int = 1

    @staticmethod
    def naive() -> "PerfOptions":
        """Every optimization off — the reference paths."""
        return PerfOptions(
            memoize_matches=False,
            index_patterns=False,
            incremental_nets=False,
            incremental_place=False,
            incremental_sta=False,
            warm_replace=False,
            vec_place=False,
            vec_sta=False,
            vec_route=False,
            jobs=1,
            procs=1,
        )

    def with_jobs(self, jobs: int) -> "PerfOptions":
        return replace(self, jobs=max(1, int(jobs)))

    def with_procs(self, procs: int) -> "PerfOptions":
        return replace(self, procs=max(1, int(procs)))
