"""Struct-of-arrays numpy kernels for the placement/STA hot paths.

The naive placement and timing engines walk Python objects per net and
per node; at the 1k–50k-gate scale of ``benchmarks/scaling.py`` those
loops become the wall (ROADMAP item 3).  This module holds the shared
vectorized kernels:

* :class:`PinTable` — a flat pin table over a placement hypergraph
  (``net -> slot indices`` into one coordinate array pair) answering
  per-net bounding boxes and half-perimeter wirelengths as index-array
  reductions (``np.minimum/maximum.reduceat``);
* :func:`fold_box_arrays` — the bulk net-box build behind
  :class:`repro.perf.incremental.NetBoxCache` construction;
* :func:`assemble_quadratic` — the COO assembly of
  :class:`repro.place.quadratic.QuadraticSystem` as vectorized
  index/value streams.

Exactness policy (see ``docs/SCALING.md``): min/max reductions over
floats are order-independent and therefore *bitwise* equal to the naive
folds; float *sums* are only reproduced bitwise where the kernel
accumulates in the naive engine's operation order
(:func:`ordered_sum`, :func:`segment_sum_ordered`, and the
``np.add.at`` streams of :func:`assemble_quadratic`, which apply
contributions strictly in naive edge order).  Anything passing through
an iterative solver (CG) matches to solver tolerance only, exactly as
the retained naive path already documents.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ordered_sum",
    "segment_min",
    "segment_max",
    "segment_sum_ordered",
    "concat_ranges",
    "PinTable",
    "fold_box_arrays",
    "assemble_quadratic",
    "kernel_backend_info",
]


def concat_ranges(starts, ends):
    """Concatenate integer index ranges ``[starts[k], ends[k])``.

    Returns ``(indices, offsets)``: ``indices`` lists every range's
    members back to back and ``offsets`` the per-range ``[start, end)``
    bounds into it (one more entry than there are ranges).  Zero-length
    ranges are fine and contribute nothing.  This is the gather plan the
    frontier kernels use to fold a *subset* of a flattened table's
    segments (e.g. the dirty gates' pin rows) in one numpy pass.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    counts = ends - starts
    cum = np.cumsum(counts)
    offsets = np.concatenate([np.zeros(1, dtype=np.int64), cum])
    total = int(offsets[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64), offsets
    reps = np.repeat(starts, counts)
    intra = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
    return reps + intra, offsets


def ordered_sum(values) -> float:
    """Left-to-right float sum, bitwise-equal to a naive ``+=`` loop."""
    if isinstance(values, np.ndarray):
        values = values.tolist()
    total = 0.0
    for v in values:
        total += v
    return total


def _segment_reduce(ufunc, values: np.ndarray, offsets: np.ndarray,
                    empty: float) -> np.ndarray:
    """Per-segment ``ufunc`` reduction; empty segments yield ``empty``.

    ``offsets`` has one more entry than there are segments and is
    monotone with ``offsets[-1] == len(values)``.  A sentinel identity
    element guards trailing empty segments (``reduceat`` would index
    past the end otherwise); interior empty segments are masked after
    the fact because ``reduceat`` returns a neighbour's element there.
    """
    counts = np.diff(offsets)
    if len(counts) == 0:
        return np.empty(0, dtype=np.float64)
    padded = np.append(np.asarray(values, dtype=np.float64), empty)
    out = ufunc.reduceat(padded, offsets[:-1])
    out[counts == 0] = empty
    return out


def segment_min(values, offsets, empty: float = np.inf) -> np.ndarray:
    """Per-segment minimum (exact: min is order-independent)."""
    return _segment_reduce(np.minimum, values, offsets, empty)


def segment_max(values, offsets, empty: float = -np.inf) -> np.ndarray:
    """Per-segment maximum (exact: max is order-independent)."""
    return _segment_reduce(np.maximum, values, offsets, empty)


def segment_sum_ordered(values, offsets) -> np.ndarray:
    """Per-segment sums accumulated strictly left to right.

    ``np.add.reduceat`` uses unrolled/pairwise accumulation whose
    rounding differs from a naive sequential loop; this kernel groups
    segments by length and adds one column at a time, so every segment
    sums in exactly the order the naive engines do (bitwise-equal
    results).  Empty segments sum to ``0.0``.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    counts = np.diff(offsets)
    values = np.asarray(values, dtype=np.float64)
    out = np.zeros(len(counts), dtype=np.float64)
    if len(counts) == 0:
        return out
    starts = offsets[:-1]
    for length in np.unique(counts):
        if length == 0:
            continue
        sel = np.nonzero(counts == length)[0]
        idx = starts[sel][:, None] + np.arange(length)
        mat = values[idx]
        acc = mat[:, 0].copy()
        for j in range(1, int(length)):
            acc += mat[:, j]
        out[sel] = acc
    return out


class PinTable:
    """Flat struct-of-arrays pin table of a placement hypergraph.

    Movable cells get coordinate slots refreshed from the live position
    dict (:meth:`refresh` / :meth:`update_cell`); fixed terminals are
    baked into the tail of the same arrays once.  Pins present in
    neither dict are dropped and nets with fewer than two located pins
    report zero HPWL — exactly the naive fold semantics of
    ``repro.place`` and :class:`repro.perf.incremental.NetBoxCache`.
    """

    def __init__(self, nets: Sequence[Sequence[str]], positions, fixed) -> None:
        slot: Dict[str, int] = {}
        for name in positions:
            slot[name] = len(slot)
        self.cell_slot = slot
        n_mov = len(slot)
        self.num_movable = n_mov
        fixed_slot: Dict[str, int] = {}
        fxs: List[float] = []
        fys: List[float] = []
        pin_slots: List[int] = []
        offsets: List[int] = [0]
        for net in nets:
            for pin in net:
                s = slot.get(pin)
                if s is None:
                    fs = fixed_slot.get(pin)
                    if fs is None:
                        p = fixed.get(pin)
                        if p is None:
                            continue
                        fs = fixed_slot[pin] = len(fixed_slot)
                        fxs.append(p.x)
                        fys.append(p.y)
                    pin_slots.append(n_mov + fs)
                else:
                    pin_slots.append(s)
            offsets.append(len(pin_slots))
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.pin_slots = np.asarray(pin_slots, dtype=np.int64)
        self.counts = np.diff(self.offsets)
        #: Nets with >= 2 located pins (the only ones with nonzero HPWL).
        self.valid = self.counts >= 2
        self.num_nets = len(self.counts)
        self.x = np.zeros(n_mov + len(fixed_slot), dtype=np.float64)
        self.y = np.zeros(n_mov + len(fixed_slot), dtype=np.float64)
        if fixed_slot:
            self.x[n_mov:] = fxs
            self.y[n_mov:] = fys
        # Python-list mirrors of the coordinate arrays and the pin table:
        # small per-move batches fold faster through plain list indexing
        # than through numpy call overhead, with identical bits either way.
        self._xl: List[float] = self.x.tolist()
        self._yl: List[float] = self.y.tolist()
        self._flat: List[int] = self.pin_slots.tolist()
        self._offs: List[int] = self.offsets.tolist()
        self.refresh(positions)
        self._subset_memo: Dict[
            Tuple[int, ...],
            Tuple[np.ndarray, np.ndarray, List[bool], int],
        ] = {}

    def refresh(self, positions) -> None:
        """Pull every movable cell's coordinates from a position dict."""
        x = self.x
        y = self.y
        xl = self._xl
        yl = self._yl
        get = self.cell_slot.get
        for name, p in positions.items():
            i = get(name)
            if i is not None:
                x[i] = xl[i] = p.x
                y[i] = yl[i] = p.y

    def update_cell(self, name: str, x: float, y: float) -> None:
        """O(1) coordinate update for one movable cell (unknown = no-op)."""
        i = self.cell_slot.get(name)
        if i is not None:
            self.x[i] = x
            self.y[i] = y
            self._xl[i] = x
            self._yl[i] = y

    def boxes(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-net bounding boxes ``(lx, ly, ux, uy)``.

        Entries for nets with no located pins hold infinities; consult
        :attr:`valid` (or use :meth:`hpwl`, which masks them).
        """
        px = self.x[self.pin_slots]
        py = self.y[self.pin_slots]
        return (
            segment_min(px, self.offsets),
            segment_min(py, self.offsets),
            segment_max(px, self.offsets),
            segment_max(py, self.offsets),
        )

    def hpwl(self) -> np.ndarray:
        """Per-net half-perimeter wirelengths (0.0 below two located pins)."""
        lx, ly, ux, uy = self.boxes()
        valid = self.valid
        lx = np.where(valid, lx, 0.0)
        ly = np.where(valid, ly, 0.0)
        ux = np.where(valid, ux, 0.0)
        uy = np.where(valid, uy, 0.0)
        return (ux - lx) + (uy - ly)

    def total_hpwl(self) -> float:
        """Sum of all net HPWLs, accumulated in naive net order (bitwise)."""
        return ordered_sum(self.hpwl())

    #: Batches with fewer pins than this fold through the list mirrors
    #: (numpy per-call overhead dominates below it; same bits either way).
    SMALL_BATCH_PINS = 48

    def hpwl_of(self, net_ids: Sequence[int]) -> List[float]:
        """HPWL of selected nets as one batched fold (memoized per tuple).

        The concatenated index plan is cached keyed on the net-id tuple,
        so callers probing the same net set repeatedly (e.g. apply/undo
        pairs) fold through a prebuilt plan.  Small batches fold through
        the Python-list mirrors instead of numpy — bitwise the same
        result (min/max folds are exact in any representation).  Note
        the annealer deliberately does *not* score moves through this
        (measured slower than dict reads at 2–6-net batches; see
        ``docs/SCALING.md``).
        """
        key = tuple(net_ids)
        plan = self._subset_memo.get(key)
        if plan is None:
            parts = []
            offs = [0]
            valid: List[bool] = []
            offsets = self._offs
            pin_slots = self.pin_slots
            for i in key:
                s = offsets[i]
                e = offsets[i + 1]
                parts.append(pin_slots[s:e])
                offs.append(offs[-1] + (e - s))
                valid.append(bool(self.valid[i]))
            idx = (np.concatenate(parts) if parts
                   else np.empty(0, dtype=np.int64))
            plan = (idx, np.asarray(offs, dtype=np.int64), valid, offs[-1])
            self._subset_memo[key] = plan
        idx, offs, valid, total_pins = plan
        if total_pins < self.SMALL_BATCH_PINS:
            return self._hpwl_of_small(key, valid)
        px = self.x[idx]
        py = self.y[idx]
        lx = segment_min(px, offs).tolist()
        ux = segment_max(px, offs).tolist()
        ly = segment_min(py, offs).tolist()
        uy = segment_max(py, offs).tolist()
        return [
            (ux[j] - lx[j]) + (uy[j] - ly[j]) if ok else 0.0
            for j, ok in enumerate(valid)
        ]

    def _hpwl_of_small(
        self, net_ids: Tuple[int, ...], valid: List[bool]
    ) -> List[float]:
        """Per-net fold over the list mirrors (exact, low fixed cost)."""
        xl = self._xl
        yl = self._yl
        flat = self._flat
        offsets = self._offs
        out: List[float] = []
        for j, i in enumerate(net_ids):
            if not valid[j]:
                out.append(0.0)
                continue
            s = offsets[i]
            e = offsets[i + 1]
            slot = flat[s]
            lx = ux = xl[slot]
            ly = uy = yl[slot]
            for p in range(s + 1, e):
                slot = flat[p]
                px = xl[slot]
                py = yl[slot]
                if px < lx:
                    lx = px
                elif px > ux:
                    ux = px
                if py < ly:
                    ly = py
                elif py > uy:
                    uy = py
            out.append((ux - lx) + (uy - ly))
        return out


def fold_box_arrays(
    movable_nets: Sequence[Sequence[str]],
    fixed_boxes: Sequence[Optional[Tuple[float, float, float, float]]],
    positions,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Bulk-fold per-net boxes for the incremental box caches.

    ``movable_nets`` holds each net's movable member cells and
    ``fixed_boxes`` the per-net static partial box over its fixed pins
    (``None`` when a net has no fixed pins), exactly the classification
    :class:`repro.perf.incremental._BoxCacheBase` produces.  Returns
    ``(lx, ly, ux, uy)`` arrays; entries for nets with neither movable
    members nor a fixed box are infinities and must be masked by the
    caller.  Min/max folds are exact, so every returned bound is
    bitwise-equal to the naive per-net fold.
    """
    slot: Dict[str, int] = {}
    coords_x: List[float] = []
    coords_y: List[float] = []
    flat: List[int] = []
    offsets: List[int] = [0]
    for net in movable_nets:
        for pin in net:
            s = slot.get(pin)
            if s is None:
                p = positions[pin]
                s = slot[pin] = len(slot)
                coords_x.append(p.x)
                coords_y.append(p.y)
            flat.append(s)
        offsets.append(len(flat))
    off = np.asarray(offsets, dtype=np.int64)
    idx = np.asarray(flat, dtype=np.int64)
    xs = np.asarray(coords_x, dtype=np.float64)
    ys = np.asarray(coords_y, dtype=np.float64)
    px = xs[idx]
    py = ys[idx]
    lx = segment_min(px, off)
    ly = segment_min(py, off)
    ux = segment_max(px, off)
    uy = segment_max(py, off)
    m = len(movable_nets)
    slx = np.full(m, np.inf)
    sly = np.full(m, np.inf)
    sux = np.full(m, -np.inf)
    suy = np.full(m, -np.inf)
    for i, fb in enumerate(fixed_boxes):
        if fb is not None:
            slx[i], sly[i], sux[i], suy[i] = fb
    return (
        np.minimum(lx, slx),
        np.minimum(ly, sly),
        np.maximum(ux, sux),
        np.maximum(uy, suy),
    )


#: Cached pair-index templates for the quadratic edge expansion, keyed by
#: (kind, pin count): kind 1 is star-shaped (driver to each sink), kind 2
#: the full i<j clique in naive lexicographic order.
_PAIR_TEMPLATES: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}


def _pair_template(kind: int, k: int) -> Tuple[np.ndarray, np.ndarray]:
    got = _PAIR_TEMPLATES.get((kind, k))
    if got is None:
        if kind == 1:
            ti = np.zeros(k - 1, dtype=np.int64)
            tj = np.arange(1, k, dtype=np.int64)
        else:
            pairs = [(i, j) for i in range(k) for j in range(i + 1, k)]
            ti = np.asarray([p[0] for p in pairs], dtype=np.int64)
            tj = np.asarray([p[1] for p in pairs], dtype=np.int64)
        got = _PAIR_TEMPLATES[(kind, k)] = (ti, tj)
    return got


def assemble_quadratic(
    nets: Sequence[Sequence[str]],
    index: Dict[str, int],
    fixed,
    n: int,
    center,
    weight_model: str,
    star_limit: int,
    anchor_epsilon: float,
):
    """Vectorized COO assembly of the quadratic placement system.

    Mirrors the per-edge loop of
    :class:`repro.place.quadratic.QuadraticSystem` bitwise: edges are
    generated per net in the exact naive order (clique pairs
    lexicographic, wide/star nets driver-to-sink), and the diagonal /
    right-hand-side contributions are applied with ``np.add.at`` —
    an element-at-a-time in-order accumulation — on top of the same
    ``anchor_epsilon`` base, so every float lands via the same sequence
    of IEEE additions as the naive build.

    Returns ``(diag, bx, by, rows, cols, vals)`` numpy arrays; the
    off-diagonal streams (``rows``/``cols``/``vals``) list entries in
    naive extension order so the later CSR duplicate-summation is
    bitwise-reproducible too.
    """
    star_model = weight_model == "star"
    fixed_slot: Dict[str, int] = {}
    fxs: List[float] = []
    fys: List[float] = []
    flat: List[int] = []
    offsets: List[int] = [0]
    for net in nets:
        for pin in net:
            s = index.get(pin)
            if s is None:
                fs = fixed_slot.get(pin)
                if fs is None:
                    if len(net) < 2:
                        # Naive never resolves pins of sub-2-pin nets
                        # (clique_edges returns [] first); skip them so a
                        # dangling name there cannot raise here either.
                        continue
                    p = fixed[pin]
                    fs = fixed_slot[pin] = len(fixed_slot)
                    fxs.append(p.x)
                    fys.append(p.y)
                flat.append(n + fs)
            else:
                flat.append(s)
        offsets.append(len(flat))
    flat_arr = np.asarray(flat, dtype=np.int64)
    off_arr = np.asarray(offsets, dtype=np.int64)
    k_arr = np.diff(off_arr)

    if star_model:
        kind = np.where(k_arr >= 2, 1, 0)
    else:
        kind = np.where(k_arr < 2, 0, np.where(k_arr > star_limit, 1, 2))
    with np.errstate(divide="ignore"):
        w_net = np.where(
            k_arr > 0,
            1.0 if star_model else 2.0 / np.maximum(k_arr, 1),
            0.0,
        )
    ecount = np.where(
        kind == 1, k_arr - 1,
        np.where(kind == 2, k_arr * (k_arr - 1) // 2, 0),
    )
    eoff = np.concatenate([[0], np.cumsum(ecount)])
    num_edges = int(eoff[-1])

    a = np.empty(num_edges, dtype=np.int64)
    b = np.empty(num_edges, dtype=np.int64)
    wv = np.empty(num_edges, dtype=np.float64)
    for k, kd in {(int(kk), int(kk_kind))
                  for kk, kk_kind in zip(k_arr, kind) if kk_kind > 0}:
        ids = np.nonzero((k_arr == k) & (kind == kd))[0]
        mat = flat_arr[off_arr[ids][:, None] + np.arange(k)]
        ti, tj = _pair_template(kd, k)
        pos = (eoff[ids][:, None] + np.arange(len(ti))).ravel()
        a[pos] = mat[:, ti].ravel()
        b[pos] = mat[:, tj].ravel()
        wv[pos] = np.repeat(w_net[ids], len(ti))

    am = a < n
    bm = b < n
    both = am & bm
    single = am ^ bm

    diag = np.full(n + 1, anchor_epsilon)
    bx = np.full(n + 1, anchor_epsilon * center.x)
    by = np.full(n + 1, anchor_epsilon * center.y)
    if num_edges:
        mov_single = np.where(am, a, b)
        d1 = np.where(both | single, np.where(both, a, mov_single), n)
        d2 = np.where(both, b, n)
        np.add.at(diag, np.stack((d1, d2), axis=1).ravel(),
                  np.repeat(wv, 2))
        if fixed_slot:
            fx = np.asarray(fxs, dtype=np.float64)
            fy = np.asarray(fys, dtype=np.float64)
            fsel = np.where(single, np.where(am, b, a) - n, 0)
            bidx = np.where(single, mov_single, n)
            np.add.at(bx, bidx, np.where(single, wv * fx[fsel], 0.0))
            np.add.at(by, bidx, np.where(single, wv * fy[fsel], 0.0))
        rows = np.stack((a, b), axis=1)[both].ravel()
        cols = np.stack((b, a), axis=1)[both].ravel()
        vals = np.repeat(-wv[both], 2)
    else:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
        vals = np.empty(0, dtype=np.float64)
    return diag[:n], bx[:n], by[:n], rows, cols, vals


def kernel_backend_info() -> Dict[str, object]:
    """Machine-readable kernel-backend metadata for bench artifacts.

    Records which array libraries (and versions) the struct-of-arrays
    kernels ran on plus the default ``PerfOptions`` kernel flags, so any
    two ``BENCH_*.json`` files state the backends they compare.
    """
    import scipy

    from repro.perf.options import PerfOptions

    defaults = PerfOptions()
    return {
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "vec_place_default": defaults.vec_place,
        "vec_sta_default": defaults.vec_sta,
        "vec_route_default": defaults.vec_route,
        "small_batch_pins": PinTable.SMALL_BATCH_PINS,
    }
