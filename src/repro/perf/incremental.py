"""Incremental net-cost bookkeeping for the placement engines.

The annealer and the detailed-placement swap pass both score a move by
re-folding every affected net's half-perimeter bounding box from scratch —
O(pins-of-net) per net per probe.  :class:`NetBoxCache` keeps one live
bounding box per net and updates it in O(pins-of-moved-cell) per move:

* a pin moving strictly inside the box, expanding it, or moving
  outward from a boundary is an O(1) coordinate update;
* a pin leaving a box boundary inward forces a re-fold of that net only
  (the box may shrink and min/max cannot be updated incrementally);
* nets of cells that were shifted as a *side effect* of a move (row
  repacking in the annealer) but are outside the move's scored set are
  lazily marked dirty and re-folded on the next read — exactly the cost
  the naive path pays on every read anyway.

Every probe runs inside a transaction (:meth:`begin` / :meth:`commit` /
:meth:`rollback`): the first touch of a net snapshots its ``(box, dirty)``
pair, so a rejected move restores the cache in O(nets-touched) without
re-folding anything.

Bit-identity: a bounding box is the min/max over a finite set of floats —
an exact, order-independent reduction — so a box maintained by expansion
and re-folds equals the box a full fold computes, and the HPWL
``(ux - lx) + (uy - ly)`` computed from equal bounds is bitwise equal.
The golden-equivalence and randomized-move tests assert this.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.geometry import Point

__all__ = ["NetBoxCache", "StampedNetBoxCache"]

#: A bounding box as ``(lx, ly, ux, uy)``.
Box = Tuple[float, float, float, float]


class _BoxCacheBase:
    """Shared net classification + exact folding for the box caches.

    ``vec`` selects the bulk struct-of-arrays build for the initial
    per-net boxes (:func:`repro.perf.vec.fold_box_arrays`); min/max folds
    are exact, so the built boxes are bitwise-equal either way.
    """

    def __init__(
        self,
        nets: Sequence[Sequence[str]],
        positions: Dict[str, Point],
        fixed: Dict[str, Point],
        vec: bool = False,
    ) -> None:
        self.positions = positions
        n = len(nets)
        self.cell_nets: Dict[str, Tuple[int, ...]] = {}
        self._movable: List[Tuple[str, ...]] = []
        self._fixed_box: List[Optional[Box]] = []
        self._located: List[int] = []
        self._box: List[Optional[Box]] = [None] * n
        self.refolds = 0

        fold_ids: List[int] = []
        seen: Dict[str, Set[int]] = {}
        for net_id, net in enumerate(nets):
            movable: List[str] = []
            fb: Optional[Box] = None
            located = 0
            for pin in net:
                p = positions.get(pin)
                if p is not None:
                    movable.append(pin)
                    located += 1
                    seen.setdefault(pin, set()).add(net_id)
                    continue
                q = fixed.get(pin)
                if q is None:
                    continue
                located += 1
                if fb is None:
                    fb = (q.x, q.y, q.x, q.y)
                else:
                    fb = (
                        min(fb[0], q.x),
                        min(fb[1], q.y),
                        max(fb[2], q.x),
                        max(fb[3], q.y),
                    )
            if fb is None and len(set(movable)) == 1:
                # Every located pin is the same cell: the box is a point
                # that follows the cell, HPWL is exactly 0.0 forever, and
                # the O(1) boundary updates (which assume some *other* pin
                # holds the opposite boundary) would not apply.  Classify
                # as degenerate so reads return the same 0.0 a fold would.
                located = min(located, 1)
            self._movable.append(tuple(movable))
            self._fixed_box.append(fb)
            self._located.append(located)
            if located >= 2:
                fold_ids.append(net_id)
        if vec and fold_ids:
            self._bulk_fold(fold_ids)
        else:
            for net_id in fold_ids:
                self._box[net_id] = self._fold(net_id)
        self.cell_nets = {
            pin: tuple(sorted(ids)) for pin, ids in seen.items()
        }

    def _bulk_fold(self, fold_ids: List[int]) -> None:
        """Initial boxes for all foldable nets in one array reduction."""
        from repro.obs import OBS
        from repro.perf.vec import fold_box_arrays

        movable = self._movable
        fixed_box = self._fixed_box
        lx, ly, ux, uy = fold_box_arrays(
            [movable[i] for i in fold_ids],
            [fixed_box[i] for i in fold_ids],
            self.positions,
        )
        lxl = lx.tolist()
        lyl = ly.tolist()
        uxl = ux.tolist()
        uyl = uy.tolist()
        box = self._box
        for j, net_id in enumerate(fold_ids):
            box[net_id] = (lxl[j], lyl[j], uxl[j], uyl[j])
        if OBS.enabled:
            OBS.metrics.counter("perf.vec.box_folds").inc(len(fold_ids))

    def _fold(self, net_id: int) -> Box:
        """Full bounding box of a net from live positions (exact)."""
        positions = self.positions
        fb = self._fixed_box[net_id]
        movable = self._movable[net_id]
        if fb is None:
            lx = ly = ux = uy = None
        else:
            lx, ly, ux, uy = fb
        for pin in movable:
            p = positions[pin]
            x, y = p.x, p.y
            if lx is None:
                lx = ux = x
                ly = uy = y
                continue
            if x < lx:
                lx = x
            elif x > ux:
                ux = x
            if y < ly:
                ly = y
            elif y > uy:
                uy = y
        return (lx, ly, ux, uy)


class NetBoxCache(_BoxCacheBase):
    """Per-net live bounding boxes with eager delta updates + rollback.

    Args:
        nets: the hypergraph nets (lists of pin names).
        positions: the *live* movable-cell position dict — the cache reads
            it on every re-fold, so mutate it in place and report moves
            via :meth:`apply_moves`.
        fixed: immovable terminal positions (pads); folded once into a
            static per-net partial box.

    Pins present in neither dict are ignored, and a net with fewer than
    two located pins has zero HPWL forever — both exactly as the naive
    fold behaves.  ``vec`` bulk-builds the initial boxes through the
    struct-of-arrays kernels (bitwise-identical; ``PerfOptions.vec_place``).
    """

    def __init__(
        self,
        nets: Sequence[Sequence[str]],
        positions: Dict[str, Point],
        fixed: Dict[str, Point],
        vec: bool = False,
    ) -> None:
        super().__init__(nets, positions, fixed, vec=vec)
        self._dirty: List[bool] = [False] * len(nets)
        self._txn: Optional[Dict[int, Tuple[Optional[Box], bool]]] = None
        self._pair_memo: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
        self.fast_updates = 0
        self.rollbacks = 0

    def swap_plan(self, a: str, b: str) -> List[Tuple[int, int]]:
        """``(net_id, membership)`` rows for a two-cell move (memoized).

        Net ids are sorted; membership is a bitmask (1 = net contains
        ``a``, 2 = contains ``b``, 3 = both).  Nets with fewer than two
        located pins are filtered out — their HPWL is exactly ``+0.0``
        forever, so dropping the terms leaves every before/after sum
        bitwise unchanged.
        """
        key = (a, b)
        got = self._pair_memo.get(key)
        if got is None:
            located = self._located
            in_a = set(self.cell_nets.get(a, ()))
            in_b = set(self.cell_nets.get(b, ()))
            got = [
                (i, (1 if i in in_a else 0) | (2 if i in in_b else 0))
                for i in sorted(in_a | in_b)
                if located[i] >= 2
            ]
            self._pair_memo[key] = got
        return got

    def hpwl(self, net_id: int) -> float:
        """Half-perimeter wirelength of one net (re-folds if dirty)."""
        if self._dirty[net_id]:
            self._box[net_id] = self._fold(net_id)
            self._dirty[net_id] = False
            self.refolds += 1
        box = self._box[net_id]
        if box is None:
            return 0.0
        return (box[2] - box[0]) + (box[3] - box[1])

    # -- transactions --------------------------------------------------------

    def begin(self) -> None:
        """Open a move transaction (snapshot on first touch per net)."""
        self._txn = {}

    def commit(self) -> None:
        """Accept the open transaction's updates."""
        self._txn = None

    def rollback(self) -> None:
        """Restore every net the open transaction touched."""
        txn = self._txn
        if txn:
            box = self._box
            dirty = self._dirty
            for net_id, (old_box, old_dirty) in txn.items():
                box[net_id] = old_box
                dirty[net_id] = old_dirty
        self._txn = None
        self.rollbacks += 1

    def _save(self, net_id: int) -> None:
        txn = self._txn
        if txn is not None and net_id not in txn:
            txn[net_id] = (self._box[net_id], self._dirty[net_id])

    # -- updates -------------------------------------------------------------

    def move_pin(self, net_id: int, old: Point, new: Point) -> None:
        """Update one net's box for a pin that moved ``old -> new``.

        The live position dict must already hold the new position (a
        re-fold reads it).  Interior moves and boundary moves *outward*
        are exact O(1) updates (an outward move from the min/max stays
        the min/max); only a pin leaving a boundary inward can shrink
        the box, which min/max cannot track — that case re-folds.
        """
        box = self._box[net_id]
        if box is None:  # under two located pins: HPWL is 0.0 forever
            return
        self._save(net_id)
        if self._dirty[net_id]:
            self._box[net_id] = self._fold(net_id)
            self._dirty[net_id] = False
            self.refolds += 1
            return
        lx, ly, ux, uy = box
        ox, oy = old.x, old.y
        x, y = new.x, new.y
        if lx < ox < ux:
            if x < lx:
                lx = x
            elif x > ux:
                ux = x
        elif ox == lx and x <= ox:
            lx = x
        elif ox == ux and x >= ox:
            ux = x
        else:
            self._box[net_id] = self._fold(net_id)
            self.refolds += 1
            return
        if ly < oy < uy:
            if y < ly:
                ly = y
            elif y > uy:
                uy = y
        elif oy == ly and y <= oy:
            ly = y
        elif oy == uy and y >= oy:
            uy = y
        else:
            self._box[net_id] = self._fold(net_id)
            self.refolds += 1
            return
        self._box[net_id] = (lx, ly, ux, uy)
        self.fast_updates += 1

    def mark_dirty(self, net_id: int) -> None:
        """Lazily invalidate one net (re-folded on the next read)."""
        if self._located[net_id] < 2:
            return
        self._save(net_id)
        self._dirty[net_id] = True

    def apply_moves(
        self,
        moved: Iterable[Tuple[str, Point, Point]],
        scored: Optional[Set[int]] = None,
    ) -> None:
        """Propagate a batch of cell moves into the per-net boxes.

        Args:
            moved: ``(cell, old_position, new_position)`` records; the
                live position dict must already reflect the new state.
            scored: the net ids the caller is about to read.  Nets of
                moved cells outside this set are only dirty-marked
                (O(1)); ``None`` updates every touched net eagerly.
        """
        located = self._located
        for cell, old, new in moved:
            for net_id in self.cell_nets.get(cell, ()):
                if located[net_id] < 2:
                    continue
                if scored is None or net_id in scored:
                    self.move_pin(net_id, old, new)
                else:
                    self.mark_dirty(net_id)


class StampedNetBoxCache(_BoxCacheBase):
    """Per-net boxes validated by per-cell move stamps (read-side lazy).

    Built for the annealer, where a single swap shifts whole row suffixes
    as a side effect: eagerly touching every net of every shifted cell
    costs more than the folds it saves.  Here a move only bumps an integer
    stamp per *actually moved* cell (:meth:`touch`), and a read re-folds a
    net exactly when some member cell moved after the box was last folded.
    Boxes are therefore always live-accurate on read, rejection needs no
    rollback (the undoing swap just bumps stamps again), and every value
    returned equals the naive full fold bitwise.

    Call :meth:`tick` before each batch of touches: reads between two
    batches validate against the batch's clock, so a later batch must
    carry a newer one.
    """

    def __init__(
        self,
        nets: Sequence[Sequence[str]],
        positions: Dict[str, Point],
        fixed: Dict[str, Point],
        vec: bool = False,
    ) -> None:
        super().__init__(nets, positions, fixed, vec=vec)
        self.clock = 0
        self.cell_stamp: Dict[str, int] = {
            pin: 0 for pin in self.cell_nets
        }
        self._net_stamp: List[int] = [0] * len(nets)
        self.hits = 0

    def tick(self) -> None:
        """Open a new move batch (subsequent touches outdate prior reads)."""
        self.clock += 1

    def touch(self, cell: str) -> None:
        """Record that a cell moved in the current batch."""
        self.cell_stamp[cell] = self.clock

    def hpwl(self, net_id: int) -> float:
        """HPWL of one net, re-folded iff a member moved since last fold."""
        box = self._box[net_id]
        if box is None:
            return 0.0
        stamp = self._net_stamp[net_id]
        stamps = self.cell_stamp
        for pin in self._movable[net_id]:
            if stamps[pin] > stamp:
                box = self._box[net_id] = self._fold(net_id)
                self._net_stamp[net_id] = self.clock
                self.refolds += 1
                break
        else:
            self.hits += 1
        return (box[2] - box[0]) + (box[3] - box[1])

    def refresh_hpwl(self, net_id: int) -> float:
        """HPWL with an unconditional re-fold.

        For callers that already know a member cell moved (the annealer's
        scored nets always contain a swapped cell), skipping the stamp
        scan.  Identical value to :meth:`hpwl`.
        """
        box = self._box[net_id]
        if box is None:
            return 0.0
        box = self._box[net_id] = self._fold(net_id)
        self._net_stamp[net_id] = self.clock
        self.refolds += 1
        return (box[2] - box[0]) + (box[3] - box[1])
