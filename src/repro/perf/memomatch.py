"""Signature-memoizing, index-pruned structural matcher.

Drop-in :class:`~repro.match.treematch.Matcher` replacement used by the
mappers when the corresponding :class:`~repro.perf.options.PerfOptions`
switches are on.  Three layers, outermost first:

1. **Signature memo** — the canonical truncated-subtree signature
   (:mod:`repro.perf.signature`) keys a table of match *templates*
   (pattern + input/covered node indices in the signature's first-visit
   enumeration); signature-equal nodes re-bind the templates instead of
   re-running the commutative matcher.
2. **Pattern index** — first-time signatures enumerate only the patterns
   the :class:`~repro.perf.patindex.PatternIndex` deems plausible.
3. The inherited naive enumeration.

Both layers preserve the naive matcher's match order exactly, which the
DP cover's tie-breaking observes; the golden-equivalence tests assert
bit-identical mappings.  The matcher is safe to share across worker
threads: memo entries are deterministic pure functions of structure, so
racing writers store identical values.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.library.patterns import CellPattern, PatternSet
from repro.match.treematch import _KIND_FOR_TYPE, Match, Matcher
from repro.network.subject import SubjectGraph, SubjectNode
from repro.obs import OBS
from repro.perf.patindex import PatternIndex
from repro.perf.signature import subtree_signature

__all__ = ["MemoMatcher"]

#: One memoized match: (pattern, input node indices, covered node indices).
_Template = Tuple[CellPattern, Tuple[int, ...], Tuple[int, ...]]


class MemoMatcher(Matcher):
    """A :class:`Matcher` with signature memoization and pattern indexing."""

    def __init__(
        self,
        patterns: PatternSet,
        tree_mode: bool = False,
        memoize: bool = True,
        index: bool = True,
        shared_index: "Optional[PatternIndex]" = None,
        shared_templates: "Optional[Dict[tuple, List[_Template]]]" = None,
    ) -> None:
        """``shared_index`` / ``shared_templates`` let a resident service
        (``repro.serve``) reuse one prebuilt :class:`PatternIndex` and one
        cross-job template memo: both are pure functions of library/structure,
        so concurrent writers only ever store identical values.  Per-graph
        state (``_heights``) stays private to each matcher instance."""
        super().__init__(patterns, tree_mode=tree_mode)
        self.memoize = memoize
        if shared_index is not None:
            self.index: Optional[PatternIndex] = shared_index
        else:
            self.index = PatternIndex(patterns) if index else None
        self._max_depth = max(
            (p.root.depth() for p in patterns.patterns), default=0
        )
        #: signature -> match templates (structural, valid across graphs).
        self._templates: Dict[tuple, List[_Template]] = (
            shared_templates if shared_templates is not None else {}
        )
        #: uid -> gate height of the currently bound graph.
        self._heights: Dict[int, int] = {}

    def bind(self, subject: SubjectGraph) -> None:
        """Reset per-graph state (gate heights key off node uids)."""
        self._heights = {}

    # -- gate heights (for the index's embeddability filter) -----------------

    def _gate_height(self, node: SubjectNode) -> int:
        h = self._heights.get(node.uid)
        if h is not None:
            return h
        heights = self._heights
        stack = [node]
        while stack:
            n = stack[-1]
            if n.uid in heights:
                stack.pop()
                continue
            pending = [
                f for f in n.fanins if f.is_gate and f.uid not in heights
            ]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            heights[n.uid] = 1 + max(
                (heights[f.uid] for f in n.fanins if f.is_gate), default=0
            )
        return heights[node.uid]

    # -- matching ------------------------------------------------------------

    def _find(self, snode: SubjectNode, kind) -> List[Match]:
        full = self.patterns.rooted_at(kind)
        if self.index is None:
            return self._enumerate(snode, full)
        candidates = self.index.candidates(snode, self._gate_height(snode))
        if OBS.enabled:
            OBS.metrics.counter("perf.patterns_pruned").inc(
                len(full) - len(candidates)
            )
        return self._enumerate(snode, candidates)

    def matches_at(self, snode: SubjectNode) -> List[Match]:
        kind = _KIND_FOR_TYPE.get(snode.type)
        if kind is None:
            return []
        if not self.memoize:
            return self._find(snode, kind)
        sig, nodes = subtree_signature(
            snode, self._max_depth, tree_mode=self.tree_mode
        )
        if sig is None:
            if OBS.enabled:
                OBS.metrics.counter("perf.sig_over_budget").inc()
            return self._find(snode, kind)
        templates = self._templates.get(sig)
        if templates is None:
            found = self._find(snode, kind)
            index_of = {n.uid: i for i, n in enumerate(nodes)}
            self._templates[sig] = [
                (
                    m.pattern,
                    tuple(index_of[v.uid] for v in m.inputs),
                    tuple(index_of[c.uid] for c in m.covered),
                )
                for m in found
            ]
            if OBS.enabled:
                OBS.metrics.counter("perf.sig_memo_misses").inc()
            return found
        if OBS.enabled:
            OBS.metrics.counter("perf.sig_memo_hits").inc()
        return [
            Match(
                pattern,
                snode,
                tuple(nodes[i] for i in input_idx),
                frozenset(nodes[i] for i in covered_idx),
            )
            for pattern, input_idx, covered_idx in templates
        ]
