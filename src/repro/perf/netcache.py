"""Cross-cone net cache with delta invalidation (incremental wire cost).

Lily's cost model asks, for every candidate match input, for the input
net's *true fanouts* (the fanout walk through doves) and their current
points.  Per-cone memoization already avoids recomputing them within one
DP pass; this cache keeps the entries alive **across** cones and
invalidates only what a commit actually touched, instead of throwing the
whole table away.

Correctness rests on a dependency index: an entry records every node its
fanout walk *visited* (consumers found and doves walked through).  A
commit changes only the life-cycle states and map positions of the match
root and its doves, and the walk's branching decisions and the cached
points are functions of exactly the visited nodes' states/positions — so
dropping the entries that visited a committed node leaves every surviving
entry equal to a fresh recompute.  Placement refreshes move every gate
and clear the cache outright.  The equivalence tests re-derive each entry
from scratch and assert equality mid-run.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.state import PlacementState
from repro.geometry import Point
from repro.map.lifecycle import LifecycleTracker, NodeState
from repro.network.subject import SubjectNode
from repro.obs import OBS

__all__ = ["NetCache"]

#: (consumers sorted by uid, their uids, their x coords, their y coords).
_Entry = Tuple[List[SubjectNode], List[int], List[float], List[float]]


class NetCache:
    """Per-net true-fanout lists and pin points, invalidated by commits."""

    def __init__(self, state: PlacementState, lifecycle: LifecycleTracker) -> None:
        self.state = state
        self.lifecycle = lifecycle
        self._entries: Dict[int, _Entry] = {}
        #: visited node uid -> entry keys whose walk saw that node.
        self._deps: Dict[int, Set[int]] = {}
        #: node uid -> (direct-fanout uids, xs, ys) for the output net.
        self._out_entries: Dict[int, Tuple[List[int], List[float], List[float]]] = {}
        #: sink uid -> out-entry keys listing that sink.
        self._out_deps: Dict[int, Set[int]] = {}

    def _node_point(self, node: SubjectNode) -> Point:
        """mapPosition for hawks, placePosition (or pad) otherwise —
        mirrors :func:`repro.core.rectangles._node_point`."""
        if node.is_gate and self.lifecycle.state(node) is NodeState.HAWK:
            p = self.state.map_position(node)
            if p is not None:
                return p
        return self.state.place_position(node)

    def entry(self, fanin: SubjectNode) -> _Entry:
        """Cached ``(consumers, uids, xs, ys)`` for ``fanin``'s output net.

        ``consumers`` is exactly :func:`repro.core.rectangles.true_fanouts`
        of ``fanin``; the coordinate lists are the consumers' current
        points, aligned by index.
        """
        key = fanin.uid
        cached = self._entries.get(key)
        if cached is not None:
            if OBS.enabled:
                OBS.metrics.counter("perf.netcache_hits").inc()
            return cached
        if OBS.enabled:
            OBS.metrics.counter("perf.netcache_misses").inc()
        # The true-fanout walk, with the visited set recorded as deps.
        lifecycle = self.lifecycle
        found: List[SubjectNode] = []
        seen: Set[int] = set()
        stack = list(fanin.fanouts)
        while stack:
            branch = stack.pop()
            if branch.uid in seen:
                continue
            seen.add(branch.uid)
            if branch.is_po or not branch.is_gate:
                found.append(branch)
                continue
            if lifecycle.state(branch) is NodeState.DOVE:
                stack.extend(branch.fanouts)
            else:
                found.append(branch)
        found.sort(key=lambda n: n.uid)
        points = [self._node_point(n) for n in found]
        entry = (
            found,
            [n.uid for n in found],
            [p.x for p in points],
            [p.y for p in points],
        )
        self._entries[key] = entry
        deps = self._deps
        for uid in seen:
            bucket = deps.get(uid)
            if bucket is None:
                deps[uid] = {key}
            else:
                bucket.add(key)
        return entry

    def consumers(self, fanin: SubjectNode) -> List[SubjectNode]:
        """The true-fanout list alone (delay-mapper load model hook)."""
        return self.entry(fanin)[0]

    def out_entry(
        self, node: SubjectNode
    ) -> Tuple[List[int], List[float], List[float]]:
        """Cached ``(uids, xs, ys)`` of ``node``'s direct fanouts.

        The candidate-output net of Section 3.3 uses the *inchoate*
        fanouts directly (no dove walk); only the sinks' points can go
        stale, so the sinks themselves are the dependencies.
        """
        key = node.uid
        cached = self._out_entries.get(key)
        if cached is not None:
            if OBS.enabled:
                OBS.metrics.counter("perf.netcache_hits").inc()
            return cached
        if OBS.enabled:
            OBS.metrics.counter("perf.netcache_misses").inc()
        sinks = node.fanouts
        points = [self._node_point(s) for s in sinks]
        entry = (
            [s.uid for s in sinks],
            [p.x for p in points],
            [p.y for p in points],
        )
        self._out_entries[key] = entry
        deps = self._out_deps
        for sink in sinks:
            bucket = deps.get(sink.uid)
            if bucket is None:
                deps[sink.uid] = {key}
            else:
                bucket.add(key)
        return entry

    def invalidate(self, node: SubjectNode) -> None:
        """Drop every entry whose walk visited ``node``.

        Called per committed node (the match root and each new dove);
        their life-cycle states and/or map positions just changed.
        """
        dropped = 0
        keys = self._deps.pop(node.uid, None)
        if keys:
            entries = self._entries
            for key in keys:
                if entries.pop(key, None) is not None:
                    dropped += 1
        out_keys = self._out_deps.pop(node.uid, None)
        if out_keys:
            out_entries = self._out_entries
            for key in out_keys:
                if out_entries.pop(key, None) is not None:
                    dropped += 1
        if OBS.enabled and dropped:
            OBS.metrics.counter("perf.netcache_invalidations").inc(dropped)
        # Stale dep buckets for other nodes may still name the dropped
        # keys; that only triggers harmless re-drops of absent entries.

    def clear(self) -> None:
        """Forget everything (placement refresh moved every gate)."""
        self._entries.clear()
        self._deps.clear()
        self._out_entries.clear()
        self._out_deps.clear()
