"""Signature-prefix pattern indexing for the structural matcher.

``Matcher.matches_at`` tries every pattern rooted at the node's base
function; most fail within a step or two because the pattern's *children*
demand gate kinds the subject node's fanins don't have.  The index
pre-buckets the pattern set by the depth-1 signature prefix — the
(commutative) multiset of fanin kinds a subject node presents — and tags
each pattern with its required gate height, so a query returns only the
patterns whose first level is compatible and whose interior tree can
possibly embed below the node.

Filtering is conservative (a pruned pattern provably cannot match) and
order-preserving (survivors keep the pattern set's declaration order), so
the matcher's output — including its order, which DP tie-breaking sees —
is bit-identical with and without the index.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.library.patterns import (
    CellPattern,
    PatternKind,
    PatternNode,
    PatternSet,
)
from repro.network.subject import SubjectNode, SubjectNodeType

__all__ = ["PatternIndex", "interior_height"]

#: Child-kind codes: gate kinds must match exactly, anything else is a
#: leaf-only binding site.
_KIND_CODE = {
    SubjectNodeType.NAND2: "N",
    SubjectNodeType.INV: "I",
}

_PATTERN_CODE = {
    PatternKind.NAND2: "N",
    PatternKind.INV: "I",
    PatternKind.LEAF: "L",
}


def interior_height(node: PatternNode) -> int:
    """Number of gate levels on the pattern's deepest interior path.

    A subject node can host the pattern only if its own gate height (gate
    levels below it, inclusive) is at least this.
    """
    if node.kind is PatternKind.LEAF:
        return 0
    return 1 + max(interior_height(c) for c in node.children)


def _compatible(required: str, actual: str) -> bool:
    """A pattern child of kind ``required`` can anchor at a subject fanin
    of kind ``actual`` (``L`` binds anything)."""
    return required == "L" or required == actual


class PatternIndex:
    """Depth-1-prefix + gate-height buckets over a :class:`PatternSet`."""

    def __init__(self, patterns: PatternSet) -> None:
        self.patterns = patterns
        #: INV-rooted: subject fanin kind -> [(pattern, required_height)].
        self._inv: Dict[str, List[Tuple[CellPattern, int]]] = {
            k: [] for k in "NIX"
        }
        #: NAND-rooted: sorted subject fanin kind pair -> same.
        self._nand: Dict[Tuple[str, str], List[Tuple[CellPattern, int]]] = {}
        for a in "NIX":
            for b in "NIX":
                if a <= b:
                    self._nand[(a, b)] = []
        for pattern in patterns.rooted_at(PatternKind.INV):
            entry = (pattern, interior_height(pattern.root))
            required = _PATTERN_CODE[pattern.root.children[0].kind]
            for actual in "NIX":
                if _compatible(required, actual):
                    self._inv[actual].append(entry)
        for pattern in patterns.rooted_at(PatternKind.NAND2):
            entry = (pattern, interior_height(pattern.root))
            ra, rb = (
                _PATTERN_CODE[c.kind] for c in pattern.root.children
            )
            for key in self._nand:
                ka, kb = key
                if (_compatible(ra, ka) and _compatible(rb, kb)) or (
                    _compatible(ra, kb) and _compatible(rb, ka)
                ):
                    self._nand[key].append(entry)

    def candidates(
        self, snode: SubjectNode, gate_height: int
    ) -> List[CellPattern]:
        """Patterns that could possibly anchor at ``snode``.

        ``gate_height`` is the subject node's gate height — 1 + the max
        gate height over gate fanins (non-gates count 0).
        """
        if snode.type is SubjectNodeType.INV:
            bucket = self._inv[_KIND_CODE.get(snode.fanins[0].type, "X")]
        elif snode.type is SubjectNodeType.NAND2:
            ka, kb = (
                _KIND_CODE.get(f.type, "X") for f in snode.fanins
            )
            bucket = self._nand[(ka, kb) if ka <= kb else (kb, ka)]
        else:
            return []
        return [p for p, h in bucket if h <= gate_height]
