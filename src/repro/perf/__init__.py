"""Hot-path optimization layer for the mapping and layout stack.

Independent, individually-switchable techniques (see ``PerfOptions``):

* **match memoization** (:mod:`repro.perf.memomatch`) — structural matches
  depend only on the truncated fanin DAG below a node, so nodes with equal
  canonical subtree signatures share one memoized match list;
* **pattern indexing** (:mod:`repro.perf.patindex`) — the pattern set is
  pre-bucketed by root/child base-function kinds and required gate height,
  so the matcher tries only plausible patterns;
* **incremental net caching** (:mod:`repro.perf.netcache`) — per-net
  true-fanout lists and pin points are cached across cones and invalidated
  by delta on commit instead of recomputed from scratch per candidate;
* **parallel cone mapping** (:mod:`repro.perf.parallel`) — an opt-in
  ``concurrent.futures`` executor pre-computes the per-cone match lists in
  parallel with a deterministic merge order;
* **incremental placement bookkeeping** (:mod:`repro.perf.incremental`) —
  per-net bounding-box caches giving the annealer and the detailed swap
  pass O(pins-of-moved-cell) cost deltas instead of full-net re-folds;
* **incremental timing** (:mod:`repro.timing.incremental`) — dirty-node
  frontier propagation so a gate move re-times only its fanout cone.

Every path is bit-identical to the naive one it replaces (asserted by the
golden-equivalence tests) and reports cache hit/miss counters through
``repro.obs`` (visible in ``report --profile``).
"""

import importlib

from repro.perf.options import PerfOptions
from repro.perf.signature import subtree_signature

__all__ = [
    "PerfOptions",
    "subtree_signature",
    "PatternIndex",
    "MemoMatcher",
    "NetCache",
    "prewarm_match_cache",
    "NetBoxCache",
    "StampedNetBoxCache",
]

# The heavier members live in submodules that import from repro.map /
# repro.core; loading them here eagerly would close an import cycle
# (map.base -> repro.perf -> netcache -> repro.map).  PEP 562 lazy
# attributes keep `from repro.perf import NetCache` working regardless
# of which package loads first.
_LAZY = {
    "PatternIndex": "repro.perf.patindex",
    "MemoMatcher": "repro.perf.memomatch",
    "NetCache": "repro.perf.netcache",
    "prewarm_match_cache": "repro.perf.parallel",
    "NetBoxCache": "repro.perf.incremental",
    "StampedNetBoxCache": "repro.perf.incremental",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module), name)
