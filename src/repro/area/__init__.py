"""Chip-area prediction for standard-cell layouts (Pedram & Preas style)."""

from repro.area.estimate import (
    ChipEstimate,
    estimate_chip,
    subject_image,
    mapped_image,
)

__all__ = ["ChipEstimate", "estimate_chip", "subject_image", "mapped_image"]
