"""Standard-cell chip-area prediction (the [15] substrate).

Two uses in the reproduction:

* **Before mapping** Lily needs a layout *image* to place the inchoate
  network on (Section 3.1: "the actual area of the image is estimated by
  accurate area predictors for standard cell based designs").
  :func:`subject_image` predicts the image from the base-gate count.
* **After routing** the experiments report the final chip area;
  :func:`estimate_chip` wraps the routed dimensions with the pad ring.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.geometry import Rect

__all__ = ["ChipEstimate", "subject_image", "mapped_image", "estimate_chip"]

#: Expected mapped-gate area per subject base gate, µm².  Mapping merges
#: roughly 2–3 base functions per library gate (average gate area ≈ 1900),
#: giving ≈ 800 µm² of active cell area per NAND2/INV of the subject graph.
AREA_PER_BASE_GATE = 800.0
#: Routing consumes roughly as much area as the cells in this technology
#: (Section 1: "interconnections occupy more than half the total chip area").
ROUTING_FACTOR = 1.1
#: Width of the pad ring added on each chip side, µm.
PAD_RING = 40.0


@dataclass(frozen=True)
class ChipEstimate:
    """Final chip dimensions and the headline area numbers."""

    core_width: float
    core_height: float
    cell_area: float
    pad_ring: float = PAD_RING

    @property
    def chip_width(self) -> float:
        return self.core_width + 2 * self.pad_ring

    @property
    def chip_height(self) -> float:
        return self.core_height + 2 * self.pad_ring

    @property
    def chip_area(self) -> float:
        return self.chip_width * self.chip_height

    @property
    def routing_area(self) -> float:
        return max(self.core_width * self.core_height - self.cell_area, 0.0)


def subject_image(num_base_gates: int, utilization: float = 1.0) -> Rect:
    """Predicted square layout image for the inchoate network.

    The image side follows from the predicted mapped cell area plus the
    routing share; gates are placed as points inside it.
    """
    area = max(num_base_gates, 1) * AREA_PER_BASE_GATE * (1.0 + ROUTING_FACTOR)
    side = math.sqrt(area / max(utilization, 1e-6))
    return Rect(0.0, 0.0, side, side)


def mapped_image(total_cell_area: float, utilization: float = 1.0) -> Rect:
    """Predicted square image for placing a mapped netlist."""
    area = max(total_cell_area, 1.0) * (1.0 + ROUTING_FACTOR)
    side = math.sqrt(area / max(utilization, 1e-6))
    return Rect(0.0, 0.0, side, side)


def estimate_chip(
    core_width: float, core_height: float, cell_area: float
) -> ChipEstimate:
    """Wrap routed core dimensions with the pad ring."""
    return ChipEstimate(core_width, core_height, cell_area)
