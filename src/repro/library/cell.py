"""Library cells and the per-pin linear delay model of Section 4.1.

Each input pin ``i`` of a gate carries an intrinsic delay ``I_i`` and an
output (drive) resistance ``R_i``, separately for rising and falling output
transitions, plus an input capacitance.  Gate delay from pin ``i`` is the
linear function ``I_i + R_i * C_L`` of the output load ``C_L``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.network.expr import Expr, parse_expression
from repro.network.logic import SopCover, TruthTable

__all__ = ["PinTiming", "Pin", "Cell", "Library"]


@dataclass(frozen=True)
class PinTiming:
    """Linear delay parameters of one input pin (Section 4.1).

    ``block`` is the intrinsic (zero-load) delay ``I_i``; ``resistance`` is
    the output resistance ``R_i``, i.e. delay per unit load capacitance.
    """

    rise_block: float
    rise_resistance: float
    fall_block: float
    fall_resistance: float

    @property
    def worst_block(self) -> float:
        return max(self.rise_block, self.fall_block)

    @property
    def worst_resistance(self) -> float:
        return max(self.rise_resistance, self.fall_resistance)

    @staticmethod
    def uniform(block: float, resistance: float) -> "PinTiming":
        """Identical rise and fall parameters."""
        return PinTiming(block, resistance, block, resistance)


@dataclass(frozen=True)
class Pin:
    """One input pin: name, load it presents, and its delay parameters."""

    name: str
    input_cap: float
    timing: PinTiming


class Cell:
    """A library gate: single-output combinational cell.

    The function is an expression over the pin names; pin order follows the
    declaration order in the library and fixes the variable order of the
    cell's truth table.
    """

    def __init__(
        self,
        name: str,
        area: float,
        expression: str,
        pins: Sequence[Pin],
        output_name: str = "O",
    ) -> None:
        self.name = name
        self.area = area
        self.output_name = output_name
        self.expression_text = expression
        self.expression: Expr = parse_expression(expression)
        self.pins: List[Pin] = list(pins)
        pin_names = [p.name for p in self.pins]
        if len(set(pin_names)) != len(pin_names):
            raise ValueError(f"cell {name!r}: duplicate pin names")
        used = self.expression.variables()
        missing = [v for v in used if v not in pin_names]
        if missing:
            raise ValueError(f"cell {name!r}: pins missing for {missing}")
        unused = [p for p in pin_names if p not in used]
        if unused:
            raise ValueError(f"cell {name!r}: unused pins {unused}")
        self.truth_table: TruthTable = self.expression.to_truth_table(pin_names)

    @property
    def num_inputs(self) -> int:
        return len(self.pins)

    @property
    def pin_names(self) -> List[str]:
        return [p.name for p in self.pins]

    @property
    def is_inverter(self) -> bool:
        return self.num_inputs == 1 and self.truth_table == TruthTable(1, 0b01)

    @property
    def is_buffer(self) -> bool:
        return self.num_inputs == 1 and self.truth_table == TruthTable(1, 0b10)

    @property
    def is_nand2(self) -> bool:
        return self.num_inputs == 2 and self.truth_table == TruthTable(2, 0b0111)

    @property
    def max_input_cap(self) -> float:
        return max(p.input_cap for p in self.pins)

    def pin(self, name: str) -> Pin:
        for p in self.pins:
            if p.name == name:
                return p
        raise KeyError(f"cell {self.name!r} has no pin {name!r}")

    def sop(self) -> SopCover:
        """The cell function as an SOP cover over the ordered pins."""
        return self.truth_table.to_sop()

    def input_automorphisms(self) -> List[tuple]:
        """Pin permutations that leave the cell function unchanged.

        Used to deduplicate pattern graphs: two patterns related by a
        function automorphism yield identical matches.
        """
        import itertools

        n = self.num_inputs
        autos = []
        for perm in itertools.permutations(range(n)):
            if self.truth_table.permuted(perm) == self.truth_table:
                autos.append(perm)
        return autos

    def worst_case_delay(self, load: float) -> float:
        """Worst pin-to-output delay under the given output load."""
        return max(
            p.timing.worst_block + p.timing.worst_resistance * load
            for p in self.pins
        )

    def __repr__(self) -> str:
        return f"Cell({self.name!r}, area={self.area}, inputs={self.num_inputs})"


class Library:
    """An ordered collection of cells with convenience lookups."""

    def __init__(self, name: str, cells: Sequence[Cell]) -> None:
        self.name = name
        self.cells: List[Cell] = list(cells)
        self._by_name: Dict[str, Cell] = {}
        for cell in self.cells:
            if cell.name in self._by_name:
                raise ValueError(f"duplicate cell name: {cell.name!r}")
            self._by_name[cell.name] = cell
        if self.inverter() is None:
            raise ValueError(f"library {name!r} lacks an inverter")
        if self.nand2() is None:
            raise ValueError(f"library {name!r} lacks a 2-input NAND")

    def __iter__(self):
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Cell:
        return self._by_name[name]

    def get(self, name: str) -> Optional[Cell]:
        return self._by_name.get(name)

    def inverter(self) -> Optional[Cell]:
        """The smallest inverter in the library."""
        invs = [c for c in self.cells if c.is_inverter]
        return min(invs, key=lambda c: c.area) if invs else None

    def nand2(self) -> Optional[Cell]:
        """The smallest 2-input NAND in the library."""
        nands = [c for c in self.cells if c.is_nand2]
        return min(nands, key=lambda c: c.area) if nands else None

    def max_fanin(self) -> int:
        return max(c.num_inputs for c in self.cells)

    def restricted(self, name: str, max_inputs: int) -> "Library":
        """A sub-library keeping only cells with at most ``max_inputs`` pins."""
        return Library(
            name, [c for c in self.cells if c.num_inputs <= max_inputs]
        )

    def __repr__(self) -> str:
        return f"Library({self.name!r}, {len(self.cells)} cells)"
