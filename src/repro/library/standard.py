"""Built-in MSU-flavoured standard-cell libraries.

The paper maps onto the 3µ MSU standard-cell library [12] and, lacking real
1µ data, linearly scales delay and capacitance (Section 5).  We embed a
library in genlib form with the classic MSU/MCNC cell set and lib2-style
areas (µm²); :func:`scale_library` reproduces the paper's 3µ -> 1µ scaling.

Two variants support the Section 5 library-size discussion:

* ``tiny`` — gates with at most 3 inputs;
* ``big``  — gates with up to 6 inputs (the experiments' default).
"""

from __future__ import annotations

import functools

from repro.library.cell import Cell, Library, Pin, PinTiming
from repro.library.genlib import parse_genlib

__all__ = ["big_library", "tiny_library", "scale_library", "BIG_GENLIB"]

#: Default input-pin capacitance, pF — "Most gates in the 3µ MSU standard
#: cell library have an input capacitance of 0.25 pF" (Section 4.3).
DEFAULT_INPUT_CAP = 0.25

BIG_GENLIB = """
# MSU-flavoured big library: cells up to 6 inputs.
# GATE <name> <area um^2>  O=<expr>;
#   PIN <name|*> <phase> <cap pF> <maxload> <r-block> <r-res> <f-block> <f-res>
GATE inv1   928   O=!a;              PIN * INV 0.25 999 0.90 0.50 0.80 0.35
GATE inv2   1392  O=!a;              PIN * INV 0.50 999 1.00 0.26 0.90 0.19
GATE inv4   2320  O=!a;              PIN * INV 1.00 999 1.10 0.14 1.00 0.10
GATE buf1   1392  O=a;               PIN * NONINV 0.25 999 1.80 0.46 1.60 0.40
GATE nand2  1392  O=!(a*b);          PIN * INV 0.25 999 1.20 0.60 1.00 0.45
GATE nand3  1856  O=!(a*b*c);        PIN * INV 0.25 999 1.50 0.70 1.30 0.55
GATE nand4  2320  O=!(a*b*c*d);      PIN * INV 0.25 999 1.80 0.80 1.60 0.65
GATE nand5  2784  O=!(a*b*c*d*e);    PIN * INV 0.25 999 2.10 0.90 1.90 0.75
GATE nand6  3248  O=!(a*b*c*d*e*f);  PIN * INV 0.25 999 2.40 1.00 2.20 0.85
GATE nor2   1392  O=!(a+b);          PIN * INV 0.25 999 1.40 0.70 1.10 0.50
GATE nor3   1856  O=!(a+b+c);        PIN * INV 0.25 999 1.80 0.85 1.40 0.60
GATE nor4   2320  O=!(a+b+c+d);      PIN * INV 0.25 999 2.20 1.00 1.70 0.70
GATE nor5   2784  O=!(a+b+c+d+e);    PIN * INV 0.25 999 2.60 1.15 2.00 0.80
GATE nor6   3248  O=!(a+b+c+d+e+f);  PIN * INV 0.25 999 3.00 1.30 2.30 0.90
GATE and2   1856  O=a*b;             PIN * NONINV 0.25 999 2.00 0.55 1.80 0.45
GATE and3   2320  O=a*b*c;           PIN * NONINV 0.25 999 2.30 0.62 2.10 0.52
GATE and4   2784  O=a*b*c*d;         PIN * NONINV 0.25 999 2.60 0.70 2.40 0.58
GATE or2    1856  O=a+b;             PIN * NONINV 0.25 999 2.20 0.60 1.90 0.48
GATE or3    2320  O=a+b+c;           PIN * NONINV 0.25 999 2.60 0.68 2.20 0.55
GATE or4    2784  O=a+b+c+d;         PIN * NONINV 0.25 999 3.00 0.76 2.50 0.62
GATE aoi21  1856  O=!(a*b+c);        PIN * INV 0.25 999 1.60 0.75 1.40 0.60
GATE aoi22  2320  O=!(a*b+c*d);      PIN * INV 0.25 999 1.90 0.85 1.70 0.70
GATE oai21  1856  O=!((a+b)*c);      PIN * INV 0.25 999 1.60 0.75 1.40 0.60
GATE oai22  2320  O=!((a+b)*(c+d));  PIN * INV 0.25 999 1.90 0.85 1.70 0.70
GATE aoi211 2320  O=!(a*b+c+d);      PIN * INV 0.25 999 2.00 0.90 1.80 0.72
GATE oai211 2320  O=!((a+b)*c*d);    PIN * INV 0.25 999 2.00 0.90 1.80 0.72
GATE aoi222 2784  O=!(a*b+c*d+e*f);  PIN * INV 0.25 999 2.30 1.00 2.10 0.82
GATE aoi33  3248  O=!(a*b*c+d*e*f);  PIN * INV 0.25 999 2.50 1.05 2.30 0.86
GATE oai33  3248  O=!((a+b+c)*(d+e+f)); PIN * INV 0.25 999 2.50 1.05 2.30 0.86
GATE xor2   2784  O=a*!b+!a*b;       PIN * UNKNOWN 0.30 999 2.40 0.90 2.20 0.80
GATE xnor2  2784  O=a*b+!a*!b;       PIN * UNKNOWN 0.30 999 2.40 0.90 2.20 0.80
GATE mux21  2784  O=s*a+!s*b;        PIN * UNKNOWN 0.25 999 2.50 0.80 2.30 0.70
"""

#: Cells admitted into the tiny (<= 3-input) library.
_TINY_CELLS = (
    "inv1",
    "inv2",
    "buf1",
    "nand2",
    "nand3",
    "nor2",
    "nor3",
    "and2",
    "or2",
    "aoi21",
    "oai21",
    "xor2",
    "xnor2",
    "mux21",
)


@functools.lru_cache(maxsize=None)
def big_library() -> Library:
    """The big (<= 6-input) library — default target of the experiments."""
    lib = parse_genlib(BIG_GENLIB, name="big")
    return lib


@functools.lru_cache(maxsize=None)
def tiny_library() -> Library:
    """The tiny (<= 3-input) library of the Section 5 discussion."""
    big = big_library()
    return Library("tiny", [big[name] for name in _TINY_CELLS])


def scale_library(
    library: Library,
    factor: float,
    name: str = "",
    scale_area: bool = False,
) -> Library:
    """Linearly scale delays and capacitances, as in the paper's 3µ -> 1µ move.

    The paper scaled "the delay, gate capacitance and wiring capacitance of
    3µ technology" [12] for its Table 2 — note that cell *areas* (and hence
    chip geometry and wire lengths) stayed at the 3µ values, which is
    exactly why wiring delay is significant in that experiment.  Pass
    ``scale_area=True`` to also shrink areas by ``factor**2`` (a true full
    shrink).
    """
    cells = []
    for cell in library:
        pins = [
            Pin(
                p.name,
                p.input_cap * factor,
                PinTiming(
                    p.timing.rise_block * factor,
                    p.timing.rise_resistance,
                    p.timing.fall_block * factor,
                    p.timing.fall_resistance,
                ),
            )
            for p in cell.pins
        ]
        area = cell.area * (factor * factor if scale_area else 1.0)
        cells.append(
            Cell(
                cell.name,
                area,
                cell.expression_text,
                pins,
                output_name=cell.output_name,
            )
        )
    return Library(name or f"{library.name}_x{factor:g}", cells)
