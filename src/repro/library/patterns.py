"""Pattern-graph generation: each library cell as a set of NAND2/INV trees.

DAGON represents every library gate by one or more *pattern graphs* built
from the base functions (Section 2).  We generate them automatically from
the cell's SOP cover: every binary-tree shape of the per-cube AND trees and
of the OR tree over cubes yields one pattern; patterns equivalent under a
pin permutation that is an automorphism of the cell function are
deduplicated (for a 6-input AND the 945 labelled trees collapse to the 6
Wedderburn–Etherington shapes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.library.cell import Cell, Library
from repro.network.logic import SopCover, TruthTable

__all__ = ["PatternKind", "PatternNode", "CellPattern", "PatternSet"]

#: Safety cap on generated (pre-dedup) trees per cell.
MAX_TREES_PER_CELL = 20000


class PatternKind(enum.Enum):
    NAND2 = "nand2"
    INV = "inv"
    LEAF = "leaf"


class PatternNode:
    """One vertex of a pattern tree.

    ``LEAF`` nodes carry the pin index they bind; interior nodes are NAND2
    or INV.  Pattern trees are immutable once built.
    """

    __slots__ = ("kind", "children", "pin_index", "_key")

    def __init__(
        self,
        kind: PatternKind,
        children: Sequence["PatternNode"] = (),
        pin_index: Optional[int] = None,
    ) -> None:
        self.kind = kind
        self.children: Tuple[PatternNode, ...] = tuple(children)
        self.pin_index = pin_index
        if kind is PatternKind.LEAF:
            if pin_index is None or self.children:
                raise ValueError("leaf needs a pin index and no children")
        elif kind is PatternKind.INV:
            if len(self.children) != 1:
                raise ValueError("INV pattern node needs one child")
        elif len(self.children) != 2:
            raise ValueError("NAND2 pattern node needs two children")
        self._key: Optional[tuple] = None

    @staticmethod
    def leaf(pin_index: int) -> "PatternNode":
        return PatternNode(PatternKind.LEAF, (), pin_index)

    @staticmethod
    def inv(child: "PatternNode") -> "PatternNode":
        return PatternNode(PatternKind.INV, (child,))

    @staticmethod
    def nand(a: "PatternNode", b: "PatternNode") -> "PatternNode":
        return PatternNode(PatternKind.NAND2, (a, b))

    def key(self) -> tuple:
        """Commutatively-canonical structural key (NAND children sorted)."""
        if self._key is None:
            if self.kind is PatternKind.LEAF:
                self._key = ("L", self.pin_index)
            elif self.kind is PatternKind.INV:
                self._key = ("I", self.children[0].key())
            else:
                keys = sorted((self.children[0].key(), self.children[1].key()))
                self._key = ("N", keys[0], keys[1])
        return self._key

    def relabeled(self, perm: Sequence[int]) -> "PatternNode":
        """Apply a pin permutation: leaf ``i`` becomes leaf ``perm[i]``."""
        if self.kind is PatternKind.LEAF:
            return PatternNode.leaf(perm[self.pin_index])
        if self.kind is PatternKind.INV:
            return PatternNode.inv(self.children[0].relabeled(perm))
        return PatternNode.nand(
            self.children[0].relabeled(perm), self.children[1].relabeled(perm)
        )

    def size(self) -> int:
        """Number of interior (gate) nodes."""
        if self.kind is PatternKind.LEAF:
            return 0
        return 1 + sum(c.size() for c in self.children)

    def depth(self) -> int:
        if self.kind is PatternKind.LEAF:
            return 0
        return 1 + max(c.depth() for c in self.children)

    def leaves(self) -> List[int]:
        """Pin indices in left-to-right order."""
        if self.kind is PatternKind.LEAF:
            return [self.pin_index]
        out: List[int] = []
        for c in self.children:
            out.extend(c.leaves())
        return out

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate the pattern over pin values (for self-checks)."""
        if self.kind is PatternKind.LEAF:
            return assignment[self.pin_index]
        if self.kind is PatternKind.INV:
            return not self.children[0].evaluate(assignment)
        return not (
            self.children[0].evaluate(assignment)
            and self.children[1].evaluate(assignment)
        )

    def __repr__(self) -> str:
        if self.kind is PatternKind.LEAF:
            return f"x{self.pin_index}"
        if self.kind is PatternKind.INV:
            return f"!({self.children[0]!r})"
        return f"NAND({self.children[0]!r}, {self.children[1]!r})"


@dataclass(frozen=True)
class CellPattern:
    """A pattern graph: a cell together with one of its NAND2/INV trees."""

    cell: Cell
    root: PatternNode

    @property
    def num_gates(self) -> int:
        return self.root.size()


def _splits(items: Tuple) -> Iterator[Tuple[Tuple, Tuple]]:
    """Unordered two-part partitions of ``items`` (first item stays left)."""
    n = len(items)
    first, rest = items[0], items[1:]
    for mask in range(1 << (n - 1)):
        left = [first]
        right = []
        for i, item in enumerate(rest):
            if (mask >> i) & 1:
                left.append(item)
            else:
                right.append(item)
        if right:
            yield tuple(left), tuple(right)


def _and_trees(
    leaves: Tuple[PatternNode, ...], invert: bool, budget: List[int]
) -> Iterator[PatternNode]:
    """All binary NAND/INV trees computing AND(leaves) (or its complement)."""
    if budget[0] <= 0:
        return
    if len(leaves) == 1:
        budget[0] -= 1
        yield PatternNode.inv(leaves[0]) if invert else leaves[0]
        return
    for left, right in _splits(leaves):
        for a in _and_trees(left, False, budget):
            for b in _and_trees(right, False, budget):
                if budget[0] <= 0:
                    return
                budget[0] -= 1
                node = PatternNode.nand(a, b)
                yield node if invert else PatternNode.inv(node)


def _expr_trees(expr, pin_index: Dict[str, int], invert: bool, budget: List[int]):
    """All NAND2/INV trees realising an expression AST (or its complement).

    Works on the *factored form* from the library (as DAGON does), so an
    AOI222 stays three product terms rather than exploding into the flat
    SOP of its complement.
    """
    from repro.network.expr import And, Const, Not, Or, Var, Xor

    if isinstance(expr, Var):
        leaf = PatternNode.leaf(pin_index[expr.name])
        yield PatternNode.inv(leaf) if invert else leaf
        return
    if isinstance(expr, Not):
        yield from _expr_trees(expr.child, pin_index, not invert, budget)
        return
    if isinstance(expr, Xor):
        # Rewrite a ^ b as a*!b + !a*b and recurse (n-ary left-folded).
        a = expr.children[0]
        rest = expr.children[1] if len(expr.children) == 2 else Xor(expr.children[1:])
        rewritten = Or([And([a, Not(rest)]), And([Not(a), rest])])
        yield from _expr_trees(rewritten, pin_index, invert, budget)
        return
    if isinstance(expr, Const):
        raise ValueError("constant sub-expressions are not mappable patterns")

    if isinstance(expr, And):
        children = list(expr.children)
        want_invert = invert
    elif isinstance(expr, Or):
        # OR(xs) = !AND(!xs): negate the children, flip the root polarity.
        children = [Not(c) for c in expr.children]
        want_invert = not invert
    else:
        raise TypeError(f"unexpected expression node: {expr!r}")

    subtree_lists = []
    for child in children:
        subtree_lists.append(list(_expr_trees(child, pin_index, False, budget)))
    import itertools

    for combo in itertools.product(*subtree_lists):
        yield from _and_trees(tuple(combo), want_invert, budget)
        if budget[0] <= 0:
            return


def _cover_expression(cover: SopCover, pin_names: Sequence[str]):
    """An Or-of-And expression AST equivalent to an SOP cover."""
    from repro.network.expr import And, Not, Or, Var

    cube_exprs = []
    for cube in cover.cubes:
        literals = []
        for i, lit in enumerate(cube.mask):
            if lit == "-":
                continue
            var = Var(pin_names[i])
            literals.append(Not(var) if lit == "0" else var)
        if not literals:
            return None  # constant-ish cover; caller skips
        cube_exprs.append(literals[0] if len(literals) == 1 else And(literals))
    if not cube_exprs:
        return None
    return cube_exprs[0] if len(cube_exprs) == 1 else Or(cube_exprs)


def generate_patterns(cell: Cell) -> List[CellPattern]:
    """All structurally-distinct pattern trees for a cell.

    Trees are generated from the cell's factored expression and deduplicated
    under the cell's input automorphism group, then self-checked against the
    cell function.
    """
    pin_index = {name: i for i, name in enumerate(cell.pin_names)}
    budget = [MAX_TREES_PER_CELL]
    roots: List[PatternNode] = list(
        _expr_trees(cell.expression, pin_index, False, budget)
    )
    # Alternative decomposition: the flat SOP of the cell function.  The
    # subject graph is decomposed from node SOPs, so SOP-shaped patterns
    # (e.g. !a!c + !b!c for an AOI21) are the ones that actually anchor
    # there.  Skipped when the cover is large (the factored form suffices
    # and enumeration would explode).
    cover = cell.sop()
    total_literals = cover.num_literals
    if cover.num_cubes <= 4 and total_literals <= 10:
        sop_expr = _cover_expression(cover, cell.pin_names)
        if sop_expr is not None:
            roots.extend(_expr_trees(sop_expr, pin_index, False, budget))

    # A buffer's tree is a bare leaf; its pattern graph is the inverter pair.
    roots = [
        PatternNode.inv(PatternNode.inv(r)) if r.kind is PatternKind.LEAF else r
        for r in roots
    ]

    import math

    autos = cell.input_automorphisms()
    fully_symmetric = len(autos) == math.factorial(cell.num_inputs)
    seen: set = set()
    patterns: List[CellPattern] = []
    for root in roots:
        if fully_symmetric:
            # Any leaf labelling of a shape is equivalent: dedupe by shape.
            canonical = _shape_key(root)
        else:
            canonical = min(_key_under_perm(root, perm) for perm in autos)
        if canonical in seen:
            continue
        seen.add(canonical)
        _self_check(cell, root)
        patterns.append(CellPattern(cell, root))
    return patterns


def _shape_key(node: PatternNode) -> tuple:
    """Structural key ignoring leaf labels (for fully symmetric cells)."""
    if node.kind is PatternKind.LEAF:
        return ("L",)
    if node.kind is PatternKind.INV:
        return ("I", _shape_key(node.children[0]))
    keys = sorted((_shape_key(node.children[0]), _shape_key(node.children[1])))
    return ("N", keys[0], keys[1])


def _key_under_perm(node: PatternNode, perm: Sequence[int]) -> tuple:
    """Commutatively-canonical key with leaves relabelled through ``perm``."""
    if node.kind is PatternKind.LEAF:
        return ("L", perm[node.pin_index])
    if node.kind is PatternKind.INV:
        return ("I", _key_under_perm(node.children[0], perm))
    keys = sorted(
        (
            _key_under_perm(node.children[0], perm),
            _key_under_perm(node.children[1], perm),
        )
    )
    return ("N", keys[0], keys[1])


def _self_check(cell: Cell, root: PatternNode) -> None:
    """Verify the pattern realises exactly the cell function."""
    n = cell.num_inputs
    if sorted(set(root.leaves())) != list(range(n)):
        raise AssertionError(
            f"pattern for {cell.name!r} does not reference every pin once"
        )
    tt = TruthTable.from_function(
        n, lambda assignment: root.evaluate(assignment)
    )
    if tt != cell.truth_table:
        raise AssertionError(f"pattern for {cell.name!r} computes a wrong function")


class PatternSet:
    """All pattern graphs of a library, indexed for the matcher.

    Patterns are grouped by the kind of their root node so the matcher only
    tries trees that can possibly anchor at a given subject node.
    """

    def __init__(self, library: Library) -> None:
        self.library = library
        self.patterns: List[CellPattern] = []
        for cell in library:
            self.patterns.extend(generate_patterns(cell))
        self._by_root: Dict[PatternKind, List[CellPattern]] = {
            PatternKind.NAND2: [],
            PatternKind.INV: [],
        }
        for pat in self.patterns:
            if pat.root.kind is PatternKind.LEAF:
                raise AssertionError("degenerate single-leaf pattern")
            self._by_root[pat.root.kind].append(pat)

    def rooted_at(self, kind: PatternKind) -> List[CellPattern]:
        """Patterns whose root gate is of the given base-function kind."""
        return self._by_root.get(kind, [])

    def __len__(self) -> int:
        return len(self.patterns)

    def stats(self) -> Dict[str, int]:
        per_cell: Dict[str, int] = {}
        for pat in self.patterns:
            per_cell[pat.cell.name] = per_cell.get(pat.cell.name, 0) + 1
        return per_cell


_PATTERN_CACHE: Dict[int, PatternSet] = {}


def pattern_set_for(library: Library) -> PatternSet:
    """Memoised :class:`PatternSet` construction (libraries are reused)."""
    key = id(library)
    cached = _PATTERN_CACHE.get(key)
    if cached is None or cached.library is not library:
        cached = PatternSet(library)
        _PATTERN_CACHE[key] = cached
    return cached
