"""Reader/writer for the genlib gate-library format used by MIS/SIS.

Supported subset (combinational single-output gates):

    GATE <name> <area> <output>=<expression>;
    PIN <pin-name | *> <phase> <input-load> <max-load>
        <rise-block> <rise-fanout-delay> <fall-block> <fall-fanout-delay>

``PIN *`` applies one timing record to every input.  ``LATCH`` and friends
are rejected — the reproduction maps combinational logic only.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.library.cell import Cell, Library, Pin, PinTiming

__all__ = ["parse_genlib", "write_genlib", "GenlibError"]


class GenlibError(ValueError):
    """Raised on malformed genlib input.

    The message carries ``filename:line:`` context whenever it is known;
    the bare reason, file name and line number are also available as the
    :attr:`reason`, :attr:`filename` and :attr:`line` attributes.
    """

    def __init__(self, reason: str, filename: Optional[str] = None,
                 line: Optional[int] = None):
        self.reason = reason
        self.filename = filename
        self.line = line
        prefix = filename or "<genlib>"
        if line is not None:
            prefix += f":{line}"
        super().__init__(f"{prefix}: {reason}")


_GATE_RE = re.compile(
    r"GATE\s+(?P<name>\S+)\s+(?P<area>[\d.eE+-]+)\s+"
    r"(?P<out>[A-Za-z_][\w\[\]\.]*)\s*=\s*(?P<expr>[^;]+);",
)
_PIN_RE = re.compile(
    r"PIN\s+(?P<pin>\S+)\s+(?P<phase>INV|NONINV|UNKNOWN)\s+"
    r"(?P<load>[\d.eE+-]+)\s+(?P<maxload>[\d.eE+-]+)\s+"
    r"(?P<rb>[\d.eE+-]+)\s+(?P<rr>[\d.eE+-]+)\s+"
    r"(?P<fb>[\d.eE+-]+)\s+(?P<fr>[\d.eE+-]+)"
)


def _strip_comments(text: str) -> str:
    out_lines = []
    for line in text.splitlines():
        hash_pos = line.find("#")
        if hash_pos >= 0:
            line = line[:hash_pos]
        out_lines.append(line)
    return "\n".join(out_lines)


def _line_of(text: str, offset: int) -> int:
    """1-based line number of a character offset into ``text``."""
    return text.count("\n", 0, offset) + 1


def _check_unmatched(text: str, keyword: str, spans, what: str,
                     filename: Optional[str], region=None) -> None:
    """Reject ``keyword`` tokens that no well-formed record consumed.

    The regex-driven parser would otherwise silently skip a mis-spelled
    GATE or PIN line — a malformed library must be an error, not a
    smaller library.  ``spans`` and ``region`` are offsets into the full
    ``text`` so reported line numbers are file-absolute.
    """
    lo, hi = region if region is not None else (0, len(text))
    for m in re.finditer(rf"\b{keyword}\b", text[lo:hi]):
        offset = lo + m.start()
        if any(start <= offset < end for start, end in spans):
            continue
        lineno = _line_of(text, offset)
        snippet = text.splitlines()[lineno - 1].strip()
        raise GenlibError(f"malformed {what} line: {snippet!r}",
                          filename, lineno)


def parse_genlib(text: str, name: str = "genlib",
                 filename: Optional[str] = None) -> Library:
    """Parse genlib text into a :class:`Library`.

    ``filename`` is only used to contextualise :class:`GenlibError`
    messages.
    """
    text = _strip_comments(text)
    latch = re.search(r"\bLATCH\b", text)
    if latch:
        raise GenlibError(
            "LATCH gates are not supported (combinational subset only, "
            "see docs/FORMATS.md)", filename, _line_of(text, latch.start()))

    cells: List[Cell] = []
    gate_matches = list(_GATE_RE.finditer(text))
    if not gate_matches:
        raise GenlibError("no GATE definitions found", filename)
    _check_unmatched(text, "GATE",
                     [(m.start(), m.end()) for m in gate_matches],
                     "GATE", filename)
    for gi, gm in enumerate(gate_matches):
        body_start = gm.end()
        body_end = (
            gate_matches[gi + 1].start() if gi + 1 < len(gate_matches) else len(text)
        )
        body = text[body_start:body_end]
        pin_records: List[Tuple[str, PinTiming, float]] = []
        pin_matches = list(_PIN_RE.finditer(body))
        _check_unmatched(
            text, "PIN",
            [(body_start + m.start(), body_start + m.end())
             for m in pin_matches],
            f"PIN (in gate {gm.group('name')!r})", filename,
            region=(body_start, body_end))
        for pm in pin_matches:
            timing = PinTiming(
                rise_block=float(pm.group("rb")),
                rise_resistance=float(pm.group("rr")),
                fall_block=float(pm.group("fb")),
                fall_resistance=float(pm.group("fr")),
            )
            pin_records.append((pm.group("pin"), timing, float(pm.group("load"))))
        cells.append(
            _build_cell(
                gm.group("name"),
                float(gm.group("area")),
                gm.group("out"),
                gm.group("expr").strip(),
                pin_records,
                filename,
                _line_of(text, gm.start()),
            )
        )
    return Library(name, cells)


def _build_cell(
    name: str,
    area: float,
    output: str,
    expression: str,
    pin_records: List[Tuple[str, PinTiming, float]],
    filename: Optional[str] = None,
    line: Optional[int] = None,
) -> Cell:
    from repro.network.expr import parse_expression

    variables = parse_expression(expression).variables()
    if not variables:
        raise GenlibError(f"gate {name!r}: constant gates are not supported",
                          filename, line)

    wildcard: Optional[Tuple[PinTiming, float]] = None
    named: Dict[str, Tuple[PinTiming, float]] = {}
    for pin_name, timing, load in pin_records:
        if pin_name == "*":
            wildcard = (timing, load)
        else:
            named[pin_name] = (timing, load)

    unknown = sorted(set(named) - set(variables))
    if unknown:
        raise GenlibError(
            f"gate {name!r}: PIN record(s) for {', '.join(map(repr, unknown))} "
            f"which do not appear in the expression {expression!r}",
            filename, line)

    pins: List[Pin] = []
    for var in variables:
        record = named.get(var, wildcard)
        if record is None:
            raise GenlibError(
                f"gate {name!r}: no PIN record for input {var!r} "
                f"(add a named PIN or a 'PIN *' wildcard)", filename, line)
        timing, load = record
        pins.append(Pin(var, load, timing))
    return Cell(name, area, expression, pins, output_name=output)


def write_genlib(library: Library) -> str:
    """Serialise a library back to genlib text."""
    lines: List[str] = [f"# library {library.name}"]
    for cell in library:
        lines.append(
            f"GATE {cell.name} {cell.area:g} "
            f"{cell.output_name}={cell.expression_text};"
        )
        for pin in cell.pins:
            t = pin.timing
            lines.append(
                f"  PIN {pin.name} UNKNOWN {pin.input_cap:g} 999 "
                f"{t.rise_block:g} {t.rise_resistance:g} "
                f"{t.fall_block:g} {t.fall_resistance:g}"
            )
    return "\n".join(lines) + "\n"
