"""Gate-library substrate: cells with per-pin linear delay models, a genlib
reader, DAGON-style pattern-graph generation, and the built-in MSU-flavoured
``tiny`` (<= 3-input) and ``big`` (<= 6-input) standard-cell libraries used by
the experiments."""

from repro.library.cell import Cell, Library, PinTiming
from repro.library.genlib import parse_genlib, write_genlib
from repro.library.patterns import (
    CellPattern,
    PatternKind,
    PatternNode,
    PatternSet,
    pattern_set_for,
)
from repro.library.standard import big_library, scale_library, tiny_library

__all__ = [
    "Cell",
    "Library",
    "PinTiming",
    "parse_genlib",
    "write_genlib",
    "PatternNode",
    "PatternKind",
    "CellPattern",
    "PatternSet",
    "pattern_set_for",
    "big_library",
    "tiny_library",
    "scale_library",
]
