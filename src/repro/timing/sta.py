"""Static timing analysis over a mapped netlist.

Implements the recursion of Section 4.1 exactly:

    t_y = max_i ( t_i + I_i + R_i * C_L )      (rise/fall tracked separately)

with ``C_L`` the sum of fanout pin capacitances plus the lumped wire
capacitance of the output net (Section 4.2).  The mapped netlist must be
placed (gate positions and pad positions known) for the wire term; without
positions the wire term falls back to zero or a per-fanout constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry import Point
from repro.map.netlist import MappedNetwork, MappedNode
from repro.obs import OBS
from repro.timing.model import WireCapModel, net_wire_capacitance

__all__ = [
    "ArrivalTimes",
    "TimingReport",
    "analyze",
    "critical_path",
    "required_times",
    "slacks",
]


@dataclass(frozen=True)
class ArrivalTimes:
    """Rise/fall arrival at a node output."""

    rise: float
    fall: float

    @property
    def worst(self) -> float:
        return max(self.rise, self.fall)

    @staticmethod
    def at(value: float) -> "ArrivalTimes":
        return ArrivalTimes(value, value)


@dataclass
class TimingReport:
    """Full STA result."""

    arrivals: Dict[str, ArrivalTimes] = field(default_factory=dict)
    loads: Dict[str, float] = field(default_factory=dict)
    critical_po: Optional[str] = None
    critical_delay: float = 0.0

    def slack(self, deadline: float) -> float:
        return deadline - self.critical_delay


def required_times(
    mapped: MappedNetwork,
    report: TimingReport,
    deadline: Optional[float] = None,
) -> Dict[str, float]:
    """Backward pass: latest allowed arrival per node output.

    The required time of a PO is the deadline (default: the critical
    delay, making the critical path zero-slack); an internal node's
    required time is the minimum over its fanouts of their required time
    minus the fanout stage's worst gate delay under the analysed load.
    """
    if deadline is None:
        deadline = report.critical_delay
    required: Dict[str, float] = {}
    for node in reversed(mapped.topological_order()):
        if node.is_po:
            required[node.name] = deadline
            continue
        required[node.name] = _node_required(
            node, required, report.loads, deadline
        )
    return required


def _node_required(
    node: MappedNode,
    required: Dict[str, float],
    loads: Dict[str, float],
    deadline: float,
) -> float:
    """Required time of one node from its fanouts' required times."""
    candidates = []
    for sink in node.fanouts:
        sink_required = required.get(sink.name)
        if sink_required is None:
            continue
        if sink.is_po:
            candidates.append(sink_required)
            continue
        load = loads.get(sink.name, 0.0)
        for pin_index, fanin in enumerate(sink.fanins):
            if fanin is not node:
                continue
            timing = sink.cell.pins[pin_index].timing
            stage = max(
                timing.rise_block + timing.rise_resistance * load,
                timing.fall_block + timing.fall_resistance * load,
            )
            candidates.append(sink_required - stage)
    return min(candidates) if candidates else deadline


def slacks(
    mapped: MappedNetwork,
    report: TimingReport,
    deadline: Optional[float] = None,
) -> Dict[str, float]:
    """Per-node slack = required time - arrival time."""
    required = required_times(mapped, report, deadline)
    return {
        name: required[name] - report.arrivals[name].worst
        for name in required
        if name in report.arrivals
    }


def _node_load(
    node: MappedNode,
    wire_model: Optional[WireCapModel],
    pad_cap: float,
    wire_cap_per_fanout: float,
) -> float:
    """Output load of a node: fanout pin caps + wire capacitance."""
    load = 0.0
    for sink in node.fanouts:
        if sink.is_po:
            load += pad_cap
        elif sink.is_gate:
            for pin_index, fanin in enumerate(sink.fanins):
                if fanin is node:
                    load += sink.cell.pins[pin_index].input_cap
    if wire_model is not None:
        positions: List[Point] = []
        if node.position is not None:
            positions.append(node.position)
        for sink in node.fanouts:
            if sink.position is not None:
                positions.append(sink.position)
        load += net_wire_capacitance(positions, wire_model)
    else:
        load += wire_cap_per_fanout * len(node.fanouts)
    return load


def analyze(
    mapped: MappedNetwork,
    wire_model: Optional[WireCapModel] = None,
    input_arrivals: Optional[Dict[str, float]] = None,
    pad_cap: float = 0.25,
    wire_cap_per_fanout: float = 0.0,
) -> TimingReport:
    """Propagate rise/fall arrival times from PIs to POs.

    Args:
        mapped: the (ideally placed) mapped netlist.
        wire_model: per-unit-length wire capacitance; ``None`` disables the
            positional wire term and uses ``wire_cap_per_fanout`` instead.
        input_arrivals: PI name -> arrival time (default 0).
        pad_cap: load presented by an output pad.
        wire_cap_per_fanout: fallback lumped wire cap per fanout.

    Returns:
        A :class:`TimingReport`; node ``arrival`` attributes are updated
        with the worst-case values as a side effect.
    """
    input_arrivals = input_arrivals or {}
    report = TimingReport()
    order = mapped.topological_order()
    if OBS.enabled:
        OBS.metrics.counter("sta.node_visits").inc(len(order))
    with OBS.span("sta.analyze", nodes=len(order)):
        _propagate(mapped, order, report, wire_model, input_arrivals,
                   pad_cap, wire_cap_per_fanout)
    return report


def _propagate(
    mapped: MappedNetwork,
    order: Sequence[MappedNode],
    report: TimingReport,
    wire_model: Optional[WireCapModel],
    input_arrivals: Dict[str, float],
    pad_cap: float,
    wire_cap_per_fanout: float,
) -> None:
    for node in order:
        if node.is_pi:
            t = input_arrivals.get(node.name, 0.0)
            report.arrivals[node.name] = ArrivalTimes.at(t)
        elif node.is_constant:
            report.arrivals[node.name] = ArrivalTimes.at(0.0)
        elif node.is_po:
            report.arrivals[node.name] = report.arrivals[node.fanins[0].name]
        else:
            load = _node_load(node, wire_model, pad_cap, wire_cap_per_fanout)
            report.loads[node.name] = load
            report.arrivals[node.name] = _node_arrival(
                node, report.arrivals, load
            )
        node.arrival = report.arrivals[node.name].worst

    _select_critical(mapped, report)


def _node_arrival(
    node: MappedNode, arrivals: Dict[str, ArrivalTimes], load: float
) -> ArrivalTimes:
    """Gate output arrival from its fanin arrivals and output load.

    Inverting-style worst case: the output rise is driven by the input
    fall and vice versa; using the conservative max(rise, fall) of the
    input keeps the model simple and monotone, as MIS 2.1 does for
    UNKNOWN-phase pins.
    """
    rise = 0.0
    fall = 0.0
    for pin_index, fanin in enumerate(node.fanins):
        timing = node.cell.pins[pin_index].timing
        t = arrivals[fanin.name].worst
        rise = max(rise, t + timing.rise_block
                   + timing.rise_resistance * load)
        fall = max(fall, t + timing.fall_block
                   + timing.fall_resistance * load)
    return ArrivalTimes(rise, fall)


def _select_critical(mapped: MappedNetwork, report: TimingReport) -> None:
    """(Re-)pick the critical PO; same last-wins ``>=`` scan as always."""
    report.critical_delay = 0.0
    report.critical_po = None
    for po in mapped.primary_outputs:
        t = report.arrivals[po.name].worst
        if t >= report.critical_delay:
            report.critical_delay = t
            report.critical_po = po.name


def critical_path(
    mapped: MappedNetwork, report: TimingReport
) -> List[MappedNode]:
    """Trace the worst path backwards from the critical output."""
    if report.critical_po is None:
        return []
    path: List[MappedNode] = []
    node = mapped[report.critical_po]
    while node is not None:
        path.append(node)
        if node.is_pi or node.is_constant or not node.fanins:
            break
        node = max(
            node.fanins,
            key=lambda f: report.arrivals[f.name].worst,
        )
    path.reverse()
    return path
