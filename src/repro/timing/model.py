"""Wire capacitance model (Section 4.2).

``C_L = sum_j C_j + C_w`` where ``C_w = c_h * X + c_v * Y``: the lumped
interconnect capacitance is proportional to the net's horizontal and
vertical extents, with separate per-unit-length constants for the two
routing layers.  Wiring resistance is "very small and therefore ignored",
exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.geometry import Point, bounding_rect
from repro.route.wirelength import chung_hwang_factor

__all__ = ["WireCapModel", "net_wire_capacitance"]


@dataclass(frozen=True)
class WireCapModel:
    """Per-unit-length capacitance of horizontal and vertical interconnect.

    Defaults approximate a 3µ double-metal process: ~0.2 fF/µm, with the
    vertical layer slightly lighter.  :meth:`scaled` mirrors the paper's
    linear 3µ -> 1µ scaling of wiring capacitance.
    """

    ch_per_um: float = 2.0e-4  # pF / µm, horizontal (in-channel) wiring
    cv_per_um: float = 1.5e-4  # pF / µm, vertical (cross-channel) wiring

    def scaled(self, factor: float) -> "WireCapModel":
        return WireCapModel(self.ch_per_um * factor, self.cv_per_um * factor)

    def capacitance(self, x_length: float, y_length: float) -> float:
        """``C_w = c_h X + c_v Y`` for given extents (µm -> pF)."""
        return self.ch_per_um * x_length + self.cv_per_um * y_length


def net_wire_capacitance(
    pin_positions: Sequence[Point],
    model: Optional[WireCapModel] = None,
    use_steiner_factor: bool = True,
) -> float:
    """Lumped wire capacitance of a net from its pin positions.

    X and Y are the bounding-box extents, optionally corrected by the
    Chung–Hwang factor for multi-pin nets (Section 3.3's models feed
    Section 4.2's capacitance).
    """
    model = model or WireCapModel()
    if len(pin_positions) < 2:
        return 0.0
    box = bounding_rect(pin_positions)
    factor = chung_hwang_factor(len(pin_positions)) if use_steiner_factor else 1.0
    return model.capacitance(box.width * factor, box.height * factor)
