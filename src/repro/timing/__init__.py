"""Static timing analysis with the Section 4 linear delay model:
per-pin intrinsic delay + drive resistance, separate rise/fall, and lumped
wire capacitance proportional to estimated net length."""

from repro.timing.model import WireCapModel, net_wire_capacitance
from repro.timing.sta import (
    ArrivalTimes,
    TimingReport,
    analyze,
    critical_path,
    required_times,
    slacks,
)
from repro.timing.array_sta import ArraySTA, analyze_array
from repro.timing.fanout import FanoutResult, optimize_fanout
from repro.timing.incremental import IncrementalTiming

__all__ = [
    "ArraySTA",
    "analyze_array",
    "IncrementalTiming",
    "WireCapModel",
    "net_wire_capacitance",
    "ArrivalTimes",
    "TimingReport",
    "analyze",
    "critical_path",
    "required_times",
    "slacks",
    "FanoutResult",
    "optimize_fanout",
]
