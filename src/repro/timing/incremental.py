"""Incremental static timing analysis (dirty-node frontier propagation).

:func:`repro.timing.sta.analyze` re-levelizes and re-propagates the whole
netlist after every change; during placement-aware optimisation most
changes are a single gate moving, which perturbs the loads of a handful of
nets and the arrivals of one fanout cone.  :class:`IncrementalTiming`
keeps a live :class:`TimingReport` and, on each :meth:`update`, recomputes
only the dirty frontier:

* a moved gate dirties its own load (its position sits on its output net)
  and the loads of its gate fanins (it sits on each of their output nets);
* a recomputed arrival is propagated to fanouts only when its value
  actually changed (bitwise), so propagation stops at the edge of the
  affected cone;
* required times depend on loads and the deadline, not on arrivals, so
  the backward pass re-runs only for the fanin cone of load-changed gates
  (or fully when the effective deadline changed).

All per-node arithmetic is shared with the full pass
(:func:`~repro.timing.sta._node_arrival`,
:func:`~repro.timing.sta._node_required`, :func:`~repro.timing.sta._node_load`),
in the same operation order, so an updated report is bit-identical to a
fresh ``analyze`` of the current netlist — :meth:`check_against_full`
asserts exactly that and is wired into ``repro.verify``.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set

from repro.geometry import Point
from repro.map.netlist import MappedNetwork, MappedNode
from repro.obs import OBS
from repro.timing.model import WireCapModel
from repro.timing.sta import (
    ArrivalTimes,
    TimingReport,
    _node_arrival,
    _node_load,
    _node_required,
    _select_critical,
    analyze,
)

__all__ = ["IncrementalTiming"]


class IncrementalTiming:
    """A live timing report over a mapped netlist.

    Args:
        mapped: the placed mapped netlist (positions are read live).
        wire_model: as for :func:`~repro.timing.sta.analyze`.
        input_arrivals: PI name -> arrival time (default 0).
        pad_cap: load presented by an output pad.
        wire_cap_per_fanout: fallback lumped wire cap per fanout.
        vec: run the full passes (the constructor's forward sweep and
            any full backward recompute) through the levelized
            :class:`~repro.timing.array_sta.ArraySTA` kernels — bitwise
            the same report (``PerfOptions.vec_sta``).  Frontier updates
            always use the shared per-node helpers.

    The constructor runs one full pass; afterwards
    :meth:`set_position` / :meth:`set_input_arrival` record changes and
    :meth:`update` refreshes :attr:`report` by frontier propagation.
    """

    def __init__(
        self,
        mapped: MappedNetwork,
        wire_model: Optional[WireCapModel] = None,
        input_arrivals: Optional[Dict[str, float]] = None,
        pad_cap: float = 0.25,
        wire_cap_per_fanout: float = 0.0,
        vec: bool = True,
    ) -> None:
        self.mapped = mapped
        self.wire_model = wire_model
        self.input_arrivals = dict(input_arrivals or {})
        self.pad_cap = pad_cap
        self.wire_cap_per_fanout = wire_cap_per_fanout
        if vec:
            from repro.timing.array_sta import ArraySTA

            self._array: Optional["ArraySTA"] = ArraySTA(
                mapped,
                wire_model=wire_model,
                input_arrivals=self.input_arrivals,
                pad_cap=pad_cap,
                wire_cap_per_fanout=wire_cap_per_fanout,
            )
            self.report = self._array.analyze()
        else:
            self._array = None
            self.report = analyze(
                mapped,
                wire_model=wire_model,
                input_arrivals=self.input_arrivals,
                pad_cap=pad_cap,
                wire_cap_per_fanout=wire_cap_per_fanout,
            )
        self._order = mapped.topological_order()
        self._topo = {node.name: i for i, node in enumerate(self._order)}
        self._node = {node.name: node for node in self._order}
        self._dirty: Set[str] = set()
        self._load_dirty: Set[str] = set()
        #: Gates whose load changed since the required times were cached
        #: (drives the backward frontier).
        self._required_stale: Set[str] = set()
        self._required: Optional[Dict[str, float]] = None
        self._required_deadline: Optional[float] = None
        self.updates = 0
        self.nodes_recomputed = 0

    # -- change recording ----------------------------------------------------

    def _mark(self, node: MappedNode, load_too: bool) -> None:
        self._dirty.add(node.name)
        if load_too and node.is_gate:
            self._load_dirty.add(node.name)
            self._required_stale.add(node.name)

    def set_position(self, name: str, position: Optional[Point]) -> None:
        """Move one node; dirties its own and its fanin-drivers' loads."""
        node = self._node[name]
        node.position = position
        self._mark(node, load_too=True)
        for fanin in node.fanins:
            self._mark(fanin, load_too=True)

    def set_input_arrival(self, name: str, arrival: float) -> None:
        """Change a primary input's arrival time."""
        self.input_arrivals[name] = arrival
        self._mark(self._node[name], load_too=False)

    def invalidate(self, name: str) -> None:
        """Force one node (arrival and load) to recompute on next update."""
        self._mark(self._node[name], load_too=True)

    # -- forward frontier ----------------------------------------------------

    def update(self) -> TimingReport:
        """Propagate pending changes; returns the refreshed live report."""
        if not self._dirty:
            return self.report
        self.updates += 1
        report = self.report
        arrivals = report.arrivals
        loads = report.loads
        topo = self._topo
        heap: List[int] = [topo[name] for name in self._dirty]
        queued = set(heap)
        heapq.heapify(heap)
        recomputed = 0
        while heap:
            i = heapq.heappop(heap)
            node = self._order[i]
            name = node.name
            recomputed += 1
            old = arrivals.get(name)
            if node.is_pi:
                new = ArrivalTimes.at(self.input_arrivals.get(name, 0.0))
            elif node.is_constant:
                new = ArrivalTimes.at(0.0)
            elif node.is_po:
                new = arrivals[node.fanins[0].name]
            else:
                if name in self._load_dirty:
                    load = _node_load(
                        node,
                        self.wire_model,
                        self.pad_cap,
                        self.wire_cap_per_fanout,
                    )
                    loads[name] = load
                else:
                    load = loads[name]
                new = _node_arrival(node, arrivals, load)
            if (
                old is None
                or old.rise != new.rise
                or old.fall != new.fall
            ):
                arrivals[name] = new
                node.arrival = new.worst
                for sink in node.fanouts:
                    j = topo.get(sink.name)
                    if j is not None and j not in queued:
                        queued.add(j)
                        heapq.heappush(heap, j)
            elif name in self._load_dirty:
                # Load changed but the arrival did not: nothing to
                # propagate forward (required times are tracked
                # separately via _required_stale).
                node.arrival = new.worst
        self._dirty.clear()
        self._load_dirty.clear()
        self.nodes_recomputed += recomputed
        _select_critical(self.mapped, report)
        if OBS.enabled:
            OBS.metrics.counter("perf.incremental.sta_updates").inc()
            OBS.metrics.counter(
                "perf.incremental.sta_nodes").inc(recomputed)
        return report

    # -- backward frontier ---------------------------------------------------

    def required(self, deadline: Optional[float] = None) -> Dict[str, float]:
        """Required times under ``deadline`` (default: critical delay).

        Recomputes the full backward pass when the effective deadline
        changed (a new deadline touches every PO); otherwise refreshes
        only the fanin cones of the gates whose load changed since the
        last call.
        """
        self.update()
        report = self.report
        effective = (
            deadline if deadline is not None else report.critical_delay
        )
        required = self._required
        if required is None or effective != self._required_deadline:
            if self._array is not None:
                required = self._array.required_from(report.loads, effective)
            else:
                from repro.timing.sta import required_times

                required = required_times(self.mapped, report, effective)
            self._required = required
            self._required_deadline = effective
            self._required_stale.clear()
            return required
        if not self._required_stale:
            return required
        topo = self._topo
        heap: List[int] = []
        queued: Set[int] = set()
        for name in self._required_stale:
            for fanin in self._node[name].fanins:
                j = topo.get(fanin.name)
                if j is not None and j not in queued:
                    queued.add(j)
                    heapq.heappush(heap, -j)
        self._required_stale.clear()
        loads = report.loads
        while heap:
            i = -heapq.heappop(heap)
            node = self._order[i]
            name = node.name
            if node.is_po:
                continue
            new = _node_required(node, required, loads, effective)
            if required.get(name) != new:
                required[name] = new
                for fanin in node.fanins:
                    j = topo.get(fanin.name)
                    if j is not None and j not in queued:
                        queued.add(j)
                        heapq.heappush(heap, -j)
        return required

    # -- cross-check ---------------------------------------------------------

    def check_against_full(self) -> List[str]:
        """Compare the live report against a fresh full pass (bitwise).

        Returns human-readable mismatch descriptions (empty = exact).
        Used by ``repro.verify`` as the incremental engine's audit.
        """
        self.update()
        fresh = analyze(
            self.mapped,
            wire_model=self.wire_model,
            input_arrivals=self.input_arrivals,
            pad_cap=self.pad_cap,
            wire_cap_per_fanout=self.wire_cap_per_fanout,
        )
        problems: List[str] = []
        live = self.report
        for name, want in fresh.arrivals.items():
            got = live.arrivals.get(name)
            if got is None or got.rise != want.rise or got.fall != want.fall:
                problems.append(
                    f"arrival mismatch at {name}: live={got} full={want}"
                )
        for name in live.arrivals:
            if name not in fresh.arrivals:
                problems.append(f"stale arrival entry {name}")
        for name, want in fresh.loads.items():
            got = live.loads.get(name)
            if got != want:
                problems.append(
                    f"load mismatch at {name}: live={got} full={want}"
                )
        for name in live.loads:
            if name not in fresh.loads:
                problems.append(f"stale load entry {name}")
        if live.critical_po != fresh.critical_po:
            problems.append(
                f"critical PO mismatch: live={live.critical_po} "
                f"full={fresh.critical_po}"
            )
        if live.critical_delay != fresh.critical_delay:
            problems.append(
                f"critical delay mismatch: live={live.critical_delay!r} "
                f"full={fresh.critical_delay!r}"
            )
        return problems
