"""Incremental static timing analysis (dirty-node frontier propagation).

:func:`repro.timing.sta.analyze` re-levelizes and re-propagates the whole
netlist after every change; during placement-aware optimisation most
changes are a single gate moving, which perturbs the loads of a handful of
nets and the arrivals of one fanout cone.  :class:`IncrementalTiming`
keeps a live :class:`TimingReport` and, on each :meth:`update`, recomputes
only the dirty frontier:

* a moved gate dirties its own load (its position sits on its output net)
  and the loads of its gate fanins (it sits on each of their output nets);
* a recomputed arrival is propagated to fanouts only when its value
  actually changed (bitwise), so propagation stops at the edge of the
  affected cone;
* required times depend on loads and the deadline, not on arrivals, so
  the backward pass re-runs only for the fanin cone of load-changed gates
  (or fully when the effective deadline changed).

With ``vec`` (``PerfOptions.vec_sta``) the frontier itself runs in array
form: dirty nodes bucket by logic level, and each level's gates evaluate
as one gathered :class:`~repro.timing.array_sta.ArraySTA` pin-table fold
(dirty loads batch the same way over the wire-pin table, the backward
frontier over the required-entry table by backward level).  A fanin
always sits at a strictly lower level than its reader, so every value a
batch consumes is final before the batch runs, and the array expressions
are the exact ones of :class:`~repro.timing.array_sta.ArraySTA` — the
propagation decisions (bitwise value-change gating) and the resulting
report match the per-node path exactly.  Tiny buckets fall back to the
shared per-node helpers (:func:`~repro.timing.sta._node_arrival`,
:func:`~repro.timing.sta._node_required`,
:func:`~repro.timing.sta._node_load`), which compute the same bits, so
either engine's report is bit-identical to a fresh ``analyze`` of the
current netlist — :meth:`check_against_full` asserts exactly that and is
wired into ``repro.verify``.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set

from repro.geometry import Point
from repro.map.netlist import MappedNetwork, MappedNode
from repro.obs import OBS
from repro.timing.model import WireCapModel
from repro.timing.sta import (
    ArrivalTimes,
    TimingReport,
    _node_arrival,
    _node_load,
    _node_required,
    _select_critical,
    analyze,
)

__all__ = ["IncrementalTiming"]

#: Level buckets (and load batches) below this size use the per-node
#: helpers: numpy call overhead beats the interpreter only past a few
#: dozen rows, and both paths produce identical bits.
SMALL_FRONTIER_NODES = 24


class IncrementalTiming:
    """A live timing report over a mapped netlist.

    Args:
        mapped: the placed mapped netlist (positions are read live).
        wire_model: as for :func:`~repro.timing.sta.analyze`.
        input_arrivals: PI name -> arrival time (default 0).
        pad_cap: load presented by an output pad.
        wire_cap_per_fanout: fallback lumped wire cap per fanout.
        vec: run the full passes *and* the frontier updates through the
            levelized :class:`~repro.timing.array_sta.ArraySTA` tables —
            bitwise the same report (``PerfOptions.vec_sta``).  The
            ``vec=False`` engine keeps the original per-node heap walk
            and serves as the reference.

    The constructor runs one full pass; afterwards
    :meth:`set_position` / :meth:`set_input_arrival` record changes and
    :meth:`update` refreshes :attr:`report` by frontier propagation.
    Positions must change through :meth:`set_position` (or
    :meth:`invalidate` after a direct mutation) so the engine knows what
    is dirty; the vectorized engine additionally mirrors coordinates
    into arrays at those points.
    """

    def __init__(
        self,
        mapped: MappedNetwork,
        wire_model: Optional[WireCapModel] = None,
        input_arrivals: Optional[Dict[str, float]] = None,
        pad_cap: float = 0.25,
        wire_cap_per_fanout: float = 0.0,
        vec: bool = True,
    ) -> None:
        self.mapped = mapped
        self.wire_model = wire_model
        self.input_arrivals = dict(input_arrivals or {})
        self.pad_cap = pad_cap
        self.wire_cap_per_fanout = wire_cap_per_fanout
        if vec:
            from repro.timing.array_sta import ArraySTA

            self._array: Optional["ArraySTA"] = ArraySTA(
                mapped,
                wire_model=wire_model,
                input_arrivals=self.input_arrivals,
                pad_cap=pad_cap,
                wire_cap_per_fanout=wire_cap_per_fanout,
            )
            self.report = self._array.analyze()
            self._order = self._array._order
        else:
            self._array = None
            self.report = analyze(
                mapped,
                wire_model=wire_model,
                input_arrivals=self.input_arrivals,
                pad_cap=pad_cap,
                wire_cap_per_fanout=wire_cap_per_fanout,
            )
            self._order = mapped.topological_order()
        self._topo = {node.name: i for i, node in enumerate(self._order)}
        self._node = {node.name: node for node in self._order}
        self._dirty: Set[str] = set()
        self._load_dirty: Set[str] = set()
        #: Gates whose load changed since the required times were cached
        #: (drives the backward frontier).
        self._required_stale: Set[str] = set()
        self._required: Optional[Dict[str, float]] = None
        self._required_deadline: Optional[float] = None
        self.updates = 0
        self.nodes_recomputed = 0
        if vec:
            self._init_vec_frontier()

    # -- array-frontier state ------------------------------------------------

    def _init_vec_frontier(self) -> None:
        """Flatten frontier state next to the :class:`ArraySTA` tables.

        Persistent mirrors (positions, rise/fall/worst arrivals, per-gate
        loads) let a level bucket gather everything it needs with numpy
        indexing; the index lists (kinds, fanout indices, forward and
        backward levels) drive the bucket scheduling without touching
        node objects.
        """
        import numpy as np

        arr = self._array
        order = self._order
        n = len(order)
        idx = self._topo
        self._names = [node.name for node in order]
        # 0 = PI, 1 = constant, 2 = gate, 3 = PO.
        kind = []
        for node in order:
            if node.is_pi:
                kind.append(0)
            elif node.is_constant:
                kind.append(1)
            elif node.is_po:
                kind.append(3)
            else:
                kind.append(2)
        self._kind = kind
        self._fanout_idx = [
            [idx[s.name] for s in node.fanouts] for node in order
        ]
        self._fanin0 = [
            idx[node.fanins[0].name] if node.is_po else -1 for node in order
        ]
        self._po_idx = np.array(
            [idx[po.name] for po in self.mapped.primary_outputs],
            dtype=np.int64,
        )
        # Forward level of *every* node (a PO sits one past its driver);
        # any node's fanins live at strictly lower levels, which is what
        # makes a per-level batch safe to evaluate at once.
        nlevel = [0] * n
        for i, node in enumerate(order):
            if node.fanins:
                nlevel[i] = 1 + max(nlevel[idx[f.name]] for f in node.fanins)
        self._nlevel = nlevel
        blevel = [0] * n
        for i in range(n - 1, -1, -1):
            fouts = order[i].fanouts
            if fouts:
                blevel[i] = 1 + max(blevel[idx[s.name]] for s in fouts)
        self._blevel = blevel
        self._bpos = {int(i): r for r, i in enumerate(arr._bnodes.tolist())}
        # Coordinate mirrors, kept in sync by set_position/invalidate.
        px = np.zeros(n, dtype=np.float64)
        py = np.zeros(n, dtype=np.float64)
        placed = np.zeros(n, dtype=bool)
        for i, node in enumerate(order):
            pos = node.position
            if pos is not None:
                px[i] = pos.x
                py[i] = pos.y
                placed[i] = True
        self._px = px
        self._py = py
        self._placed = placed
        # Arrival and load mirrors seeded from the constructor's full pass.
        arrivals = self.report.arrivals
        rise = np.empty(n, dtype=np.float64)
        fall = np.empty(n, dtype=np.float64)
        worst = np.empty(n, dtype=np.float64)
        for i, node in enumerate(order):
            a = arrivals[node.name]
            rise[i] = a.rise
            fall[i] = a.fall
            worst[i] = a.worst
        self._rise = rise
        self._fall = fall
        self._worst = worst
        loads = self.report.loads
        gloads = np.empty(len(arr._gate_list), dtype=np.float64)
        for j, gi in enumerate(arr._gate_list):
            gloads[j] = loads[order[gi].name]
        self._gloads = gloads
        self._req_arr = None

    def _sync_position(self, name: str) -> None:
        """Refresh one node's coordinate mirror from its live position."""
        i = self._topo[name]
        pos = self._node[name].position
        if pos is None:
            self._placed[i] = False
        else:
            self._px[i] = pos.x
            self._py[i] = pos.y
            self._placed[i] = True

    # -- change recording ----------------------------------------------------

    def _mark(self, node: MappedNode, load_too: bool) -> None:
        self._dirty.add(node.name)
        if load_too and node.is_gate:
            self._load_dirty.add(node.name)
            self._required_stale.add(node.name)

    def set_position(self, name: str, position: Optional[Point]) -> None:
        """Move one node; dirties its own and its fanin-drivers' loads."""
        node = self._node[name]
        node.position = position
        if self._array is not None:
            self._sync_position(name)
        self._mark(node, load_too=True)
        for fanin in node.fanins:
            self._mark(fanin, load_too=True)

    def set_input_arrival(self, name: str, arrival: float) -> None:
        """Change a primary input's arrival time."""
        self.input_arrivals[name] = arrival
        self._mark(self._node[name], load_too=False)

    def invalidate(self, name: str) -> None:
        """Force one node (arrival and load) to recompute on next update."""
        if self._array is not None:
            self._sync_position(name)
        self._mark(self._node[name], load_too=True)

    # -- forward frontier ----------------------------------------------------

    def update(self) -> TimingReport:
        """Propagate pending changes; returns the refreshed live report."""
        if not self._dirty:
            return self.report
        if self._array is not None:
            return self._update_vec()
        return self._update_naive()

    def _update_naive(self) -> TimingReport:
        """The reference per-node heap walk (``vec=False``)."""
        self.updates += 1
        report = self.report
        arrivals = report.arrivals
        loads = report.loads
        topo = self._topo
        heap: List[int] = [topo[name] for name in self._dirty]
        queued = set(heap)
        heapq.heapify(heap)
        recomputed = 0
        while heap:
            i = heapq.heappop(heap)
            node = self._order[i]
            name = node.name
            recomputed += 1
            old = arrivals.get(name)
            if node.is_pi:
                new = ArrivalTimes.at(self.input_arrivals.get(name, 0.0))
            elif node.is_constant:
                new = ArrivalTimes.at(0.0)
            elif node.is_po:
                new = arrivals[node.fanins[0].name]
            else:
                if name in self._load_dirty:
                    load = _node_load(
                        node,
                        self.wire_model,
                        self.pad_cap,
                        self.wire_cap_per_fanout,
                    )
                    loads[name] = load
                else:
                    load = loads[name]
                new = _node_arrival(node, arrivals, load)
            if (
                old is None
                or old.rise != new.rise
                or old.fall != new.fall
            ):
                arrivals[name] = new
                node.arrival = new.worst
                for sink in node.fanouts:
                    j = topo.get(sink.name)
                    if j is not None and j not in queued:
                        queued.add(j)
                        heapq.heappush(heap, j)
            elif name in self._load_dirty:
                # Load changed but the arrival did not: nothing to
                # propagate forward (required times are tracked
                # separately via _required_stale).
                node.arrival = new.worst
        self._dirty.clear()
        self._load_dirty.clear()
        self.nodes_recomputed += recomputed
        _select_critical(self.mapped, report)
        if OBS.enabled:
            OBS.metrics.counter("perf.incremental.sta_updates").inc()
            OBS.metrics.counter(
                "perf.incremental.sta_nodes").inc(recomputed)
        return report

    def _loads_for_rows(self, rows) -> "list":
        """Recompute the loads of the given gate rows (ascending,
        gate-sorted positions), mirroring
        :meth:`~repro.timing.array_sta.ArraySTA._compute_loads` — and so
        :func:`~repro.timing.sta._node_load` — expression for expression.
        """
        import numpy as np

        arr = self._array
        static = arr._static_load
        if self.wire_model is None:
            return (
                static[rows] + self.wire_cap_per_fanout * arr._nfan[rows]
            ).tolist()
        from repro.perf.vec import concat_ranges

        pidx, offs = concat_ranges(arr._woff[rows], arr._woff[rows + 1])
        wid = arr._wpin[pidx]
        pl = self._placed[wid]
        starts = offs[:-1]  # every wire net holds >= 1 pin (its driver)
        counts = np.add.reduceat(pl.astype(np.int64), starts)
        xs = self._px[wid]
        ys = self._py[wid]
        lx = np.minimum.reduceat(np.where(pl, xs, np.inf), starts)
        ux = np.maximum.reduceat(np.where(pl, xs, -np.inf), starts)
        ly = np.minimum.reduceat(np.where(pl, ys, np.inf), starts)
        uy = np.maximum.reduceat(np.where(pl, ys, -np.inf), starts)
        valid = counts >= 2
        lx = np.where(valid, lx, 0.0)
        ux = np.where(valid, ux, 0.0)
        ly = np.where(valid, ly, 0.0)
        uy = np.where(valid, uy, 0.0)
        factor = np.where(
            counts <= 3,
            1.0,
            (np.sqrt(counts.astype(np.float64)) + 1.0) / 2.0,
        )
        model = self.wire_model
        wire = np.where(
            valid,
            model.ch_per_um * ((ux - lx) * factor)
            + model.cv_per_um * ((uy - ly) * factor),
            0.0,
        )
        return (static[rows] + wire).tolist()

    def _update_vec(self) -> TimingReport:
        """Level-batched frontier propagation over the ArraySTA tables."""
        import numpy as np

        from repro.perf.vec import concat_ranges, segment_max

        self.updates += 1
        report = self.report
        arrivals = report.arrivals
        loads = report.loads
        arr = self._array
        order = self._order
        names = self._names
        topo = self._topo
        kind = self._kind
        nlevel = self._nlevel
        fanout_idx = self._fanout_idx
        load_dirty = self._load_dirty
        # Dirty loads first: any gate reads only its *own* load, so the
        # whole batch can refresh before any arrival is evaluated.
        if load_dirty:
            gate_pos = arr._gate_pos
            rows = sorted(gate_pos[topo[name]] for name in load_dirty)
            if len(rows) < SMALL_FRONTIER_NODES:
                new_loads = [
                    _node_load(
                        order[arr._gate_list[r]],
                        self.wire_model,
                        self.pad_cap,
                        self.wire_cap_per_fanout,
                    )
                    for r in rows
                ]
            else:
                new_loads = self._loads_for_rows(
                    np.array(rows, dtype=np.int64))
            for r, value in zip(rows, new_loads):
                self._gloads[r] = value
                loads[names[arr._gate_list[r]]] = value
        # Bucket the dirty set by forward level; propagation only ever
        # inserts into strictly higher levels.
        buckets: Dict[int, List[int]] = {}
        queued: Set[int] = set()
        for name in self._dirty:
            i = topo[name]
            if i not in queued:
                queued.add(i)
                buckets.setdefault(nlevel[i], []).append(i)
        recomputed = 0
        while buckets:
            ids = sorted(buckets.pop(min(buckets)))
            recomputed += len(ids)
            results: List = []  # (node index, rise, fall)
            gate_ids: List[int] = []
            for i in ids:
                k = kind[i]
                if k == 2:
                    gate_ids.append(i)
                elif k == 0:
                    t = self.input_arrivals.get(names[i], 0.0)
                    results.append((i, t, t))
                elif k == 1:
                    results.append((i, 0.0, 0.0))
                else:
                    j = self._fanin0[i]
                    results.append(
                        (i, float(self._rise[j]), float(self._fall[j])))
            if gate_ids:
                if len(gate_ids) < SMALL_FRONTIER_NODES:
                    for i in gate_ids:
                        new = _node_arrival(
                            order[i], arrivals, loads[names[i]])
                        results.append((i, new.rise, new.fall))
                else:
                    rows = np.array(
                        [arr._gate_pos[i] for i in gate_ids], dtype=np.int64)
                    pidx, offs = concat_ranges(
                        arr._pin_off[rows], arr._pin_off[rows + 1])
                    t = self._worst[arr._pin_src[pidx]]
                    ld = np.repeat(
                        self._gloads[rows], arr._pin_counts[rows])
                    r = np.maximum(
                        segment_max(
                            (t + arr._pin_rb[pidx])
                            + arr._pin_rr[pidx] * ld, offs),
                        0.0,
                    )
                    f = np.maximum(
                        segment_max(
                            (t + arr._pin_fb[pidx])
                            + arr._pin_fr[pidx] * ld, offs),
                        0.0,
                    )
                    results.extend(zip(gate_ids, r.tolist(), f.tolist()))
            for i, rv, fv in results:
                name = names[i]
                old = arrivals.get(name)
                if old is None or old.rise != rv or old.fall != fv:
                    arrivals[name] = ArrivalTimes(rv, fv)
                    w = rv if rv >= fv else fv
                    order[i].arrival = w
                    self._rise[i] = rv
                    self._fall[i] = fv
                    self._worst[i] = w
                    for j in fanout_idx[i]:
                        if j not in queued:
                            queued.add(j)
                            buckets.setdefault(nlevel[j], []).append(j)
                elif name in load_dirty:
                    order[i].arrival = old.worst
        self._dirty.clear()
        self._load_dirty.clear()
        self.nodes_recomputed += recomputed
        # Same winner as _select_critical's last-wins ">=" scan, read
        # from the worst-arrival mirror: the critical PO is the *last*
        # one whose worst equals the maximum (every later tie re-wins).
        po_idx = self._po_idx
        report.critical_delay = 0.0
        report.critical_po = None
        if len(po_idx):
            w = self._worst[po_idx]
            m = float(w.max())
            if m >= 0.0:
                report.critical_delay = m
                report.critical_po = names[
                    int(po_idx[np.flatnonzero(w == m)[-1]])]
        if OBS.enabled:
            OBS.metrics.counter("perf.incremental.sta_updates").inc()
            OBS.metrics.counter(
                "perf.incremental.sta_nodes").inc(recomputed)
        return report

    # -- backward frontier ---------------------------------------------------

    def required(self, deadline: Optional[float] = None) -> Dict[str, float]:
        """Required times under ``deadline`` (default: critical delay).

        Recomputes the full backward pass when the effective deadline
        changed (a new deadline touches every PO); otherwise refreshes
        only the fanin cones of the gates whose load changed since the
        last call — batched by backward level over the ArraySTA
        required-entry table when vectorized.
        """
        self.update()
        report = self.report
        effective = (
            deadline if deadline is not None else report.critical_delay
        )
        required = self._required
        if required is None or effective != self._required_deadline:
            if self._array is not None:
                import numpy as np

                required = self._array.required_from(report.loads, effective)
                req_arr = np.empty(len(self._order), dtype=np.float64)
                for i, name in enumerate(self._names):
                    req_arr[i] = required[name]
                self._req_arr = req_arr
            else:
                from repro.timing.sta import required_times

                required = required_times(self.mapped, report, effective)
            self._required = required
            self._required_deadline = effective
            self._required_stale.clear()
            return required
        if not self._required_stale:
            return required
        if self._array is not None:
            return self._required_frontier_vec(required, effective)
        topo = self._topo
        heap: List[int] = []
        queued: Set[int] = set()
        for name in self._required_stale:
            for fanin in self._node[name].fanins:
                j = topo.get(fanin.name)
                if j is not None and j not in queued:
                    queued.add(j)
                    heapq.heappush(heap, -j)
        self._required_stale.clear()
        loads = report.loads
        while heap:
            i = -heapq.heappop(heap)
            node = self._order[i]
            name = node.name
            if node.is_po:
                continue
            new = _node_required(node, required, loads, effective)
            if required.get(name) != new:
                required[name] = new
                for fanin in node.fanins:
                    j = topo.get(fanin.name)
                    if j is not None and j not in queued:
                        queued.add(j)
                        heapq.heappush(heap, -j)
        return required

    def _required_frontier_vec(
        self, required: Dict[str, float], effective: float
    ) -> Dict[str, float]:
        """Backward frontier batched by backward level.

        A node's required time reads only its fanouts' — all at strictly
        lower backward levels — so buckets evaluate whole levels as one
        gathered fold over the ArraySTA required-entry rows, with the
        same value-change gating as the per-node walk.  POs never enter:
        seeds and propagation both follow fanin edges.
        """
        import numpy as np

        from repro.perf.vec import concat_ranges, segment_min

        arr = self._array
        order = self._order
        names = self._names
        topo = self._topo
        blevel = self._blevel
        req_arr = self._req_arr
        loads = self.report.loads
        buckets: Dict[int, List[int]] = {}
        queued: Set[int] = set()
        for name in self._required_stale:
            for fanin in self._node[name].fanins:
                j = topo.get(fanin.name)
                if j is not None and j not in queued:
                    queued.add(j)
                    buckets.setdefault(blevel[j], []).append(j)
        self._required_stale.clear()
        la = np.append(self._gloads, 0.0)  # pad slot reads 0.0
        while buckets:
            ids = sorted(buckets.pop(min(buckets)))
            if len(ids) < SMALL_FRONTIER_NODES:
                news = [
                    _node_required(order[i], required, loads, effective)
                    for i in ids
                ]
            else:
                rows = np.array(
                    [self._bpos[i] for i in ids], dtype=np.int64)
                pidx, offs = concat_ranges(
                    arr._ent_off[rows], arr._ent_off[rows + 1])
                ld = la[arr._ent_load[pidx]]
                stage = np.maximum(
                    arr._ent_rb[pidx] + arr._ent_rr[pidx] * ld,
                    arr._ent_fb[pidx] + arr._ent_fr[pidx] * ld,
                )
                cand = req_arr[arr._ent_sink[pidx]] - stage
                mn = segment_min(cand, offs)
                counts = offs[1:] - offs[:-1]
                news = np.where(counts > 0, mn, effective).tolist()
            for i, new in zip(ids, news):
                name = names[i]
                if required.get(name) != new:
                    required[name] = new
                    req_arr[i] = new
                    for fanin in order[i].fanins:
                        j = topo.get(fanin.name)
                        if j is not None and j not in queued:
                            queued.add(j)
                            buckets.setdefault(blevel[j], []).append(j)
        return required

    # -- cross-check ---------------------------------------------------------

    def check_against_full(self) -> List[str]:
        """Compare the live report against a fresh full pass (bitwise).

        Returns human-readable mismatch descriptions (empty = exact).
        Used by ``repro.verify`` as the incremental engine's audit.
        """
        self.update()
        fresh = analyze(
            self.mapped,
            wire_model=self.wire_model,
            input_arrivals=self.input_arrivals,
            pad_cap=self.pad_cap,
            wire_cap_per_fanout=self.wire_cap_per_fanout,
        )
        problems: List[str] = []
        live = self.report
        for name, want in fresh.arrivals.items():
            got = live.arrivals.get(name)
            if got is None or got.rise != want.rise or got.fall != want.fall:
                problems.append(
                    f"arrival mismatch at {name}: live={got} full={want}"
                )
        for name in live.arrivals:
            if name not in fresh.arrivals:
                problems.append(f"stale arrival entry {name}")
        for name, want in fresh.loads.items():
            got = live.loads.get(name)
            if got != want:
                problems.append(
                    f"load mismatch at {name}: live={got} full={want}"
                )
        for name in live.loads:
            if name not in fresh.loads:
                problems.append(f"stale load entry {name}")
        if live.critical_po != fresh.critical_po:
            problems.append(
                f"critical PO mismatch: live={live.critical_po} "
                f"full={fresh.critical_po}"
            )
        if live.critical_delay != fresh.critical_delay:
            problems.append(
                f"critical delay mismatch: live={live.critical_delay!r} "
                f"full={fresh.critical_delay!r}"
            )
        return problems
