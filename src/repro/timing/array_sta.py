"""Levelized struct-of-arrays static timing analysis.

:func:`repro.timing.sta.analyze` recurses per node over Python objects;
at the scales of ``benchmarks/scaling.py`` the interpreter loop is the
wall.  :class:`ArraySTA` flattens the mapped netlist once into numpy
tables — per-gate pin timing rows, static sink-capacitance streams,
wire-net pin id lists and backward required-time entries — and then
answers full forward (:meth:`analyze`) and backward
(:meth:`required_from`) sweeps as a handful of array operations per
logic level.

Exactness (see ``docs/SCALING.md``): every array expression mirrors the
naive engine's operation order — static sink caps sum strictly left to
right via :func:`repro.perf.vec.segment_sum_ordered` with the wire term
added last, arrival candidates evaluate as ``(t + block) + res * load``,
and the per-node max/min folds are order-independent — so the resulting
:class:`~repro.timing.sta.TimingReport` and required-time maps are
bitwise-equal to :func:`~repro.timing.sta.analyze` and
:func:`~repro.timing.sta.required_times`.  :class:`IncrementalTiming`
uses these sweeps for its full recomputes and batches its dirty
frontiers level by level over the same pin/entry tables (falling back
to the shared per-node helpers only for tiny buckets).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.map.netlist import MappedNetwork
from repro.obs import OBS
from repro.perf.vec import segment_max, segment_min, segment_sum_ordered
from repro.timing.model import WireCapModel
from repro.timing.sta import ArrivalTimes, TimingReport, _select_critical

__all__ = ["ArraySTA", "analyze_array"]


def _group_slices(keys: List[int]) -> List[Tuple[int, int]]:
    """Contiguous ``[start, end)`` runs of equal values in a sorted list."""
    slices: List[Tuple[int, int]] = []
    start = 0
    for i in range(1, len(keys) + 1):
        if i == len(keys) or keys[i] != keys[start]:
            slices.append((start, i))
            start = i
    return slices


class ArraySTA:
    """Array-form STA over a fixed-topology mapped netlist.

    The constructor flattens topology-dependent state (levels, pin
    timing rows, static capacitance streams, backward entries) once;
    :meth:`analyze` re-reads only the things that legitimately change
    between calls — node positions and primary-input arrivals.  Gate
    moves therefore need no rebuild; netlist surgery does.

    Args:
        mapped: the mapped netlist (positions are read live per call).
        wire_model: as for :func:`~repro.timing.sta.analyze`.
        input_arrivals: PI name -> arrival time, read live per call.
        pad_cap: load presented by an output pad.
        wire_cap_per_fanout: fallback lumped wire cap per fanout.
    """

    def __init__(
        self,
        mapped: MappedNetwork,
        wire_model: Optional[WireCapModel] = None,
        input_arrivals: Optional[Dict[str, float]] = None,
        pad_cap: float = 0.25,
        wire_cap_per_fanout: float = 0.0,
    ) -> None:
        self.mapped = mapped
        self.wire_model = wire_model
        self.input_arrivals = input_arrivals if input_arrivals is not None else {}
        self.pad_cap = pad_cap
        self.wire_cap_per_fanout = wire_cap_per_fanout
        self._build()

    # -- one-time flattening ----------------------------------------------

    def _build(self) -> None:
        order = self.mapped.topological_order()
        self._order = order
        n = len(order)
        idx = {node.name: i for i, node in enumerate(order)}

        # Forward logic levels: a gate sits one past its deepest fanin.
        level = [0] * n
        for i, node in enumerate(order):
            if node.is_gate and node.fanins:
                level[i] = 1 + max(level[idx[f.name]] for f in node.fanins)

        gates = [i for i in range(n) if order[i].is_gate]
        gates.sort(key=lambda i: level[i])  # stable: topo order within level
        self._gate_ids = np.array(gates, dtype=np.int64)
        self._gate_list = gates
        self._gate_pos = {gi: j for j, gi in enumerate(gates)}
        self._level_slices = _group_slices([level[i] for i in gates])

        # Pin timing rows (gate-major in level order, pin-minor within).
        pin_src: List[int] = []
        pin_rb: List[float] = []
        pin_rr: List[float] = []
        pin_fb: List[float] = []
        pin_fr: List[float] = []
        pin_off: List[int] = [0]
        # Static output load stream: naive _node_load order is fanout-major
        # (PO -> pad_cap, gate -> matching input pins ascending), wire last.
        cap_vals: List[float] = []
        cap_off: List[int] = [0]
        # Wire net pins: the driver itself plus every fanout.
        wpin: List[int] = []
        woff: List[int] = [0]
        for i in gates:
            node = order[i]
            for pin_index, fanin in enumerate(node.fanins):
                timing = node.cell.pins[pin_index].timing
                pin_src.append(idx[fanin.name])
                pin_rb.append(timing.rise_block)
                pin_rr.append(timing.rise_resistance)
                pin_fb.append(timing.fall_block)
                pin_fr.append(timing.fall_resistance)
            pin_off.append(len(pin_src))
            for sink in node.fanouts:
                if sink.is_po:
                    cap_vals.append(self.pad_cap)
                elif sink.is_gate:
                    for pin_index, fanin in enumerate(sink.fanins):
                        if fanin is node:
                            cap_vals.append(sink.cell.pins[pin_index].input_cap)
            cap_off.append(len(cap_vals))
            wpin.append(i)
            wpin.extend(idx[s.name] for s in node.fanouts)
            woff.append(len(wpin))
        self._pin_src = np.array(pin_src, dtype=np.int64)
        self._pin_rb = np.array(pin_rb, dtype=np.float64)
        self._pin_rr = np.array(pin_rr, dtype=np.float64)
        self._pin_fb = np.array(pin_fb, dtype=np.float64)
        self._pin_fr = np.array(pin_fr, dtype=np.float64)
        self._pin_off = np.array(pin_off, dtype=np.int64)
        self._pin_counts = np.diff(self._pin_off)
        self._static_load = segment_sum_ordered(
            np.array(cap_vals, dtype=np.float64),
            np.array(cap_off, dtype=np.int64),
        )
        self._nfan = np.array(
            [float(len(order[i].fanouts)) for i in gates], dtype=np.float64
        )
        self._wpin = np.array(wpin, dtype=np.int64)
        self._woff = np.array(woff, dtype=np.int64)

        self._pi_ids = [i for i in range(n) if order[i].is_pi]
        self._po_ids = np.array(
            [i for i in range(n) if order[i].is_po], dtype=np.int64
        )
        self._po_drv = np.array(
            [idx[order[i].fanins[0].name] for i in self._po_ids],
            dtype=np.int64,
        )

        # Backward levels: a node is one past its deepest fanout.
        blevel = [0] * n
        for i in range(n - 1, -1, -1):
            fouts = order[i].fanouts
            if fouts:
                blevel[i] = 1 + max(blevel[idx[s.name]] for s in fouts)
        non_po = [i for i in range(n) if not order[i].is_po]
        non_po.sort(key=lambda i: blevel[i])
        self._bnodes = np.array(non_po, dtype=np.int64)
        self._blevel_slices = _group_slices([blevel[i] for i in non_po])

        # Required-time entries, fanout-major / pin-minor, one row per
        # candidate.  A PO sink contributes a zero-coefficient row whose
        # load reads the pad slot (index G, always 0.0): the candidate is
        # then ``required - 0.0``, bitwise-equal to the naive shortcut.
        gate_pos = self._gate_pos
        pad_slot = len(gates)
        ent_sink: List[int] = []
        ent_load: List[int] = []
        ent_rb: List[float] = []
        ent_rr: List[float] = []
        ent_fb: List[float] = []
        ent_fr: List[float] = []
        ent_off: List[int] = [0]
        for i in non_po:
            node = order[i]
            for sink in node.fanouts:
                si = idx[sink.name]
                if sink.is_po:
                    ent_sink.append(si)
                    ent_load.append(pad_slot)
                    ent_rb.append(0.0)
                    ent_rr.append(0.0)
                    ent_fb.append(0.0)
                    ent_fr.append(0.0)
                    continue
                ls = gate_pos.get(si, pad_slot)
                for pin_index, fanin in enumerate(sink.fanins):
                    if fanin is not node:
                        continue
                    timing = sink.cell.pins[pin_index].timing
                    ent_sink.append(si)
                    ent_load.append(ls)
                    ent_rb.append(timing.rise_block)
                    ent_rr.append(timing.rise_resistance)
                    ent_fb.append(timing.fall_block)
                    ent_fr.append(timing.fall_resistance)
            ent_off.append(len(ent_sink))
        self._ent_sink = np.array(ent_sink, dtype=np.int64)
        self._ent_load = np.array(ent_load, dtype=np.int64)
        self._ent_rb = np.array(ent_rb, dtype=np.float64)
        self._ent_rr = np.array(ent_rr, dtype=np.float64)
        self._ent_fb = np.array(ent_fb, dtype=np.float64)
        self._ent_fr = np.array(ent_fr, dtype=np.float64)
        self._ent_off = np.array(ent_off, dtype=np.int64)

    # -- loads -------------------------------------------------------------

    def _compute_loads(self) -> np.ndarray:
        """Per-gate output loads (gate-sorted order), wire term last."""
        static = self._static_load
        if self.wire_model is None:
            return static + self.wire_cap_per_fanout * self._nfan
        if not self._gate_list:
            return static
        order = self._order
        n = len(order)
        px = np.empty(n, dtype=np.float64)
        py = np.empty(n, dtype=np.float64)
        placed = np.zeros(n, dtype=bool)
        i = 0
        for node in order:
            pos = node.position
            if pos is not None:
                px[i] = pos.x
                py[i] = pos.y
                placed[i] = True
            i += 1
        wid = self._wpin
        starts = self._woff[:-1]
        pl = placed[wid]
        counts = np.add.reduceat(pl.astype(np.int64), starts)
        xs = px[wid]
        ys = py[wid]
        lx = np.minimum.reduceat(np.where(pl, xs, np.inf), starts)
        ux = np.maximum.reduceat(np.where(pl, xs, -np.inf), starts)
        ly = np.minimum.reduceat(np.where(pl, ys, np.inf), starts)
        uy = np.maximum.reduceat(np.where(pl, ys, -np.inf), starts)
        valid = counts >= 2
        lx = np.where(valid, lx, 0.0)
        ux = np.where(valid, ux, 0.0)
        ly = np.where(valid, ly, 0.0)
        uy = np.where(valid, uy, 0.0)
        factor = np.where(
            counts <= 3,
            1.0,
            (np.sqrt(counts.astype(np.float64)) + 1.0) / 2.0,
        )
        model = self.wire_model
        wire = np.where(
            valid,
            model.ch_per_um * ((ux - lx) * factor)
            + model.cv_per_um * ((uy - ly) * factor),
            0.0,
        )
        return static + wire

    # -- forward sweep -----------------------------------------------------

    def analyze(self) -> TimingReport:
        """Full forward pass; bitwise-equal to :func:`~repro.timing.sta.analyze`.

        Node ``arrival`` attributes are updated as a side effect, exactly
        as the naive pass does.
        """
        order = self._order
        n = len(order)
        with OBS.span("sta.analyze_array", nodes=n):
            rise = np.zeros(n, dtype=np.float64)
            fall = np.zeros(n, dtype=np.float64)
            worst = np.zeros(n, dtype=np.float64)
            ia = self.input_arrivals
            for i in self._pi_ids:
                t = ia.get(order[i].name, 0.0)
                rise[i] = t
                fall[i] = t
                worst[i] = t
            loads = self._compute_loads()
            gid_all = self._gate_ids
            pin_off = self._pin_off
            for gs, ge in self._level_slices:
                gid = gid_all[gs:ge]
                p0 = pin_off[gs]
                p1 = pin_off[ge]
                offs = pin_off[gs:ge + 1] - p0
                t = worst[self._pin_src[p0:p1]]
                ld = np.repeat(loads[gs:ge], self._pin_counts[gs:ge])
                r = np.maximum(
                    segment_max((t + self._pin_rb[p0:p1])
                                + self._pin_rr[p0:p1] * ld, offs),
                    0.0,
                )
                f = np.maximum(
                    segment_max((t + self._pin_fb[p0:p1])
                                + self._pin_fr[p0:p1] * ld, offs),
                    0.0,
                )
                rise[gid] = r
                fall[gid] = f
                worst[gid] = np.maximum(r, f)
            if len(self._po_ids):
                rise[self._po_ids] = rise[self._po_drv]
                fall[self._po_ids] = fall[self._po_drv]
                worst[self._po_ids] = worst[self._po_drv]

            report = TimingReport()
            arrivals = report.arrivals
            rise_l = rise.tolist()
            fall_l = fall.tolist()
            worst_l = worst.tolist()
            for i, node in enumerate(order):
                arrivals[node.name] = ArrivalTimes(rise_l[i], fall_l[i])
                node.arrival = worst_l[i]
            load_l = loads.tolist()
            gate_pos = self._gate_pos
            report_loads = report.loads
            for i, node in enumerate(order):
                if node.is_gate:
                    report_loads[node.name] = load_l[gate_pos[i]]
            _select_critical(self.mapped, report)
        if OBS.enabled:
            OBS.metrics.counter("perf.vec.sta_full").inc()
            OBS.metrics.counter("sta.node_visits").inc(n)
        return report

    # -- backward sweep ----------------------------------------------------

    def required_from(
        self, loads: Dict[str, float], deadline: float
    ) -> Dict[str, float]:
        """Backward pass from a live loads map under ``deadline``.

        Bitwise-equal to :func:`~repro.timing.sta.required_times` run
        against a report holding the same loads: candidates evaluate as
        ``required[sink] - max(rb + rr*load, fb + fr*load)`` and fold
        through an order-independent min; empty candidate sets (and every
        PO) take the deadline.
        """
        order = self._order
        n = len(order)
        ngates = len(self._gate_list)
        la = np.empty(ngates + 1, dtype=np.float64)
        for j, gi in enumerate(self._gate_list):
            la[j] = loads.get(order[gi].name, 0.0)
        la[ngates] = 0.0
        req = np.full(n, deadline, dtype=np.float64)
        ent_off = self._ent_off
        bnodes = self._bnodes
        for ns, ne in self._blevel_slices:
            nid = bnodes[ns:ne]
            e0 = ent_off[ns]
            e1 = ent_off[ne]
            offs = ent_off[ns:ne + 1] - e0
            ld = la[self._ent_load[e0:e1]]
            stage = np.maximum(
                self._ent_rb[e0:e1] + self._ent_rr[e0:e1] * ld,
                self._ent_fb[e0:e1] + self._ent_fr[e0:e1] * ld,
            )
            cand = req[self._ent_sink[e0:e1]] - stage
            mn = segment_min(cand, offs)
            counts = offs[1:] - offs[:-1]
            req[nid] = np.where(counts > 0, mn, deadline)
        if OBS.enabled:
            OBS.metrics.counter("perf.vec.sta_required").inc()
        req_l = req.tolist()
        required: Dict[str, float] = {}
        for i in range(n - 1, -1, -1):
            required[order[i].name] = req_l[i]
        return required

    def required(
        self, report: TimingReport, deadline: Optional[float] = None
    ) -> Dict[str, float]:
        """Required times against an analysed report (default deadline:
        the critical delay, making the critical path zero-slack)."""
        if deadline is None:
            deadline = report.critical_delay
        return self.required_from(report.loads, deadline)


def analyze_array(
    mapped: MappedNetwork,
    wire_model: Optional[WireCapModel] = None,
    input_arrivals: Optional[Dict[str, float]] = None,
    pad_cap: float = 0.25,
    wire_cap_per_fanout: float = 0.0,
) -> TimingReport:
    """One-shot array-form STA (build + forward sweep).

    Drop-in for :func:`~repro.timing.sta.analyze` with a bitwise-equal
    report.  Repeated analyses over a fixed topology should hold an
    :class:`ArraySTA` instead and amortise the flattening.
    """
    return ArraySTA(
        mapped,
        wire_model=wire_model,
        input_arrivals=input_arrivals,
        pad_cap=pad_cap,
        wire_cap_per_fanout=wire_cap_per_fanout,
    ).analyze()
