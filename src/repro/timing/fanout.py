"""Post-mapping fanout optimization (the Section 5 future-work item).

"Currently, Lily does not perform fanout optimization ... we could perform
a postprocessing pass to derive fanout trees."  This module implements
that pass: nets whose fanout exceeds a threshold get a placement-aware
buffer tree — sinks are clustered geometrically (recursive median
bisection), one buffer per cluster placed at the cluster's centre of mass,
recursively until every net is within the fanout bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry import Point, center_of_mass
from repro.library.cell import Cell, Library
from repro.map.netlist import MappedNetwork, MappedNode
from repro.timing.model import WireCapModel
from repro.timing.sta import analyze

__all__ = ["FanoutResult", "optimize_fanout", "buffer_cell"]


@dataclass
class FanoutResult:
    """Outcome of the fanout-optimization pass."""

    buffers_added: int = 0
    nets_buffered: int = 0
    delay_before: float = 0.0
    delay_after: float = 0.0
    reverted: bool = False

    @property
    def improved(self) -> bool:
        return self.delay_after < self.delay_before


def buffer_cell(library: Library) -> Cell:
    """The library's buffer (smallest non-inverting 1-input cell)."""
    buffers = [c for c in library if c.is_buffer]
    if not buffers:
        raise ValueError(f"library {library.name!r} has no buffer cell")
    return min(buffers, key=lambda c: c.area)


def _cluster_sinks(
    sinks: List[Tuple[MappedNode, int]], groups: int
) -> List[List[Tuple[MappedNode, int]]]:
    """Split sinks into geometric clusters by recursive median bisection."""
    if groups <= 1 or len(sinks) <= 1:
        return [sinks]

    def position(entry) -> Point:
        node, _pin = entry
        return node.position or Point(0.0, 0.0)

    xs = [position(s).x for s in sinks]
    ys = [position(s).y for s in sinks]
    split_on_x = (max(xs) - min(xs)) >= (max(ys) - min(ys))
    key = (lambda s: (position(s).x, position(s).y, s[0].name)) if split_on_x \
        else (lambda s: (position(s).y, position(s).x, s[0].name))
    ordered = sorted(sinks, key=key)
    mid = len(ordered) // 2
    left_groups = max(1, groups // 2)
    right_groups = max(1, groups - left_groups)
    return (
        _cluster_sinks(ordered[:mid], left_groups)
        + _cluster_sinks(ordered[mid:], right_groups)
    )


def _rewire(sink: MappedNode, pin: int, old: MappedNode, new: MappedNode) -> None:
    assert sink.fanins[pin] is old
    sink.fanins[pin] = new
    old.fanouts.remove(sink)
    new.fanouts.append(sink)


def _buffer_net(
    mapped: MappedNetwork,
    driver: MappedNode,
    buffer: Cell,
    max_fanout: int,
    counter: List[int],
    sink_slack: Optional[Dict[str, float]] = None,
) -> int:
    """Insert one level of buffers below ``driver``; returns buffers added.

    The most timing-critical sinks (lowest slack) stay directly connected —
    buffers only shield the driver from the non-critical load, the classic
    fanout-tree discipline.
    """
    sinks = [
        (node, pin)
        for node in list(driver.fanouts)
        for pin, fanin in enumerate(node.fanins)
        if fanin is driver
    ]
    if len(sinks) <= max_fanout:
        return 0
    if sink_slack:
        sinks.sort(
            key=lambda s: (sink_slack.get(s[0].name, float("inf")), s[0].name)
        )
    keep_direct = max(1, max_fanout // 2)
    direct, to_buffer = sinks[:keep_direct], sinks[keep_direct:]
    # The driver keeps its direct (critical) sinks plus at most
    # (max_fanout - keep_direct) buffers; oversized clusters recurse
    # below their buffer, forming a proper tree rather than a chain.
    slots = max(1, max_fanout - keep_direct)
    clusters = [c for c in _cluster_sinks(to_buffer, slots) if c]
    added = 0
    for cluster in clusters:
        counter[0] += 1
        name = f"fobuf_{counter[0]}"
        node = mapped.add_gate(name, buffer, [driver])
        positions = [
            s.position for s, _p in cluster if s.position is not None
        ]
        node.position = (
            center_of_mass(positions) if positions else driver.position
        )
        for sink, pin in cluster:
            _rewire(sink, pin, driver, node)
        added += 1
        if len(cluster) > max_fanout:
            added += _buffer_net(
                mapped, node, buffer, max_fanout, counter, sink_slack
            )
    return added


def optimize_fanout(
    mapped: MappedNetwork,
    library: Library,
    max_fanout: int = 4,
    wire_model: Optional[WireCapModel] = None,
    input_arrivals: Optional[Dict[str, float]] = None,
) -> FanoutResult:
    """Buffer every net whose fanout exceeds ``max_fanout`` (in place).

    Returns before/after critical delays from the wiring-aware STA.  The
    pass never changes network function (buffers are identities); whether
    it pays off depends on the library's buffer delay versus the load
    relief — the result reports both delays so callers can decide.
    """
    from repro.timing.sta import slacks

    result = FanoutResult()
    before_report = analyze(
        mapped, wire_model=wire_model, input_arrivals=input_arrivals
    )
    result.delay_before = before_report.critical_delay
    sink_slack = slacks(mapped, before_report)

    buffer = buffer_cell(library)
    counter = [0]
    for node in list(mapped.nodes):
        if not (node.is_gate or node.is_pi):
            continue
        added = _buffer_net(
            mapped, node, buffer, max_fanout, counter, sink_slack
        )
        if added:
            result.nets_buffered += 1
            result.buffers_added += added

    mapped.check()
    result.delay_after = analyze(
        mapped, wire_model=wire_model, input_arrivals=input_arrivals
    ).critical_delay
    return result
