"""Named counters, gauges and histograms for the mapping pipeline.

A :class:`Metrics` registry creates instruments on first use, so
instrumented code never has to declare them up front::

    OBS.metrics.counter("dp.states_expanded").inc(len(matches))

Counters are monotone totals (matches attempted, DP states expanded,
lifecycle transitions); gauges hold the latest value of something
(partitioning levels, routed track count); histograms record an
observed distribution into fixed log-spaced buckets, so besides the
running count/sum/min/max they answer ``percentile(p)`` queries —
p50/p90/p99 of serve latencies, annealing deltas, per-cone match
counts.

Bucket scheme (shared by every histogram, so any two are mergeable):
boundary ``i`` sits at ``HIST_MIN * HIST_GROWTH**i`` with
``HIST_MIN = 1e-9`` and ``HIST_GROWTH = 2**0.25``, covering
``[1 ns, ~1.3e6)`` in :data:`HIST_BUCKETS` buckets.  Within a bucket a
percentile query answers the geometric midpoint (clamped to the
observed min/max), so the documented worst-case relative error of any
quantile is ``sqrt(HIST_GROWTH) - 1`` — about 9.1 % (see
:data:`HIST_REL_ERROR`).  Values at or below zero, and values beyond
the covered range, clamp into the first/last bucket; exact ``min`` /
``max`` / ``sum`` are tracked separately and are never bucketed.

Bucket counts serialise sparsely (``{"17": 3}``) inside
:meth:`Histogram.summary`, which is what lets per-process worker
reports merge bucket-exactly via :func:`merge_histogram_summaries` —
merging is associative and commutative because it only ever adds
counts.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "HIST_MIN",
    "HIST_GROWTH",
    "HIST_BUCKETS",
    "HIST_REL_ERROR",
    "bucket_index",
    "bucket_bounds",
    "bucket_value",
    "percentile_from_buckets",
    "merge_histogram_summaries",
    "merge_metrics_snapshots",
]

#: Lower boundary of bucket 0 (1 nanosecond when observing seconds).
HIST_MIN = 1e-9
#: Geometric growth factor between consecutive bucket boundaries.
HIST_GROWTH = 2.0 ** 0.25
#: Number of buckets; the last upper bound is HIST_MIN * GROWTH**BUCKETS.
HIST_BUCKETS = 200
#: Documented worst-case relative error of a percentile query: answers
#: are geometric bucket midpoints, so they are off by at most half a
#: bucket in log space.
HIST_REL_ERROR = math.sqrt(HIST_GROWTH) - 1.0

_LOG_GROWTH = math.log(HIST_GROWTH)
#: Epsilon nudging values sitting exactly on a boundary into the bucket
#: whose *lower* bound they are (floating log() rounds either way).
_BOUNDARY_EPS = 1e-9


def bucket_index(value: float) -> int:
    """The bucket a value falls in: ``[lo, hi)`` with log-spaced bounds.

    Values at or below :data:`HIST_MIN` collapse into bucket 0; values
    at or above the top boundary clamp into the last bucket.
    """
    if value <= HIST_MIN or value != value:  # NaN collapses into 0 too
        return 0
    if math.isinf(value):
        return HIST_BUCKETS - 1
    # Subtract logs instead of dividing first: value/HIST_MIN overflows
    # to inf for values above ~1e299 and floor(inf) raises.
    idx = int(math.floor((math.log(value) - math.log(HIST_MIN))
                         / _LOG_GROWTH + _BOUNDARY_EPS))
    if idx < 0:
        return 0
    if idx >= HIST_BUCKETS:
        return HIST_BUCKETS - 1
    return idx


def bucket_bounds(index: int) -> "tuple[float, float]":
    """The ``[lo, hi)`` boundaries of bucket ``index``."""
    lo = HIST_MIN * HIST_GROWTH ** index
    return lo, lo * HIST_GROWTH


def bucket_value(index: int) -> float:
    """The representative (geometric midpoint) value of a bucket."""
    lo, hi = bucket_bounds(index)
    return math.sqrt(lo * hi)


def percentile_from_buckets(
    buckets: Dict[str, int],
    count: int,
    p: float,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> float:
    """The ``p``-th percentile (``p`` in ``[0, 100]``) of bucketed data.

    Walks the sparse bucket counts in index order until the cumulative
    count reaches ``ceil(p/100 * count)`` and answers that bucket's
    geometric midpoint, clamped to ``[lo, hi]`` when the exact observed
    extremes are known (they always are for a live
    :class:`Histogram`).  Returns 0.0 for empty data.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p!r}")
    if count <= 0 or not buckets:
        return 0.0
    rank = max(1, math.ceil(p / 100.0 * count))
    items = sorted((int(key), n) for key, n in buckets.items())
    cumulative = 0
    value = 0.0
    for index, n in items:
        cumulative += n
        if cumulative >= rank:
            value = bucket_value(index)
            break
    else:  # counts out of sync with ``count``: answer the top bucket
        value = bucket_value(items[-1][0])
    if lo is not None:
        value = max(value, lo)
    if hi is not None:
        value = min(value, hi)
    return value


def merge_histogram_summaries(
    into: Dict[str, Any], other: Dict[str, Any]
) -> Dict[str, Any]:
    """Fold histogram summary ``other`` into ``into`` (returned).

    Tolerant by design: either side may be an *old-schema* summary
    (count/mean/min/max only, no buckets — e.g. a report written by an
    earlier version or a hand-built test fixture) or empty.  Counts and
    sums add, min/max combine ignoring empty sides, bucket counts add
    per index, and the percentiles are recomputed from the merged
    buckets when any are present.  Merging is associative because every
    field is either a sum, an extremum or derived from the sums.
    """
    a_count = int(into.get("count", 0) or 0)
    b_count = int(other.get("count", 0) or 0)
    count = a_count + b_count

    def _total(d: Dict[str, Any], n: int) -> float:
        if "sum" in d:
            return float(d["sum"])
        return float(d.get("mean", 0.0)) * n

    total = _total(into, a_count) + _total(other, b_count)
    mins = [d["min"] for d, n in ((into, a_count), (other, b_count))
            if n and d.get("min") is not None]
    maxs = [d["max"] for d, n in ((into, a_count), (other, b_count))
            if n and d.get("max") is not None]
    buckets: Dict[str, int] = dict(into.get("buckets") or {})
    for key, n in (other.get("buckets") or {}).items():
        buckets[key] = buckets.get(key, 0) + n

    into["count"] = count
    into["sum"] = total
    into["mean"] = total / count if count else 0.0
    into["min"] = min(mins) if mins else 0.0
    into["max"] = max(maxs) if maxs else 0.0
    if buckets:
        into["buckets"] = buckets
        lo = min(mins) if mins else None
        hi = max(maxs) if maxs else None
        for p, key in ((50.0, "p50"), (90.0, "p90"), (99.0, "p99")):
            into[key] = percentile_from_buckets(buckets, count, p, lo, hi)
    return into


#: Gauges that aggregate by ``max`` across processes (point-in-time
#: readings where summing would be meaningless — e.g. uptimes).
GAUGE_MAX_NAMES = frozenset({"serve.uptime_s"})


def merge_metrics_snapshots(snapshots) -> Dict[str, Any]:
    """Fold several :meth:`Metrics.snapshot`-shaped dicts into one.

    This is the cluster-aggregation primitive: the router scrapes each
    shard's ``metrics`` snapshot and folds them here.  Counters sum;
    gauges sum too (queue depths, cache entries — capacities add across
    shards) except the names in :data:`GAUGE_MAX_NAMES`, which take the
    max (uptime-style readings); histograms merge *bucket-exactly* via
    :func:`merge_histogram_summaries`, so the aggregate p50/p90/p99 are
    computed from the union of every shard's samples, not averaged from
    per-shard percentiles.  Snapshots with differing instrument sets
    merge fine — every name folds independently.
    """
    merged: Dict[str, Any] = {"counters": {}, "gauges": {},
                              "histograms": {}}
    for snap in snapshots:
        if not snap:
            continue
        counters = merged["counters"]
        for name, value in (snap.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        gauges = merged["gauges"]
        for name, value in (snap.get("gauges") or {}).items():
            if name in GAUGE_MAX_NAMES:
                gauges[name] = max(gauges.get(name, value), value)
            else:
                gauges[name] = gauges.get(name, 0) + value
        histograms = merged["histograms"]
        for name, summary in (snap.get("histograms") or {}).items():
            histograms[name] = merge_histogram_summaries(
                histograms.get(name) or {}, summary)
    return merged


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """The most recent value of a quantity."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record ``value`` as the current reading."""
        self.value = value

    def add(self, delta: float) -> None:
        """Shift the current reading by ``delta``."""
        self.value += delta


class Histogram:
    """Log-bucketed distribution with exact count/sum/min/max.

    ``observe`` drops each value into one of :data:`HIST_BUCKETS`
    log-spaced buckets (see the module docstring for the scheme);
    ``percentile(p)`` answers within :data:`HIST_REL_ERROR` of the true
    quantile.  Bucket storage is sparse, so an instrument that only
    ever sees a narrow range stays tiny.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: Sparse bucket counts, keyed by int index.
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one sample: exact moments plus its log bucket."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of everything observed (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (``p`` in ``[0, 100]``), within
        :data:`HIST_REL_ERROR` of the true sample quantile (clamped to
        the exact observed min/max).  0.0 when nothing was observed."""
        return percentile_from_buckets(
            {str(k): v for k, v in self.buckets.items()},
            self.count, p, self.min, self.max,
        )

    def summary(self) -> Dict[str, Any]:
        """JSON-ready snapshot: moments, extremes, p50/p90/p99 and the
        sparse bucket counts (string keys, so the dict survives a JSON
        round trip unchanged and stays mergeable)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class Metrics:
    """Create-on-first-use registry of named instruments."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created on first use."""
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    def reset(self) -> None:
        """Drop every instrument (a fresh, empty registry)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    # -- snapshots ----------------------------------------------------------

    def snapshot_counters(self) -> Dict[str, int]:
        """Counter totals by name."""
        return {name: c.value for name, c in self.counters.items()}

    def snapshot(self) -> Dict[str, Any]:
        """Everything, as plain JSON-ready values."""
        return {
            "counters": self.snapshot_counters(),
            "gauges": {name: g.value for name, g in self.gauges.items()},
            "histograms": {
                name: h.summary() for name, h in self.histograms.items()
            },
        }
