"""Named counters, gauges and histograms for the mapping pipeline.

A :class:`Metrics` registry creates instruments on first use, so
instrumented code never has to declare them up front::

    OBS.metrics.counter("dp.states_expanded").inc(len(matches))

Counters are monotone totals (matches attempted, DP states expanded,
lifecycle transitions); gauges hold the latest value of something
(partitioning levels, routed track count); histograms keep running
count/sum/min/max statistics of an observed distribution (annealing
deltas, per-cone match counts).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["Counter", "Gauge", "Histogram", "Metrics"]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """The most recent value of a quantity."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Running summary statistics of an observed distribution."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
        }


class Metrics:
    """Create-on-first-use registry of named instruments."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    # -- snapshots ----------------------------------------------------------

    def snapshot_counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in self.counters.items()}

    def snapshot(self) -> Dict[str, Any]:
        """Everything, as plain JSON-ready values."""
        return {
            "counters": self.snapshot_counters(),
            "gauges": {name: g.value for name, g in self.gauges.items()},
            "histograms": {
                name: h.summary() for name, h in self.histograms.items()
            },
        }
