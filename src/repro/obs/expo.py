"""Prometheus-style text exposition of metrics snapshots.

:func:`format_prometheus` renders the JSON-ready snapshot shape that
:meth:`repro.obs.metrics.Metrics.snapshot` (and
``MappingServer.metrics_snapshot``) produce —
``{"counters": …, "gauges": …, "histograms": …}`` — as the Prometheus
text exposition format (version 0.0.4)::

    # TYPE repro_serve_jobs counter
    repro_serve_jobs 42
    # TYPE repro_serve_latency_s histogram
    repro_serve_latency_s_bucket{le="0.001953"} 3
    repro_serve_latency_s_bucket{le="+Inf"} 42
    repro_serve_latency_s_sum 1.234
    repro_serve_latency_s_count 42

Metric names are sanitised (``serve.cache.hits`` →
``repro_serve_cache_hits``); histogram bucket lines are *cumulative*
counts with the bucket's upper boundary as the ``le`` label, exactly as
a Prometheus scraper expects, followed by ``_sum`` and ``_count``.  The
p50/p90/p99 summary fields are additionally exposed as
``{quantile="…"}`` gauge lines so a human scraping with ``curl`` reads
percentiles without histogram_quantile math.

The formatter is a pure function of the snapshot — no sockets or HTTP
here.  The serve protocol's ``metrics`` verb with
``"format": "prometheus"`` returns this text, which is what makes a
running server scrapeable without restart.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List

from repro.obs.metrics import bucket_bounds

__all__ = ["format_prometheus", "sanitize_metric_name"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, prefix: str = "repro") -> str:
    """A Prometheus-legal metric name: prefixed, dots to underscores."""
    cleaned = _NAME_OK.sub("_", name)
    if prefix:
        cleaned = f"{prefix}_{cleaned}"
    if cleaned and cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def _fmt(value: Any) -> str:
    """A number rendered the way Prometheus parsers like it."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def format_prometheus(snapshot: Dict[str, Any],
                      prefix: str = "repro") -> str:
    """The text exposition of one metrics snapshot (ends with ``\\n``).

    ``snapshot`` holds any of ``counters`` / ``gauges`` /
    ``histograms`` (missing sections are fine).  Histogram values may
    be new-schema summaries with sparse ``buckets`` or old-schema
    count/mean/min/max dicts — the latter just skip the bucket lines.
    """
    lines: List[str] = []
    for name in sorted(snapshot.get("counters") or {}):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges") or {}):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms") or {}):
        summary = snapshot["histograms"][name]
        metric = sanitize_metric_name(name, prefix)
        count = int(summary.get("count", 0) or 0)
        lines.append(f"# TYPE {metric} histogram")
        buckets = summary.get("buckets") or {}
        cumulative = 0
        for index, n in sorted((int(k), v) for k, v in buckets.items()):
            cumulative += int(n)
            upper = bucket_bounds(index)[1]
            lines.append(
                f'{metric}_bucket{{le="{upper:.6g}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
        # Old-schema summaries (pre-percentile workers) lack "sum";
        # mean * count is the same quantity.
        total = summary.get("sum")
        if total is None:
            total = float(summary.get("mean", 0.0)) * count
        lines.append(f"{metric}_sum {_fmt(total)}")
        lines.append(f"{metric}_count {count}")
        for q, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            if key in summary:
                lines.append(
                    f'{metric}{{quantile="{q}"}} {_fmt(summary[key])}')
    return "\n".join(lines) + "\n"
