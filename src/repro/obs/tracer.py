"""Nestable wall-clock spans with Chrome ``trace_event`` export.

The tracer keeps a stack of open :class:`Span` objects; ``with
tracer.span("cover", circuit=name):`` opens a child of whatever span is
currently open.  Every span records inclusive wall time on the monotonic
``time.perf_counter`` clock (the same clock the flow's ``runtime_s``
uses), and *exclusive* time — inclusive minus the inclusive time of its
direct children — falls out at read time.

Two export formats:

* :meth:`Tracer.to_jsonl` — one JSON object per span per line, handy for
  ad-hoc grepping and for diffing runs.
* :meth:`Tracer.chrome_trace` — the Chrome ``trace_event`` "X" (complete
  event) format, loadable in ``chrome://tracing`` or Perfetto.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One timed region; children are spans opened while it was open."""

    __slots__ = ("name", "attrs", "start", "end", "children", "depth")

    def __init__(self, name: str, attrs: Dict[str, Any], start: float,
                 depth: int) -> None:
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        self.depth = depth

    @property
    def duration(self) -> float:
        """Inclusive wall time, seconds (0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def exclusive(self) -> float:
        """Inclusive time minus the inclusive time of direct children."""
        return self.duration - sum(c.duration for c in self.children)

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration:.6f}s)"


class _SpanContext:
    """Context manager opening/closing one span on the tracer stack."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self._span)


class Tracer:
    """Process-local span recorder.

    Args:
        clock: monotonic time source in seconds; defaults to
            ``time.perf_counter`` so span times compose with the flow
            runtime measurements.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self.epoch = clock()

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a nested span for the duration of a ``with`` block."""
        return _SpanContext(self, name, attrs)

    def _open(self, name: str, attrs: Dict[str, Any]) -> Span:
        span = Span(name, attrs, self.clock(), depth=len(self._stack))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end = self.clock()
        # Tolerate mismatched closes (a span leaked by an exception in a
        # hook): unwind to the span being closed.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.end is None:
                top.end = span.end

    def reset(self) -> None:
        self.roots = []
        self._stack = []
        self.epoch = self.clock()

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def all_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    # -- export -------------------------------------------------------------

    def _span_record(self, span: Span) -> Dict[str, Any]:
        return {
            "name": span.name,
            "start_s": span.start - self.epoch,
            "dur_s": span.duration,
            "exclusive_s": span.exclusive,
            "depth": span.depth,
            "attrs": _jsonable(span.attrs),
        }

    def to_jsonl(self) -> str:
        """One JSON object per recorded span, one per line."""
        return "\n".join(
            json.dumps(self._span_record(s)) for s in self.all_spans()
        )

    def chrome_events(self, pid: int = 1, tid: int = 1) -> List[Dict[str, Any]]:
        """Chrome ``trace_event`` complete ("X") events, timestamps in µs."""
        events: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "process_name",
                "args": {"name": "repro"},
            }
        ]
        for span in self.all_spans():
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.start - self.epoch) * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": _jsonable(span.attrs),
                }
            )
        return events

    def chrome_trace(self) -> Dict[str, Any]:
        """The full Chrome/Perfetto trace document."""
        return {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
        }

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.chrome_trace(), f)


def _jsonable(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values to JSON-safe scalars."""
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out
