"""Nestable wall-clock spans with Chrome ``trace_event`` export.

The tracer keeps a stack of open :class:`Span` objects *per thread*;
``with tracer.span("cover", circuit=name):`` opens a child of whatever
span the calling thread currently has open.  Every span records
inclusive wall time on the monotonic ``time.perf_counter`` clock (the
same clock the flow's ``runtime_s`` uses), and *exclusive* time —
inclusive minus the inclusive time of its direct **same-thread**
children — falls out at read time.

Worker threads (the ``--jobs N`` match prewarm) either start their own
root spans or attach under an explicit parent via
``tracer.span_in(parent, ...)``; cross-thread child appends are
serialised by a lock.  Children recorded from another thread run
*concurrently* with their parent, so they are excluded from the parent's
exclusive time — subtracting them would drive it negative and corrupt
the ``--profile`` phase table.

Two export formats:

* :meth:`Tracer.to_jsonl` — one JSON object per span per line, handy for
  ad-hoc grepping and for diffing runs.
* :meth:`Tracer.chrome_trace` — the Chrome ``trace_event`` "X" (complete
  event) format, loadable in ``chrome://tracing`` or Perfetto.  Thread
  idents are renumbered to small track ids (first-seen thread = 1).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One timed region; children are spans opened while it was open."""

    __slots__ = ("name", "attrs", "start", "end", "children", "depth", "tid")

    def __init__(self, name: str, attrs: Dict[str, Any], start: float,
                 depth: int, tid: int = 0) -> None:
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        self.depth = depth
        #: ``threading.get_ident()`` of the recording thread.
        self.tid = tid

    @property
    def duration(self) -> float:
        """Inclusive wall time, seconds (0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def exclusive(self) -> float:
        """Inclusive time minus the inclusive time of direct children.

        Only same-thread children are subtracted: a child recorded from
        another thread ran concurrently, not inside this span's wall
        time.
        """
        return self.duration - sum(
            c.duration for c in self.children if c.tid == self.tid
        )

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration:.6f}s)"


class _SpanContext:
    """Context manager opening/closing one span on the tracer stack."""

    __slots__ = ("_tracer", "_name", "_attrs", "_parent", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any],
                 parent: Optional[Span] = None) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._parent = parent
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs, self._parent)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self._span)


class Tracer:
    """Process-local span recorder.

    Args:
        clock: monotonic time source in seconds; defaults to
            ``time.perf_counter`` so span times compose with the flow
            runtime measurements.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.roots: List[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self.epoch = clock()

    def _stack(self) -> List[Span]:
        """The calling thread's open-span stack."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a nested span for the duration of a ``with`` block."""
        return _SpanContext(self, name, attrs)

    def span_in(self, parent: Optional[Span], name: str,
                **attrs: Any) -> _SpanContext:
        """Open a span attached under an explicit ``parent`` span.

        The bridge for worker threads: the thread's own stack is empty,
        so a plain :meth:`span` would start a new root; ``span_in``
        parents it under a span owned by another thread instead (the
        append is lock-protected).  With a non-empty local stack, or a
        ``None`` parent, this degrades to :meth:`span`.
        """
        return _SpanContext(self, name, attrs, parent)

    def _open(self, name: str, attrs: Dict[str, Any],
              parent: Optional[Span] = None) -> Span:
        stack = self._stack()
        span = Span(name, attrs, self.clock(), depth=0,
                    tid=threading.get_ident())
        if stack:
            span.depth = len(stack)
            stack[-1].children.append(span)
        elif parent is not None:
            span.depth = parent.depth + 1
            with self._lock:
                parent.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end = self.clock()
        # Tolerate mismatched closes (a span leaked by an exception in a
        # hook): unwind to the span being closed.
        stack = self._stack()
        while stack:
            top = stack.pop()
            if top is span:
                break
            if top.end is None:
                top.end = span.end

    def reset(self) -> None:
        """Drop all recorded spans (only the calling thread may have
        spans still open; workers must have been joined)."""
        with self._lock:
            self.roots = []
        self._local.stack = []
        self.epoch = self.clock()

    @property
    def current(self) -> Optional[Span]:
        """This thread's innermost open span (``None`` outside spans)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def all_spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first from each root."""
        for root in self.roots:
            yield from root.walk()

    # -- export -------------------------------------------------------------

    def _span_record(self, span: Span) -> Dict[str, Any]:
        return {
            "name": span.name,
            "start_s": span.start - self.epoch,
            "dur_s": span.duration,
            "exclusive_s": span.exclusive,
            "depth": span.depth,
            "attrs": _jsonable(span.attrs),
        }

    def to_jsonl(self) -> str:
        """One JSON object per recorded span, one per line."""
        return "\n".join(
            json.dumps(self._span_record(s)) for s in self.all_spans()
        )

    def chrome_events(self, pid: int = 1, tid: int = 1) -> List[Dict[str, Any]]:
        """Chrome ``trace_event`` complete ("X") events, timestamps in µs.

        Thread idents are renumbered in first-seen (document) order
        starting from ``tid``, so a single-threaded trace sits entirely
        on track ``tid``.
        """
        events: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "process_name",
                "args": {"name": "repro"},
            }
        ]
        track_of: Dict[int, int] = {}
        for span in self.all_spans():
            track = track_of.get(span.tid)
            if track is None:
                track = track_of[span.tid] = tid + len(track_of)
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.start - self.epoch) * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": pid,
                    "tid": track,
                    "args": _jsonable(span.attrs),
                }
            )
        return events

    def chrome_trace(self) -> Dict[str, Any]:
        """The full Chrome/Perfetto trace document."""
        return {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
        }

    def write_chrome_trace(self, path: str) -> None:
        """Write the Chrome/Perfetto trace document to ``path``."""
        with open(path, "w") as f:
            json.dump(self.chrome_trace(), f)


def _jsonable(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values to JSON-safe scalars."""
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out
