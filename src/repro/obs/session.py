"""The process-wide observability session and its disabled fast path.

Instrumented modules hold one reference::

    from repro.obs import OBS
    ...
    if OBS.enabled:
        OBS.metrics.counter("match.calls").inc()

``OBS`` is a singleton that lives for the whole process; enabling and
disabling flips one attribute, so with observability off a hot loop pays
exactly one attribute load and truthy check (benchmarked in
``benchmarks/test_component_speed.py``).  ``OBS.span(...)`` returns a
shared no-op context manager when disabled, so phase-level ``with``
blocks are also nearly free.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.obs.metrics import Metrics
from repro.obs.tracer import Span, Tracer

__all__ = ["ObsSession", "OBS", "get_session", "observed"]


class _NullContext:
    """Shared do-nothing span context for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL = _NullContext()


class ObsSession:
    """Tracer + metrics behind a single ``enabled`` switch."""

    __slots__ = ("enabled", "tracer", "metrics", "clock")

    def __init__(self, clock=time.perf_counter) -> None:
        self.enabled = False
        self.clock = clock
        self.tracer = Tracer(clock)
        self.metrics = Metrics()

    def enable(self, reset: bool = True) -> "ObsSession":
        """Turn recording on (fresh by default)."""
        if reset:
            self.reset()
        self.enabled = True
        return self

    def disable(self) -> None:
        """Turn recording off (collected data stays readable)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all collected spans and metrics."""
        self.tracer.reset()
        self.metrics.reset()

    def span(self, name: str, **attrs: Any):
        """A recording span when enabled, a shared no-op otherwise."""
        if not self.enabled:
            return _NULL
        return self.tracer.span(name, **attrs)

    def span_in(self, parent: Optional[Span], name: str, **attrs: Any):
        """A span under an explicit parent (worker threads); no-op when
        disabled."""
        if not self.enabled:
            return _NULL
        return self.tracer.span_in(parent, name, **attrs)

    def annotate(self, span: Optional[Span], **attrs: Any) -> None:
        """Attach attributes to an open span (no-op when disabled)."""
        if span is not None:
            span.attrs.update(attrs)


#: The process-wide session; import this, check ``OBS.enabled``.
OBS = ObsSession()


def get_session() -> ObsSession:
    """The process-wide :data:`OBS` session."""
    return OBS


class observed:
    """``with observed() as session:`` — enable for the block's duration."""

    def __init__(self, session: Optional[ObsSession] = None) -> None:
        self.session = session or OBS

    def __enter__(self) -> ObsSession:
        return self.session.enable()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.session.disable()
