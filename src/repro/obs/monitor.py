"""``python -m repro.obs.monitor`` — a top-like console for a serve
frontend.

Polls a running ``python -m repro.serve --socket HOST:PORT`` server
over the JSON-lines protocol (the ``metrics`` + ``health`` verbs — no
restart, no ``--observe``) and renders a live dashboard: request and
error rates over the last polling window, cumulative cache hit rate,
queue depth and the latency/queue-wait percentiles from the server's
log-bucket histograms::

    python -m repro.obs.monitor 127.0.0.1:7878 --interval 2

    repro.serve @ 127.0.0.1:7878 — ok, up 142s, 2 workers
    window 2.0s   jobs/s 14.5   errors/s 0.0   queue depth 3
    totals        jobs 412   completed 409   degraded 1   timeouts 0
    cache         hit rate 63.1%   entries 128   disk hits 12
    latency_s     p50 0.0181   p90 0.0423   p99 0.1190   mean 0.0232
    queue_wait_s  p50 0.0009   p90 0.0041   p99 0.0102

``--iterations N`` exits after N polls (0 = forever), which is how the
tests and one-shot health checks drive it; ``--no-clear`` appends
frames instead of redrawing in place.  The rendering itself is the
pure function :func:`render_dashboard`, so every number on screen is
unit-testable without a socket.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, Optional

__all__ = ["render_dashboard", "main"]

#: ANSI clear-screen + cursor-home, the in-place redraw prefix.
_CLEAR = "\x1b[2J\x1b[H"


def _rate(cur: Dict[str, Any], prev: Optional[Dict[str, Any]],
          name: str, dt: float) -> float:
    """Per-second rate of a counter over the last polling window."""
    if prev is None or dt <= 0:
        return 0.0
    now = cur.get("counters", {}).get(name, 0)
    before = prev.get("counters", {}).get(name, 0)
    return max(0.0, (now - before) / dt)


def _hist_row(label: str, summary: Optional[Dict[str, Any]]) -> str:
    """One percentile line of the dashboard (blank-safe)."""
    if not summary or not summary.get("count"):
        return f"{label:<14}(no observations yet)"
    return (f"{label:<14}"
            f"p50 {summary.get('p50', 0.0):<10.4g}"
            f"p90 {summary.get('p90', 0.0):<10.4g}"
            f"p99 {summary.get('p99', 0.0):<10.4g}"
            f"mean {summary.get('mean', 0.0):<10.4g}"
            f"n {summary.get('count', 0)}")


def render_dashboard(
    metrics: Dict[str, Any],
    health: Dict[str, Any],
    previous: Optional[Dict[str, Any]] = None,
    dt: float = 0.0,
    address: str = "",
) -> str:
    """One dashboard frame from a metrics snapshot + health summary.

    ``previous`` is the prior poll's metrics snapshot (rates render as
    0 on the first frame); ``dt`` the wall seconds between the two.
    Pure — no sockets, no clock reads — so tests feed it synthetic
    snapshots and assert exact strings.
    """
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    hits = counters.get("serve.cache.hits", 0)
    misses = counters.get("serve.cache.misses", 0)
    probes = hits + misses
    hit_rate = 100.0 * hits / probes if probes else 0.0
    lines = [
        (f"repro.serve @ {address or 'server'} — "
         f"{health.get('status', '?')}, "
         f"up {health.get('uptime_s', 0.0):.0f}s, "
         f"{health.get('workers', '?')} workers"),
        (f"{'window ' + format(dt, '.1f') + 's':<14}"
         f"jobs/s {_rate(metrics, previous, 'serve.jobs', dt):<8.1f}"
         f"errors/s {_rate(metrics, previous, 'serve.errors', dt):<8.1f}"
         f"queue depth {gauges.get('serve.queue_depth', 0):.0f}"),
        (f"{'totals':<14}"
         f"jobs {counters.get('serve.jobs', 0):<8}"
         f"completed {counters.get('serve.completed', 0):<8}"
         f"degraded {counters.get('serve.degraded', 0):<6}"
         f"timeouts {counters.get('serve.timeouts', 0):<6}"
         f"slow {counters.get('serve.slow', 0)}"),
        (f"{'cache':<14}"
         f"hit rate {format(hit_rate, '.1f') + '%':<9}"
         f"entries {gauges.get('serve.cache.entries', 0):<8.0f}"
         f"disk hits {counters.get('serve.cache.disk_hits', 0)}"),
        _hist_row("latency_s", histograms.get("serve.latency_s")),
        _hist_row("queue_wait_s", histograms.get("serve.queue_wait_s")),
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(prog="repro.obs.monitor")
    parser.add_argument("address", metavar="HOST:PORT",
                        help="a running repro.serve socket frontend")
    parser.add_argument("--interval", type=float, default=2.0, metavar="S",
                        help="seconds between polls (default 2)")
    parser.add_argument("--iterations", type=int, default=0, metavar="N",
                        help="exit after N frames (0: run until ^C)")
    parser.add_argument("--no-clear", action="store_true",
                        help="append frames instead of redrawing in place")
    args = parser.parse_args(argv)

    host, _, port = args.address.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"expected HOST:PORT, got {args.address!r}")

    from repro.serve.client import Client, ServeProtocolError

    client = Client.connect(host, int(port))
    previous: Optional[Dict[str, Any]] = None
    prev_t = time.monotonic()
    frames = 0
    try:
        while True:
            try:
                metrics = client.metrics()
                health = client.health()
            except ServeProtocolError as exc:
                print(f"server went away: {exc}", file=sys.stderr)
                return 1
            now = time.monotonic()
            frame = render_dashboard(metrics, health, previous,
                                     dt=now - prev_t, address=args.address)
            if args.no_clear:
                print(frame + "\n")
            else:
                print(_CLEAR + frame, flush=True)
            previous, prev_t = metrics, now
            frames += 1
            if args.iterations and frames >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


if __name__ == "__main__":
    sys.exit(main())
