"""Request-scoped structured event logging (JSONL, ring-buffered).

An :class:`EventLog` records *events*: small JSON-ready dicts stamped
with a wall-clock timestamp, a monotonically increasing sequence
number, a ``kind`` (``"job.received"``, ``"job.start"``,
``"job.done"``, …) and — for anything caused by a serve request — the
request's ``request_id``.  One grep (or :meth:`EventLog.events` with a
``request_id`` filter) reconstructs a request's full lifecycle across
the cache probe, single-flight join, worker execution, degradation,
timeout and completion paths.

Storage is a bounded in-memory ring (old events fall off the front),
so a long-lived server never grows without bound; an optional *stream*
additionally appends every event to a JSONL file as it happens, which
is the durable form.  Both the ring and the stream hold the same
records::

    {"seq": 12, "ts": 1723111845.123456, "kind": "job.start",
     "request_id": "req-9f31c2d44ab0", "key": "9a1b…", "queue_wait_s": 0.004}

Emission is cheap (one dict build + deque append under a lock) and the
log is thread-safe — server workers, the submit path and protocol
threads all write to one instance.

Request ids come from :func:`new_request_id`: 12 hex chars of
``uuid4`` under a ``req-`` prefix — unique enough for any realistic
retention window, short enough to read in a grep.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import deque
from typing import Any, Dict, IO, List, Optional, Union

__all__ = ["EventLog", "new_request_id", "DEFAULT_RING_SIZE"]

#: Default ring bound: plenty for thousands of request lifecycles while
#: staying a few MB at worst.
DEFAULT_RING_SIZE = 4096


def new_request_id() -> str:
    """A fresh request id: ``req-`` + 12 hex chars of ``uuid4``."""
    return f"req-{uuid.uuid4().hex[:12]}"


class EventLog:
    """Thread-safe ring buffer of structured events, optionally
    streamed to a JSONL file.

    Args:
        ring_size: maximum events kept in memory (older ones drop).
        stream: a path or an open text file; every emitted event is
            appended as one JSON line (the durable tier — the ring is
            for live introspection).  A path is opened lazily in append
            mode on first emit and closed by :meth:`close`.
    """

    def __init__(self, ring_size: int = DEFAULT_RING_SIZE,
                 stream: Optional[Union[str, IO[str]]] = None) -> None:
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        self.ring_size = ring_size
        self._ring: "deque[Dict[str, Any]]" = deque(maxlen=ring_size)
        self._lock = threading.Lock()
        self._seq = 0
        self._dropped = 0
        self._stream_path: Optional[str] = None
        self._stream: Optional[IO[str]] = None
        if isinstance(stream, str):
            self._stream_path = stream
        elif stream is not None:
            self._stream = stream

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events that fell off the ring (still in the stream, if any)."""
        with self._lock:
            return self._dropped

    # -- recording ----------------------------------------------------------

    def emit(self, kind: str, request_id: Optional[str] = None,
             **attrs: Any) -> Dict[str, Any]:
        """Record one event; returns the stored record.

        ``attrs`` must be JSON-ready scalars/containers (they are
        written verbatim to the stream).  ``request_id`` is stored only
        when given, so unscoped server events (start-up, shutdown)
        don't carry a misleading empty id.
        """
        record: Dict[str, Any] = {"ts": time.time(), "kind": kind}
        if request_id is not None:
            record["request_id"] = request_id
        record.update(attrs)
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            if len(self._ring) == self.ring_size:
                self._dropped += 1
            self._ring.append(record)
            stream = self._ensure_stream()
            if stream is not None:
                try:
                    stream.write(json.dumps(record, sort_keys=True) + "\n")
                    stream.flush()
                except (OSError, ValueError):
                    # A torn stream must never take the server down;
                    # the in-memory ring keeps working.
                    self._stream = None
        return record

    def _ensure_stream(self) -> Optional[IO[str]]:
        """The live stream handle, opening a configured path lazily."""
        if self._stream is None and self._stream_path is not None:
            try:
                self._stream = open(self._stream_path, "a")
            except OSError:
                self._stream_path = None
        return self._stream

    # -- reading ------------------------------------------------------------

    def events(self, request_id: Optional[str] = None,
               kind: Optional[str] = None,
               limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Ring contents (oldest first), optionally filtered.

        ``request_id`` keeps only one request's lifecycle; ``kind``
        keeps one event kind; ``limit`` keeps the *newest* N after
        filtering (what a scraper or the monitor wants).
        """
        with self._lock:
            records = list(self._ring)
        if request_id is not None:
            records = [r for r in records
                       if r.get("request_id") == request_id]
        if kind is not None:
            records = [r for r in records if r.get("kind") == kind]
        if limit is not None and limit >= 0:
            records = records[len(records) - min(limit, len(records)):]
        return records

    def to_jsonl(self, request_id: Optional[str] = None) -> str:
        """The (filtered) ring as JSONL text, one event per line."""
        return "\n".join(
            json.dumps(r, sort_keys=True)
            for r in self.events(request_id=request_id)
        )

    def write_jsonl(self, path: str,
                    request_id: Optional[str] = None) -> int:
        """Dump the (filtered) ring to ``path``; returns events written."""
        records = self.events(request_id=request_id)
        with open(path, "w") as f:
            for record in records:
                f.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)

    # -- lifecycle ----------------------------------------------------------

    def clear(self) -> None:
        """Drop the ring (the stream file, if any, is left alone)."""
        with self._lock:
            self._ring.clear()
            self._dropped = 0

    def close(self) -> None:
        """Close a stream the log opened itself (path-configured)."""
        with self._lock:
            if self._stream is not None and self._stream_path is not None:
                try:
                    self._stream.close()
                except OSError:
                    pass
                self._stream = None
