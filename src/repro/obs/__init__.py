"""Observability: tracing spans + metrics for the mapping pipeline.

Usage, from instrumented code (hot-path pattern)::

    from repro.obs import OBS

    with OBS.span("cover", circuit=name):
        ...
    if OBS.enabled:
        OBS.metrics.counter("dp.states_expanded").inc()

and from a driver::

    from repro.obs import OBS, observed

    with observed():
        result = lily_flow(net, library)
    print(result.obs.format_table())
    OBS.tracer.write_chrome_trace("trace.json")

With the session disabled (the default) the instrumentation costs one
attribute check per site; ``OBS.span`` returns a shared no-op context.

Beyond spans and metrics, the package carries the production-telemetry
pieces the serving stack uses: request-scoped structured event logs
(``repro.obs.events``), percentile-capable log-bucket histograms
(``repro.obs.metrics``), Prometheus text exposition
(``repro.obs.expo``) and a top-like live console
(``python -m repro.obs.monitor``).  See ``docs/OBSERVING.md``.
"""

from repro.obs.events import EventLog, new_request_id
from repro.obs.expo import format_prometheus, sanitize_metric_name
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    merge_histogram_summaries,
    merge_metrics_snapshots,
    percentile_from_buckets,
)
from repro.obs.report import ObsReport, PhaseStat, build_report, merge_reports
from repro.obs.session import OBS, ObsSession, get_session, observed
from repro.obs.tracer import Span, Tracer

__all__ = [
    "OBS",
    "ObsSession",
    "get_session",
    "observed",
    "Tracer",
    "Span",
    "Metrics",
    "Counter",
    "Gauge",
    "Histogram",
    "merge_histogram_summaries",
    "merge_metrics_snapshots",
    "percentile_from_buckets",
    "EventLog",
    "new_request_id",
    "format_prometheus",
    "sanitize_metric_name",
    "ObsReport",
    "PhaseStat",
    "build_report",
    "merge_reports",
]
