"""Per-flow observability reports (the ``--profile`` phase table).

An :class:`ObsReport` freezes what one pipeline run did: the span tree
under the flow's root span aggregated into per-phase rows (inclusive and
exclusive wall time, call counts), plus the counters/gauges/histograms
the run moved.  It is attached to ``FlowResult.obs`` so table drivers,
benchmarks and the CLI can all consume the same numbers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.session import ObsSession
from repro.obs.tracer import Span

__all__ = ["PhaseStat", "ObsReport", "build_report"]

#: Aggregated phase rows deeper than this are folded into their parent.
MAX_TABLE_DEPTH = 2


@dataclass
class PhaseStat:
    """One aggregated row of the phase table."""

    path: str  # "map/lily.initial_place"
    depth: int  # 1 for direct children of the flow root
    count: int
    total_s: float  # inclusive
    exclusive_s: float

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]


@dataclass
class ObsReport:
    """Everything one flow run recorded."""

    flow: str  # "mis" | "lily"
    circuit: str
    wall_s: float
    phases: List[PhaseStat] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def phase_total(self) -> float:
        """Sum of top-level phase times (should track ``wall_s``)."""
        return sum(p.total_s for p in self.phases if p.depth == 1)

    def phase(self, path: str) -> Optional[PhaseStat]:
        for p in self.phases:
            if p.path == path:
                return p
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "flow": self.flow,
            "circuit": self.circuit,
            "wall_s": self.wall_s,
            "phases": [
                {
                    "path": p.path,
                    "depth": p.depth,
                    "count": p.count,
                    "total_s": p.total_s,
                    "exclusive_s": p.exclusive_s,
                }
                for p in self.phases
            ],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def format_table(self) -> str:
        """The human-readable ``--profile`` breakdown."""
        lines = [
            f"=== profile: {self.circuit} — {self.flow} "
            f"({self.wall_s:.3f}s wall) ==="
        ]
        lines.append(
            f"{'phase':<28}{'calls':>7}{'total s':>10}{'excl s':>10}{'%':>6}"
        )
        for p in self.phases:
            indent = "  " * (p.depth - 1)
            share = 100.0 * p.total_s / self.wall_s if self.wall_s else 0.0
            lines.append(
                f"{indent + p.name:<28}{p.count:>7}{p.total_s:>10.3f}"
                f"{p.exclusive_s:>10.3f}{share:>6.1f}"
            )
        covered = self.phase_total()
        lines.append(
            f"{'(phases sum)':<28}{'':>7}{covered:>10.3f}{'':>10}"
            f"{100.0 * covered / self.wall_s if self.wall_s else 0.0:>6.1f}"
        )
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name:<34}{self.counters[name]:>12}")
        if self.gauges:
            lines.append("gauges:")
            for name in sorted(self.gauges):
                lines.append(f"  {name:<34}{self.gauges[name]:>12.3f}")
        if self.histograms:
            lines.append("histograms:")
            for name in sorted(self.histograms):
                h = self.histograms[name]
                lines.append(
                    f"  {name:<34}n={h['count']:<8.0f}"
                    f"mean={h['mean']:<10.3f}"
                    f"min={h['min']:<10.3f}max={h['max']:<.3f}"
                )
        return "\n".join(lines)


def _aggregate(root: Span) -> List[PhaseStat]:
    """Fold the span tree into path-keyed rows, document order."""
    rows: Dict[str, PhaseStat] = {}
    order: List[str] = []

    def visit(span: Span, prefix: str, depth: int) -> None:
        path = f"{prefix}{span.name}" if prefix else span.name
        stat = rows.get(path)
        if stat is None:
            stat = rows[path] = PhaseStat(path, depth, 0, 0.0, 0.0)
            order.append(path)
        stat.count += 1
        stat.total_s += span.duration
        if depth >= MAX_TABLE_DEPTH:
            # Fold deeper descendants into this row's exclusive time.
            stat.exclusive_s += span.duration
            return
        stat.exclusive_s += span.exclusive
        for child in span.children:
            visit(child, f"{path}/", depth + 1)

    for child in root.children:
        visit(child, "", 1)
    return [rows[path] for path in order]


def build_report(
    root: Span,
    session: ObsSession,
    counters_before: Optional[Dict[str, int]] = None,
    flow: str = "",
    circuit: str = "",
) -> ObsReport:
    """Freeze the subtree under ``root`` plus the metric movement.

    ``counters_before`` is a pre-flow snapshot; the report holds only the
    delta so consecutive flows in one session stay separable.  Gauges and
    histograms are session-cumulative (a gauge's last value and a
    histogram's min/max cannot be meaningfully differenced).
    """
    counters_before = counters_before or {}
    counters: Dict[str, int] = {}
    for name, value in session.metrics.snapshot_counters().items():
        delta = value - counters_before.get(name, 0)
        if delta:
            counters[name] = delta
    return ObsReport(
        flow=flow or str(root.attrs.get("mapper", "")),
        circuit=circuit or str(root.attrs.get("circuit", "")),
        wall_s=root.duration,
        phases=_aggregate(root),
        counters=counters,
        gauges={k: g.value for k, g in session.metrics.gauges.items()},
        histograms={
            k: h.summary() for k, h in session.metrics.histograms.items()
        },
    )
