"""Per-flow observability reports (the ``--profile`` phase table).

An :class:`ObsReport` freezes what one pipeline run did: the span tree
under the flow's root span aggregated into per-phase rows (inclusive and
exclusive wall time, call counts), plus the counters/gauges/histograms
the run moved.  It is attached to ``FlowResult.obs`` so table drivers,
benchmarks and the CLI can all consume the same numbers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import merge_histogram_summaries
from repro.obs.session import ObsSession
from repro.obs.tracer import Span

__all__ = ["PhaseStat", "ObsReport", "build_report", "merge_reports"]

#: Aggregated phase rows deeper than this are folded into their parent.
MAX_TABLE_DEPTH = 2


@dataclass
class PhaseStat:
    """One aggregated row of the phase table."""

    path: str  # "map/lily.initial_place"
    depth: int  # 1 for direct children of the flow root
    count: int
    total_s: float  # inclusive
    exclusive_s: float

    @property
    def name(self) -> str:
        """The last path segment (the phase's own name)."""
        return self.path.rsplit("/", 1)[-1]


@dataclass
class ObsReport:
    """Everything one flow run recorded."""

    flow: str  # "mis" | "lily"
    circuit: str
    wall_s: float
    phases: List[PhaseStat] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def phase_total(self) -> float:
        """Sum of top-level phase times (should track ``wall_s``)."""
        return sum(p.total_s for p in self.phases if p.depth == 1)

    def phase(self, path: str) -> Optional[PhaseStat]:
        """The stat row at an exact phase path (``None`` when absent)."""
        for p in self.phases:
            if p.path == path:
                return p
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready plain-dict form (inverse of the merge input)."""
        return {
            "flow": self.flow,
            "circuit": self.circuit,
            "wall_s": self.wall_s,
            "phases": [
                {
                    "path": p.path,
                    "depth": p.depth,
                    "count": p.count,
                    "total_s": p.total_s,
                    "exclusive_s": p.exclusive_s,
                }
                for p in self.phases
            ],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    def to_json(self) -> str:
        """``to_dict`` rendered as indented JSON text."""
        return json.dumps(self.to_dict(), indent=2)

    def format_table(self) -> str:
        """The human-readable ``--profile`` breakdown."""
        lines = [
            f"=== profile: {self.circuit} — {self.flow} "
            f"({self.wall_s:.3f}s wall) ==="
        ]
        lines.append(
            f"{'phase':<28}{'calls':>7}{'total s':>10}{'excl s':>10}{'%':>6}"
        )
        for p in self.phases:
            indent = "  " * (p.depth - 1)
            share = 100.0 * p.total_s / self.wall_s if self.wall_s else 0.0
            lines.append(
                f"{indent + p.name:<28}{p.count:>7}{p.total_s:>10.3f}"
                f"{p.exclusive_s:>10.3f}{share:>6.1f}"
            )
        covered = self.phase_total()
        lines.append(
            f"{'(phases sum)':<28}{'':>7}{covered:>10.3f}{'':>10}"
            f"{100.0 * covered / self.wall_s if self.wall_s else 0.0:>6.1f}"
        )
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name:<34}{self.counters[name]:>12}")
        if self.gauges:
            lines.append("gauges:")
            for name in sorted(self.gauges):
                lines.append(f"  {name:<34}{self.gauges[name]:>12.3f}")
        if self.histograms:
            lines.append("histograms:")
            for name in sorted(self.histograms):
                h = self.histograms[name]
                row = (
                    f"  {name:<34}n={h.get('count', 0):<8.0f}"
                    f"mean={h.get('mean', 0.0):<10.3f}"
                    f"min={h.get('min', 0.0):<10.3f}"
                    f"max={h.get('max', 0.0):<.3f}"
                )
                if "p50" in h:
                    row += (f"  p50={h['p50']:<10.3g}"
                            f"p90={h.get('p90', 0.0):<10.3g}"
                            f"p99={h.get('p99', 0.0):<.3g}")
                lines.append(row)
        return "\n".join(lines)


def _aggregate(root: Span) -> List[PhaseStat]:
    """Fold the span tree into path-keyed rows, document order."""
    rows: Dict[str, PhaseStat] = {}
    order: List[str] = []

    def visit(span: Span, prefix: str, depth: int) -> None:
        path = f"{prefix}{span.name}" if prefix else span.name
        stat = rows.get(path)
        if stat is None:
            stat = rows[path] = PhaseStat(path, depth, 0, 0.0, 0.0)
            order.append(path)
        stat.count += 1
        stat.total_s += span.duration
        if depth >= MAX_TABLE_DEPTH:
            # Fold deeper descendants into this row's exclusive time.
            stat.exclusive_s += span.duration
            return
        stat.exclusive_s += span.exclusive
        for child in span.children:
            visit(child, f"{path}/", depth + 1)

    for child in root.children:
        visit(child, "", 1)
    return [rows[path] for path in order]


def build_report(
    root: Span,
    session: ObsSession,
    counters_before: Optional[Dict[str, int]] = None,
    flow: str = "",
    circuit: str = "",
) -> ObsReport:
    """Freeze the subtree under ``root`` plus the metric movement.

    ``counters_before`` is a pre-flow snapshot; the report holds only the
    delta so consecutive flows in one session stay separable.  Gauges and
    histograms are session-cumulative (a gauge's last value and a
    histogram's min/max cannot be meaningfully differenced).
    """
    counters_before = counters_before or {}
    counters: Dict[str, int] = {}
    for name, value in session.metrics.snapshot_counters().items():
        delta = value - counters_before.get(name, 0)
        if delta:
            counters[name] = delta
    return ObsReport(
        flow=flow or str(root.attrs.get("mapper", "")),
        circuit=circuit or str(root.attrs.get("circuit", "")),
        wall_s=root.duration,
        phases=_aggregate(root),
        counters=counters,
        gauges={k: g.value for k, g in session.metrics.gauges.items()},
        histograms={
            k: h.summary() for k, h in session.metrics.histograms.items()
        },
    )


def merge_reports(reports: List[ObsReport]) -> Optional[ObsReport]:
    """Fold several per-flow reports into one suite-level profile.

    Used by the process-parallel table drivers, which collect one
    :class:`ObsReport` per circuit per flow from the workers and present
    them as a single ``--profile`` table.  Semantics: phase rows merge by
    path (counts and times sum; first appearance fixes the order),
    counters sum, gauges keep the last report's value (they are
    point-in-time readings), histograms combine bucket-exactly via
    :func:`repro.obs.metrics.merge_histogram_summaries` (counts and
    sums add, extremes combine, percentiles recompute from the merged
    buckets).  Reports whose metric key sets differ merge fine — every
    name is folded independently, and old-schema histogram summaries
    without bucket counts still combine count/mean/min/max.  ``wall_s``
    is the *sum* of the member walls — total work performed, not
    elapsed time, which under ``--procs`` is smaller.
    """
    reports = [r for r in reports if r is not None]
    if not reports:
        return None
    merged = ObsReport(
        flow=reports[0].flow if all(
            r.flow == reports[0].flow for r in reports) else "suite",
        circuit="suite" if len(reports) > 1 else reports[0].circuit,
        wall_s=0.0,
    )
    phase_by_path: Dict[str, PhaseStat] = {}
    for report in reports:
        merged.wall_s += report.wall_s
        for p in report.phases:
            stat = phase_by_path.get(p.path)
            if stat is None:
                stat = PhaseStat(p.path, p.depth, 0, 0.0, 0.0)
                phase_by_path[p.path] = stat
                merged.phases.append(stat)
            stat.count += p.count
            stat.total_s += p.total_s
            stat.exclusive_s += p.exclusive_s
        for name, value in report.counters.items():
            merged.counters[name] = merged.counters.get(name, 0) + value
        merged.gauges.update(report.gauges)
        for name, h in report.histograms.items():
            got = merged.histograms.get(name)
            if got is None:
                merged.histograms[name] = dict(h)
                continue
            merge_histogram_summaries(got, h)
    return merged
