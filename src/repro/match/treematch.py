"""Structural tree matching of pattern graphs on the subject graph.

A *match* anchors a pattern tree's root at a subject node: interior pattern
nodes must coincide with subject NAND2/INV nodes (commutatively for NAND),
and pattern leaves bind to arbitrary subject nodes, one per cell pin.
Repeated pins in a pattern (e.g. the shared ``!c`` of an AOI21) must bind
to the same subject node; distinct pins must bind distinct nodes.

Two covering regimes use the same matcher:

* **tree mode** (DAGON): a match may not cross a multi-fanout stem — every
  covered non-root node must have exactly one fanout.
* **cone mode** (MIS, Lily): matches may cover stems; nodes whose signal is
  still needed elsewhere get duplicated by later matches (Section 2's dove
  reincarnation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.library.patterns import (
    CellPattern,
    PatternKind,
    PatternNode,
    PatternSet,
)
from repro.network.subject import SubjectGraph, SubjectNode, SubjectNodeType
from repro.obs import OBS

__all__ = ["Match", "Matcher", "find_matches"]

_KIND_FOR_TYPE = {
    SubjectNodeType.NAND2: PatternKind.NAND2,
    SubjectNodeType.INV: PatternKind.INV,
}


@dataclass(frozen=True)
class Match:
    """A pattern bound at a subject node.

    Attributes:
        pattern: the pattern graph (cell + tree).
        root: subject node where the pattern root (the cell output) sits.
        inputs: subject nodes feeding the cell, indexed by cell pin.
        covered: subject nodes merged into this gate (root included).
    """

    pattern: CellPattern
    root: SubjectNode
    inputs: Tuple[SubjectNode, ...]
    covered: FrozenSet[SubjectNode]

    @property
    def cell(self):
        return self.pattern.cell

    @property
    def inner(self) -> FrozenSet[SubjectNode]:
        """Covered nodes other than the root (the prospective doves)."""
        return self.covered - {self.root}

    def __repr__(self) -> str:
        ins = ",".join(n.name for n in self.inputs)
        return f"Match({self.cell.name} @ {self.root.name} <- [{ins}])"


def _match_pattern(
    pnode: PatternNode, snode: SubjectNode
) -> Iterator[Tuple[Dict[int, SubjectNode], FrozenSet[SubjectNode]]]:
    """Yield (pin binding, covered interior nodes) for pattern-at-node."""
    if pnode.kind is PatternKind.LEAF:
        yield {pnode.pin_index: snode}, frozenset()
        return
    expected = _KIND_FOR_TYPE.get(snode.type)
    if expected is not pnode.kind:
        return
    if pnode.kind is PatternKind.INV:
        for binding, covered in _match_pattern(pnode.children[0], snode.fanins[0]):
            yield binding, covered | {snode}
        return
    # NAND2: try both child orders (commutative matching).
    pa, pb = pnode.children
    fa, fb = snode.fanins
    orders = [(fa, fb)]
    if fa is not fb:
        orders.append((fb, fa))
    emitted: Set[tuple] = set()
    for sa, sb in orders:
        for bind_a, cov_a in _match_pattern(pa, sa):
            for bind_b, cov_b in _match_pattern(pb, sb):
                merged = _merge_bindings(bind_a, bind_b)
                if merged is None:
                    continue
                covered = cov_a | cov_b | {snode}
                key = (tuple(sorted((k, v.uid) for k, v in merged.items())),
                       tuple(sorted(n.uid for n in covered)))
                if key in emitted:
                    continue
                emitted.add(key)
                yield merged, covered


def _merge_bindings(
    a: Dict[int, SubjectNode], b: Dict[int, SubjectNode]
) -> Optional[Dict[int, SubjectNode]]:
    """Union two pin bindings; ``None`` if the same pin binds differently."""
    merged = dict(a)
    for pin, node in b.items():
        existing = merged.get(pin)
        if existing is None:
            merged[pin] = node
        elif existing is not node:
            return None
    return merged


def _binding_is_injective(binding: Dict[int, SubjectNode]) -> bool:
    """Distinct pins must bind to distinct subject nodes."""
    nodes = list(binding.values())
    return len({n.uid for n in nodes}) == len(nodes)


class Matcher:
    """Finds all legal matches of a pattern set at subject nodes."""

    def __init__(self, patterns: PatternSet, tree_mode: bool = False) -> None:
        self.patterns = patterns
        self.tree_mode = tree_mode

    def matches_at(self, snode: SubjectNode) -> List[Match]:
        """All matches whose root is ``snode``."""
        kind = _KIND_FOR_TYPE.get(snode.type)
        if kind is None:
            return []
        return self._enumerate(snode, self.patterns.rooted_at(kind))

    def _enumerate(
        self, snode: SubjectNode, candidates: Sequence[CellPattern]
    ) -> List[Match]:
        """Try ``candidates`` at ``snode``; order follows the candidate
        list, so a filtered-but-complete candidate subset yields exactly
        the full-library match list."""
        found: List[Match] = []
        seen: Set[tuple] = set()
        observing = OBS.enabled
        if observing:
            OBS.metrics.counter("match.calls").inc()
            OBS.metrics.counter("match.patterns_tried").inc(len(candidates))
        for pattern in candidates:
            for binding, covered in _match_pattern(pattern.root, snode):
                if len(binding) != pattern.cell.num_inputs:
                    continue
                if not _binding_is_injective(binding):
                    continue
                # A leaf may not also be an interior node of the match.
                if any(node in covered for node in binding.values()):
                    continue
                if self.tree_mode and not _within_tree(snode, covered):
                    continue
                inputs = tuple(
                    binding[i] for i in range(pattern.cell.num_inputs)
                )
                key = (pattern.cell.name, tuple(n.uid for n in inputs),
                       tuple(sorted(n.uid for n in covered)))
                if key in seen:
                    continue
                seen.add(key)
                found.append(Match(pattern, snode, inputs, frozenset(covered)))
        if observing:
            OBS.metrics.counter("match.found").inc(len(found))
        return found

    def all_matches(self, graph: SubjectGraph) -> Dict[int, List[Match]]:
        """Matches for every gate node, keyed by subject node uid."""
        return {
            node.uid: self.matches_at(node)
            for node in graph.nodes
            if node.is_gate
        }


def _within_tree(root: SubjectNode, covered: FrozenSet[SubjectNode]) -> bool:
    """Tree-mode legality: no covered non-root node may be a stem."""
    for node in covered:
        if node is root:
            continue
        if node.num_fanouts != 1:
            return False
    return True


def find_matches(
    snode: SubjectNode, patterns: PatternSet, tree_mode: bool = False
) -> List[Match]:
    """Convenience wrapper: all matches rooted at one subject node."""
    return Matcher(patterns, tree_mode).matches_at(snode)
