"""Matching: bind library cells onto subject-graph nodes — structurally
(DAGON pattern trees) or Boolean (cut enumeration + P-canonical lookup)."""

from repro.match.treematch import Match, Matcher, find_matches
from repro.match.boolmatch import BooleanMatcher, UnionMatcher

__all__ = [
    "Match",
    "Matcher",
    "find_matches",
    "BooleanMatcher",
    "UnionMatcher",
]
