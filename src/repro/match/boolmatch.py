"""Boolean matching by cut enumeration (the DAGON alternative).

Structural tree matching only finds a cell where the subject graph happens
to be decomposed in one of the cell's pattern shapes.  Boolean matching
sidesteps that: enumerate the k-feasible *cuts* of every subject node,
compute each cut's function, and look it up — canonical under input
permutation (P-equivalence) — in a table of library-cell functions.  Any
cone computing a library function matches, whatever its shape.

Input/output negations are deliberately not canonised away: a negated
match would need inverters the covering engine would have to synthesise;
restricting to P-equivalence keeps Boolean matches drop-in compatible
with structural :class:`~repro.match.treematch.Match` objects.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.library.cell import Cell, Library
from repro.library.patterns import CellPattern, pattern_set_for
from repro.match.treematch import Match
from repro.network.logic import TruthTable
from repro.network.subject import SubjectGraph, SubjectNode

__all__ = ["BooleanMatcher", "enumerate_cuts", "cut_function", "cut_cone"]

#: Cuts retained per node during enumeration (priority: fewer leaves).
DEFAULT_CUTS_PER_NODE = 24


def enumerate_cuts(
    graph: SubjectGraph,
    k: int,
    cuts_per_node: int = DEFAULT_CUTS_PER_NODE,
) -> Dict[int, List[FrozenSet[SubjectNode]]]:
    """All k-feasible cuts per gate node (trivial cut excluded).

    Standard bottom-up enumeration: a cut of a NAND is the union of one
    cut from each fanin (fanin trivial cuts give the direct-fanin cut);
    the per-node list is pruned to ``cuts_per_node`` smallest.
    """
    # For every node we track its cut set *including* the trivial cut
    # {node}, which serves as the leaf choice for fanouts.
    table: Dict[int, List[FrozenSet[SubjectNode]]] = {}
    for node in graph.topological_order():
        if node.is_po:
            continue
        if not node.is_gate:
            table[node.uid] = [frozenset([node])]
            continue
        merged: Set[FrozenSet[SubjectNode]] = set()
        fanin_cut_lists = [
            table.get(f.uid, [frozenset([f])]) for f in node.fanins
        ]
        for combo in itertools.product(*fanin_cut_lists):
            union: FrozenSet[SubjectNode] = frozenset().union(*combo)
            if len(union) <= k:
                merged.add(union)
        ordered = sorted(
            merged, key=lambda c: (len(c), sorted(n.uid for n in c))
        )[:cuts_per_node]
        table[node.uid] = [frozenset([node])] + ordered
    # Strip the trivial cuts from the externally visible result.
    return {
        uid: [c for c in cuts if c != frozenset([graph_node])]
        for uid, cuts in table.items()
        for graph_node in [_node_of(graph, uid)]
        if _node_of(graph, uid).is_gate
    }


def _node_of(graph: SubjectGraph, uid: int) -> SubjectNode:
    # Nodes are append-only; uid indexes creation order but sweeping can
    # leave gaps, so use a lazily built map.
    cache = getattr(graph, "_uid_map", None)
    if cache is None or len(cache) != len(graph.nodes):
        cache = {n.uid: n for n in graph.nodes}
        graph._uid_map = cache  # type: ignore[attr-defined]
    return cache[uid]


def _cone_nodes(
    root: SubjectNode, leaves: FrozenSet[SubjectNode]
) -> Optional[List[SubjectNode]]:
    """Interior nodes of the cut cone in topological order (root last).

    Returns ``None`` if a path from the root escapes to a PI/constant not
    in the leaf set (not a valid cut — cannot happen for enumerated cuts,
    checked defensively).
    """
    order: List[SubjectNode] = []
    state: Dict[int, int] = {}

    def visit(node: SubjectNode) -> bool:
        if node in leaves:
            return True
        if not node.is_gate:
            return False
        s = state.get(node.uid, 0)
        if s == 2:
            return True
        state[node.uid] = 1
        for f in node.fanins:
            if not visit(f):
                return False
        state[node.uid] = 2
        order.append(node)
        return True

    if not visit(root):
        return None
    return order


def cut_cone(
    root: SubjectNode, leaves: FrozenSet[SubjectNode]
) -> Optional[List[SubjectNode]]:
    """Public alias of :func:`_cone_nodes` for the cut-covering backend.

    The cut mapper (:mod:`repro.map.cuts`) needs the interior of a cut to
    drive the hawk/dove lifecycle exactly as tree matches do; exposing
    the traversal here keeps both matchers on one definition of a cut's
    cone.
    """
    return _cone_nodes(root, leaves)


def cut_function(
    root: SubjectNode, leaves: Sequence[SubjectNode]
) -> Optional[TruthTable]:
    """Truth table of ``root`` over the ordered cut leaves."""
    cone = _cone_nodes(root, frozenset(leaves))
    if cone is None:
        return None
    n = len(leaves)
    values: Dict[int, TruthTable] = {
        leaf.uid: TruthTable.variable(i, n) for i, leaf in enumerate(leaves)
    }
    for node in cone:
        fanin_tts = [values[f.uid] for f in node.fanins]
        local = node.truth_table()
        # Compose: evaluate the (1- or 2-input) local function.
        if len(fanin_tts) == 1:
            values[node.uid] = ~fanin_tts[0] if local == TruthTable(1, 0b01) \
                else fanin_tts[0]
        else:
            values[node.uid] = fanin_tts[0].nand(fanin_tts[1])
    return values[root.uid]


class BooleanMatcher:
    """Cut-based P-equivalent matching against a library.

    Drop-in alternative to the structural
    :class:`~repro.match.treematch.Matcher`: ``matches_at`` returns the
    same :class:`Match` objects, so either can drive the covering engine.
    Requires :meth:`bind` (or a first ``matches_at`` call through
    :meth:`all_matches`) against the subject graph to enumerate cuts.
    """

    def __init__(
        self,
        library: Library,
        cuts_per_node: int = DEFAULT_CUTS_PER_NODE,
        tree_mode: bool = False,
    ) -> None:
        self.library = library
        self.cuts_per_node = cuts_per_node
        self.tree_mode = tree_mode
        self.k = library.max_fanin()
        # P-canonical function -> cells computing it.
        self._cells_by_p: Dict[Tuple[int, int], List[Cell]] = {}
        for cell in library:
            key = self._p_key(cell.truth_table)
            self._cells_by_p.setdefault(key, []).append(cell)
        patterns = pattern_set_for(library)
        self._a_pattern: Dict[str, CellPattern] = {}
        for pattern in patterns.patterns:
            self._a_pattern.setdefault(pattern.cell.name, pattern)
        self._graph: Optional[SubjectGraph] = None
        self._cuts: Dict[int, List[FrozenSet[SubjectNode]]] = {}

    @staticmethod
    def _p_key(tt: TruthTable) -> Tuple[int, int]:
        live = tt.shrink_to_support()[0]
        canonical = live.p_canonical()
        return (canonical.num_inputs, canonical.bits)

    def bind(self, graph: SubjectGraph) -> None:
        """Enumerate cuts for a subject graph (required before matching)."""
        self._graph = graph
        self._cuts = enumerate_cuts(graph, self.k, self.cuts_per_node)

    def matches_at(self, node: SubjectNode) -> List[Match]:
        if not node.is_gate:
            return []
        if self._graph is None:
            raise RuntimeError("BooleanMatcher.bind(graph) must run first")
        found: List[Match] = []
        seen: Set[tuple] = set()
        for cut in self._cuts.get(node.uid, []):
            leaves = sorted(cut, key=lambda n: n.uid)
            tt = cut_function(node, leaves)
            if tt is None:
                continue
            live_tt, keep = tt.shrink_to_support()
            if len(keep) != len(leaves):
                continue  # cut with vacuous leaves; a smaller cut covers it
            for cell in self._cells_by_p.get(self._p_key(live_tt), []):
                if cell.num_inputs != len(leaves):
                    continue
                perm = self._pin_assignment(cell, live_tt)
                if perm is None:
                    continue
                inputs = tuple(leaves[perm[i]] for i in range(len(leaves)))
                cone = _cone_nodes(node, frozenset(leaves)) or []
                covered = frozenset(cone)
                if self.tree_mode and any(
                    n is not node and n.num_fanouts != 1 for n in covered
                ):
                    continue
                key = (cell.name, tuple(n.uid for n in inputs))
                if key in seen:
                    continue
                seen.add(key)
                found.append(
                    Match(self._a_pattern[cell.name], node, inputs, covered)
                )
        return found

    def all_matches(self, graph: SubjectGraph) -> Dict[int, List[Match]]:
        self.bind(graph)
        return {
            node.uid: self.matches_at(node)
            for node in graph.nodes
            if node.is_gate
        }

    @staticmethod
    def _pin_assignment(cell: Cell, tt: TruthTable) -> Optional[Tuple[int, ...]]:
        """Permutation ``perm`` with cell(x_pin) == cut(leaf perm[pin])."""
        n = cell.num_inputs
        for perm in itertools.permutations(range(n)):
            if tt.permuted(perm) == cell.truth_table:
                # cell pin i reads leaf perm[i]... verify orientation:
                # permuted(perm): new var j reads old var perm[j], i.e.
                # cell pin j corresponds to cut leaf perm[j].
                return perm
        return None


class UnionMatcher:
    """Union of a structural and a Boolean matcher (deduplicated)."""

    def __init__(self, structural, boolean: BooleanMatcher) -> None:
        self.structural = structural
        self.boolean = boolean

    def bind(self, graph: SubjectGraph) -> None:
        self.boolean.bind(graph)

    def matches_at(self, node: SubjectNode) -> List[Match]:
        merged: Dict[tuple, Match] = {}
        for match in self.structural.matches_at(node) + \
                self.boolean.matches_at(node):
            key = (match.cell.name, tuple(n.uid for n in match.inputs),
                   tuple(sorted(n.uid for n in match.covered)))
            merged.setdefault(key, match)
        return list(merged.values())
