"""Planar geometry primitives shared by placement, routing and Lily's cost model.

The paper works with a *point model* of gates (Section 3.1): every gate is a
single ``(x, y)`` coordinate, pins coincide with the gate centre.  All wire
estimates therefore reduce to geometry over points and axis-aligned
rectangles.  This module provides those primitives plus the two norms used in
Section 3.2 (Manhattan and Euclidean) and the separable-median solution of the
optimal point-location problem for the Manhattan norm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "Point",
    "Rect",
    "manhattan",
    "euclidean",
    "bounding_rect",
    "center_of_mass",
    "median_point",
    "rect_distance_x",
    "rect_distance_y",
    "rect_manhattan_distance",
    "optimal_point_manhattan",
    "optimal_point_euclidean",
]


@dataclass(frozen=True)
class Point:
    """An immutable 2-D point.

    Gates in the point model, pad locations and placement positions are all
    represented as :class:`Point` instances.
    """

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        """Return this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    def __iter__(self):
        yield self.x
        yield self.y


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle given by lower-left and upper-right corners.

    Used for the fanin/fanout enclosing rectangles of Section 3.3 and for
    placement regions during recursive bi-partitioning.
    """

    lx: float
    ly: float
    ux: float
    uy: float

    def __post_init__(self) -> None:
        if self.lx > self.ux or self.ly > self.uy:
            raise ValueError(
                f"malformed rectangle: ({self.lx},{self.ly})-({self.ux},{self.uy})"
            )

    @property
    def width(self) -> float:
        return self.ux - self.lx

    @property
    def height(self) -> float:
        return self.uy - self.ly

    @property
    def half_perimeter(self) -> float:
        """Half the perimeter: the HPWL of the points the rect encloses."""
        return self.width + self.height

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.lx + self.ux) / 2.0, (self.ly + self.uy) / 2.0)

    def contains(self, p: Point, tol: float = 0.0) -> bool:
        """Return whether ``p`` lies inside the rectangle (inclusive)."""
        return (
            self.lx - tol <= p.x <= self.ux + tol
            and self.ly - tol <= p.y <= self.uy + tol
        )

    def expanded_to(self, p: Point) -> "Rect":
        """Return the smallest rectangle containing both ``self`` and ``p``."""
        return Rect(
            min(self.lx, p.x),
            min(self.ly, p.y),
            max(self.ux, p.x),
            max(self.uy, p.y),
        )

    def union(self, other: "Rect") -> "Rect":
        """Return the bounding box of two rectangles."""
        return Rect(
            min(self.lx, other.lx),
            min(self.ly, other.ly),
            max(self.ux, other.ux),
            max(self.uy, other.uy),
        )

    @staticmethod
    def from_point(p: Point) -> "Rect":
        """A degenerate (zero-area) rectangle at a single point."""
        return Rect(p.x, p.y, p.x, p.y)


def manhattan(a: Point, b: Point) -> float:
    """Manhattan (L1, rectilinear) distance between two points."""
    return abs(a.x - b.x) + abs(a.y - b.y)


def euclidean(a: Point, b: Point) -> float:
    """Euclidean (L2) distance between two points."""
    return math.hypot(a.x - b.x, a.y - b.y)


def bounding_rect(points: Iterable[Point]) -> Rect:
    """Minimum enclosing rectangle of a non-empty point set (Section 3.3)."""
    pts = list(points)
    if not pts:
        raise ValueError("bounding_rect() of an empty point set")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return Rect(min(xs), min(ys), max(xs), max(ys))


def center_of_mass(points: Sequence[Point]) -> Point:
    """Centre of mass of a non-empty point set (CM-of-Merged update)."""
    if not points:
        raise ValueError("center_of_mass() of an empty point set")
    n = float(len(points))
    return Point(sum(p.x for p in points) / n, sum(p.y for p in points) / n)


def _median(values: List[float]) -> float:
    """Median of a non-empty list; even counts take the interval midpoint."""
    vals = sorted(values)
    n = len(vals)
    mid = n // 2
    if n % 2 == 1:
        return vals[mid]
    return (vals[mid - 1] + vals[mid]) / 2.0


def median_point(points: Sequence[Point]) -> Point:
    """Coordinate-wise median, the L1 analogue of the centre of mass."""
    if not points:
        raise ValueError("median_point() of an empty point set")
    return Point(_median([p.x for p in points]), _median([p.y for p in points]))


def rect_distance_x(x: float, r: Rect) -> float:
    """Horizontal distance from abscissa ``x`` to rectangle ``r``.

    This is the separable ``f(x)`` of Section 3.2 (up to the constant
    ``-|r.ux - r.lx|`` term, which the paper drops):

        ``f(x) = (|r.lx - x| + |r.ux - x| - (r.ux - r.lx)) / 2``

    It is zero when ``x`` lies within the rectangle's x-extent and grows
    linearly outside.
    """
    return (abs(r.lx - x) + abs(r.ux - x) - (r.ux - r.lx)) / 2.0


def rect_distance_y(y: float, r: Rect) -> float:
    """Vertical distance from ordinate ``y`` to rectangle ``r``."""
    return (abs(r.ly - y) + abs(r.uy - y) - (r.uy - r.ly)) / 2.0


def rect_manhattan_distance(p: Point, r: Rect) -> float:
    """Manhattan distance from point ``p`` to rectangle ``r`` (0 if inside)."""
    return rect_distance_x(p.x, r) + rect_distance_y(p.y, r)


def optimal_point_manhattan(rects: Sequence[Rect]) -> Point:
    """Point minimising the summed Manhattan distance to a set of rectangles.

    Section 3.2: in the Manhattan norm the distance function is separable in
    ``x`` and ``y``; dropping constants, the problem per axis reduces to
    minimising ``sum_i |z_i - z|`` where ``z_i`` ranges over the left *and*
    right (resp. bottom/top) corner coordinates of each rectangle.  The
    optimum is the median of that coordinate multiset — a special, linear-tree
    case of Hakimi's graph-median problem [1].
    """
    if not rects:
        raise ValueError("optimal_point_manhattan() of an empty rectangle set")
    xs: List[float] = []
    ys: List[float] = []
    for r in rects:
        xs.extend((r.lx, r.ux))
        ys.extend((r.ly, r.uy))
    return Point(_median(xs), _median(ys))


def optimal_point_euclidean(rects: Sequence[Rect]) -> Point:
    """Approximate Euclidean optimal point for a set of rectangles.

    The exact problem partitions the plane into ``N^2`` subregions, each a
    linearly-constrained quadratic program — too slow to run inside the
    mapper's inner loop (Section 3.2).  The paper's approximation, implemented
    here, replaces each rectangle by its centre point and returns the centre
    of mass of those centres.
    """
    if not rects:
        raise ValueError("optimal_point_euclidean() of an empty rectangle set")
    centers = [r.center for r in rects]
    return center_of_mass(centers)
