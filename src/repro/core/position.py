"""Incremental mapPosition calculation (Section 3.2).

Two options, as in the paper:

* **CM-of-Merged** — place the match at the centre of mass of the subject
  nodes it covers, using their placePositions.  Always references the
  balanced global placement, so the evolving placement stays balanced;
  pessimistic because the gate position ignores its actual neighbours.
* **CM-of-Fans** — place the match at the point minimising the summed
  distance to its fanin and fanout rectangles.  Manhattan norm: the exact
  separable-median solution; Euclidean norm: the paper's centre-of-mass-of-
  rectangle-centres approximation (the exact problem needs N² constrained
  QPs — too slow inside the mapper).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.geometry import (
    Point,
    Rect,
    center_of_mass,
    optimal_point_euclidean,
    optimal_point_manhattan,
)
from repro.core.state import PlacementState
from repro.network.subject import SubjectNode

__all__ = ["cm_of_merged", "cm_of_fans"]


def cm_of_merged(
    covered: Iterable[SubjectNode], state: PlacementState
) -> Point:
    """Centre of mass of the covered nodes' placePositions."""
    points = [state.place_position(node) for node in covered]
    return center_of_mass(points)


def cm_of_fans(
    fanin_rects: Sequence[Rect],
    fanout_rect: Optional[Rect],
    norm: str = "manhattan",
) -> Point:
    """Optimal match position w.r.t. its fanin/fanout rectangles.

    Args:
        fanin_rects: one rectangle per match input net.
        fanout_rect: rectangle of the output net (``None`` if fully
            absorbed by the match).
        norm: ``manhattan`` (exact median solution) or ``euclidean``
            (centre-of-mass approximation).
    """
    rects: List[Rect] = list(fanin_rects)
    if fanout_rect is not None:
        rects.append(fanout_rect)
    if not rects:
        raise ValueError("cannot position a match with no fan rectangles")
    if norm == "manhattan":
        return optimal_point_manhattan(rects)
    if norm == "euclidean":
        return optimal_point_euclidean(rects)
    raise ValueError(f"unknown norm: {norm!r}")
