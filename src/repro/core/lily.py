"""Lily: layout-driven technology mapping (Sections 3 and 4).

Both mappers keep a live placement of the inchoate network:

1. ``on_begin`` fixes I/O pads, predicts the layout image and runs the
   GORDIAN-style global placement of the subject graph (Section 3.1).
2. Every candidate match gets a tentative *mapPosition* (CM-of-Merged or
   CM-of-Fans, Section 3.2) and a wire cost from its fanin rectangles
   (Sections 3.3–3.4).
3. Committed matches record their mapPosition; later cones see hawks at
   their real locations.  Optionally the partially mapped network is
   re-placed every N cones.

:class:`LilyAreaMapper` minimises ``area + w * wire`` (Section 3);
:class:`LilyDelayMapper` minimises arrival times with placement-derived
wire capacitance and the LI/LD block-arrival split (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.area.estimate import subject_image
from repro.core.position import cm_of_fans, cm_of_merged
from repro.core.rectangles import fanin_rectangle, fanout_rectangle, true_fanouts
from repro.core.state import PlacementState
from repro.core.wirecost import match_wire_cost
from repro.geometry import Point, Rect, _median
from repro.library.cell import Library
from repro.map.base import BaseMapper, Solution
from repro.map.lifecycle import NodeState
from repro.map.netlist import MappedNode
from repro.match.treematch import Match
from repro.network.subject import SubjectGraph, SubjectNode
from repro.obs import OBS
from repro.perf.netcache import NetCache
from repro.place.global_place import GlobalPlacer
from repro.place.hypergraph import subject_netlist
from repro.place.pads import assign_pads
from repro.route.wirelength import chung_hwang_factor
from repro.timing.model import WireCapModel

__all__ = ["LilyOptions", "LilyAreaMapper", "LilyDelayMapper"]


@dataclass
class LilyOptions:
    """Tuning knobs of the Lily cost model.

    Attributes:
        position_update: ``cm_of_fans`` (default) or ``cm_of_merged``.
        norm: ``manhattan`` (separable median) or ``euclidean``
            (centre-of-mass approximation) for CM-of-Fans.
        wire_model: ``halfperim`` (Chung–Hwang-corrected half-perimeter)
            or ``spanning`` (rectilinear spanning tree).
        wire_weight: routing area per unit wire length (µm² per µm) —
            converts the wire estimate into area-cost units; Section 5
            suggests reducing it when the estimate misleads the mapper,
            and measurement bears that out: the default is deliberately
            below the physical track pitch (see EXPERIMENTS.md).
        use_cone_ordering: apply the Section 3.5 cone order.  Off by
            default: on our substrate the ordering's interaction with
            hawk reuse costs more area/wire than its estimate-freshness
            buys (EXPERIMENTS.md ablation A3).
        replace_interval: re-place the partially mapped network every N
            cones (0 disables; Section 3.2's balancing refresh).
        min_cells_per_region: global-placement stopping parameter.
    """

    position_update: str = "cm_of_fans"
    norm: str = "manhattan"
    wire_model: str = "halfperim"
    wire_weight: float = 2.0
    use_cone_ordering: bool = False
    replace_interval: int = 0
    min_cells_per_region: int = 8


class _LilyMixin:
    """Placement plumbing shared by the area and delay mappers."""

    def _init_lily(
        self,
        options: Optional[LilyOptions],
        region: Optional[Rect],
        pad_positions: Optional[Dict[str, Point]],
    ) -> None:
        self.options = options or LilyOptions()
        self._region = region
        self._pad_positions = pad_positions
        self.state: Optional[PlacementState] = None
        self._cones_since_replacement = 0
        #: True-fanout cache, valid for one cone's DP pass (life-cycle
        #: states only change at commit time, after the pass).  Replaced
        #: by the cross-cone :class:`NetCache` when
        #: ``perf.incremental_nets`` is on.
        self._tf_cache: Dict[int, List[SubjectNode]] = {}
        self._netcache: Optional[NetCache] = None
        #: Cached quadratic-system assembly reused by every periodic
        #: re-place (anchors only touch the diagonal/rhs).
        self._quad_system = None

    def _true_fanouts(self, node: SubjectNode) -> List[SubjectNode]:
        if self._netcache is not None:
            return self._netcache.consumers(node)
        cached = self._tf_cache.get(node.uid)
        if cached is None:
            cached = true_fanouts(node, self.lifecycle)
            self._tf_cache[node.uid] = cached
        return cached

    def on_cone_begin(self, po: SubjectNode) -> None:
        if self._netcache is None:
            self._tf_cache.clear()

    # -- global placement of the inchoate network (Section 3.1) -------------

    def on_begin(self, subject: SubjectGraph) -> None:
        region = self._region or subject_image(len(subject.gates))
        pads = self._pad_positions
        if pads is None:
            pads = assign_pads(subject, region)
        self._netlist = subject_netlist(subject, pads)
        placer = GlobalPlacer(
            min_cells_per_region=self.options.min_cells_per_region,
            vec=getattr(self.perf, "vec_place", True),
        )
        with OBS.span("lily.initial_place", gates=len(subject.gates)):
            placement = placer.place(self._netlist, region)
        self.state = PlacementState(region, placement.positions, pads)
        self.state.bind(subject)
        self.placement_region = region
        self.pad_positions = pads
        if self.perf.incremental_nets:
            self._netcache = NetCache(self.state, self.lifecycle)

    # -- incremental updating (Section 3.2) -----------------------------------

    def _input_position(self, node: SubjectNode, solution: Solution) -> Point:
        """mapPosition of the best gate matching at a match input."""
        if solution.position is not None:
            return solution.position
        return self.state.best_position(node)

    def _tentative_position(
        self, node: SubjectNode, match: Match, inputs: Sequence[Solution]
    ) -> Point:
        if OBS.enabled:
            OBS.metrics.counter("lily.position_evals").inc()
        if self.options.position_update == "cm_of_merged":
            return cm_of_merged(match.covered, self.state)
        if self.options.position_update != "cm_of_fans":
            raise ValueError(
                f"unknown position update: {self.options.position_update!r}"
            )
        rects = []
        for index, fanin in enumerate(match.inputs):
            if fanin.is_constant:
                continue
            rects.append(
                fanin_rectangle(
                    fanin,
                    match.covered,
                    self.state,
                    self.lifecycle,
                    fanin_position=self._input_position(fanin, inputs[index]),
                    consumers=self._true_fanouts(fanin),
                )
            )
        out_rect = fanout_rectangle(
            node, match.covered, self.state, self.lifecycle
        )
        if not rects and out_rect is None:
            return cm_of_merged(match.covered, self.state)
        return cm_of_fans(rects, out_rect, norm=self.options.norm)

    def position_for(self, node: SubjectNode, match: Match) -> Optional[Point]:
        solution = self.memo.get(node.uid)
        if solution is not None and solution.position is not None:
            return solution.position
        return cm_of_merged(match.covered, self.state)

    def on_commit(
        self, node: SubjectNode, solution: Solution, instance: MappedNode
    ) -> None:
        if instance.position is not None:
            self.state.set_map_position(node, instance.position)
        cache = self._netcache
        if cache is not None:
            # The root became a hawk (with a fresh map position) and the
            # inner nodes became doves: drop the net entries that saw them.
            cache.invalidate(node)
            if solution.match is not None:
                for inner in solution.match.inner:
                    cache.invalidate(inner)

    def on_cone_done(self, po: SubjectNode) -> None:
        interval = self.options.replace_interval
        if interval <= 0:
            return
        self._cones_since_replacement += 1
        if self._cones_since_replacement >= interval:
            self._cones_since_replacement = 0
            self._replace_partial()

    def _replace_partial(self) -> None:
        """Re-place the partially mapped network (Section 3.2).

        One quadratic solve with hawks pulled strongly toward their
        mapPositions; all gates (eggs and hawks alike) receive fresh
        placePositions, restoring balance after constructive updates.

        The system assembly is cached across re-places (only the hawk
        anchors change between calls), and with ``perf.warm_replace`` the
        solver starts from the current placePositions instead of solving
        cold — on the iterative-CG path (large netlists) that converges in
        far fewer iterations, at the price of matching a cold solve only
        to solver tolerance rather than bitwise.
        """
        if OBS.enabled:
            OBS.metrics.counter("lily.replacements").inc()
        anchors: Dict[str, Tuple[Point, float]] = {}
        for node in self.subject.nodes:
            if not node.is_gate:
                continue
            if self.lifecycle.state(node) is NodeState.HAWK:
                p = self.state.map_position(node)
                if p is not None:
                    anchors[node.name] = (p, 1.0)
        if self._quad_system is None:
            from repro.place.quadratic import QuadraticSystem

            self._quad_system = QuadraticSystem(
                self._netlist, self.placement_region,
                vec=getattr(self.perf, "vec_place", True),
            )
        initial: Optional[Dict[str, Point]] = None
        if getattr(self.perf, "warm_replace", False):
            state = self.state
            initial = {
                node.name: state.place_position(node)
                for node in self.subject.nodes
                if node.is_gate
            }
            if OBS.enabled:
                OBS.metrics.counter("perf.incremental.warm_replaces").inc()
        with OBS.span("lily.replace", anchors=len(anchors)):
            positions = self._quad_system.solve(anchors, initial=initial)
        for node in self.subject.nodes:
            if node.is_gate:
                p = positions.get(node.name)
                if p is not None:
                    self.state.set_place_position(node, p)
        if self._netcache is not None:
            self._netcache.clear()  # every gate may have moved


class LilyAreaMapper(_LilyMixin, BaseMapper):
    """Minimum-layout-area mapping (Section 3).

    ``aCost`` and ``wCost`` follow the paper's recursion; the combined DP
    objective is ``aCost + wire_weight * wCost``.
    """

    def __init__(
        self,
        library: Library,
        options: Optional[LilyOptions] = None,
        region: Optional[Rect] = None,
        pad_positions: Optional[Dict[str, Point]] = None,
        **kwargs,
    ) -> None:
        options = options or LilyOptions()
        kwargs.setdefault("use_cone_ordering", options.use_cone_ordering)
        super().__init__(library, **kwargs)
        self._init_lily(options, region, pad_positions)

    def evaluate_match(
        self, node: SubjectNode, match: Match, inputs: Sequence[Solution]
    ) -> Solution:
        if (
            self._netcache is not None
            and self.options.wire_model == "halfperim"
            and self.options.position_update == "cm_of_fans"
        ):
            return self._evaluate_fast(node, match, inputs)
        position = self._tentative_position(node, match, inputs)
        input_positions = [
            self._input_position(v, inputs[i])
            for i, v in enumerate(match.inputs)
        ]
        wire_increment = match_wire_cost(
            match,
            position,
            input_positions,
            self.state,
            self.lifecycle,
            model=self.options.wire_model,
            consumers_of=self._true_fanouts,
        )
        area = match.cell.area + sum(s.area for s in inputs)
        wire = wire_increment + sum(s.wire for s in inputs)
        cost = area + self.options.wire_weight * wire
        return Solution(
            node, match, cost=cost, area=area, wire=wire, position=position
        )

    def _evaluate_fast(
        self, node: SubjectNode, match: Match, inputs: Sequence[Solution]
    ) -> Solution:
        """The halfperim/CM-of-Fans cost, on cached net data.

        Bit-identical to the naive path: each input's fanin rectangle is
        the min/max fold of the cached pin points (min/max are
        order-independent), the wire rectangle is the same rectangle
        extended by the gate position (exactly ``extra_point``), and all
        summations run in the same order.  Asserted by the golden-
        equivalence tests.
        """
        if OBS.enabled:
            OBS.metrics.counter("lily.position_evals").inc()
        cache = self._netcache
        covered = match.covered
        covered_uids = {n.uid for n in covered}
        #: Per non-constant input: (lx, ly, ux, uy, len(remaining)).
        folds = []
        for index, fanin in enumerate(match.inputs):
            if fanin.is_constant:
                continue
            _, uids, xs, ys = cache.entry(fanin)
            fp = self._input_position(fanin, inputs[index])
            lx = ux = fp.x
            ly = uy = fp.y
            remaining = 0
            for uid, x, y in zip(uids, xs, ys):
                if uid in covered_uids:
                    continue
                remaining += 1
                if x < lx:
                    lx = x
                elif x > ux:
                    ux = x
                if y < ly:
                    ly = y
                elif y > uy:
                    uy = y
            folds.append((lx, ly, ux, uy, remaining))
        # Output-net rectangle over the cached direct-fanout points.
        out_uids, out_xs, out_ys = cache.out_entry(node)
        have_out = False
        olx = oly = oux = ouy = 0.0
        for uid, x, y in zip(out_uids, out_xs, out_ys):
            if uid in covered_uids:
                continue
            if not have_out:
                have_out = True
                olx = oux = x
                oly = ouy = y
                continue
            if x < olx:
                olx = x
            elif x > oux:
                oux = x
            if y < oly:
                oly = y
            elif y > ouy:
                ouy = y
        if not folds and not have_out:
            position = cm_of_merged(covered, self.state)
        elif self.options.norm == "manhattan":
            # Inlined optimal_point_manhattan: median over the corner
            # coordinates of all fan rectangles.
            mxs: List[float] = []
            mys: List[float] = []
            for lx, ly, ux, uy, _ in folds:
                mxs.append(lx)
                mxs.append(ux)
                mys.append(ly)
                mys.append(uy)
            if have_out:
                mxs.append(olx)
                mxs.append(oux)
                mys.append(oly)
                mys.append(ouy)
            position = Point(_median(mxs), _median(mys))
        else:
            rects = [Rect(lx, ly, ux, uy) for lx, ly, ux, uy, _ in folds]
            out_rect = Rect(olx, oly, oux, ouy) if have_out else None
            position = cm_of_fans(rects, out_rect, norm=self.options.norm)
        gx, gy = position.x, position.y
        wire_increment = 0.0
        for lx, ly, ux, uy, remaining in folds:
            width = (ux if ux > gx else gx) - (lx if lx < gx else gx)
            height = (uy if uy > gy else gy) - (ly if ly < gy else gy)
            wire_increment += (
                (width + height) * chung_hwang_factor(remaining + 2)
            ) / (remaining + 1)
        area = match.cell.area + sum(s.area for s in inputs)
        wire = wire_increment + sum(s.wire for s in inputs)
        cost = area + self.options.wire_weight * wire
        return Solution(
            node, match, cost=cost, area=area, wire=wire, position=position
        )

    def hawk_solution(self, node: SubjectNode) -> Solution:
        instance = self.instances[node.uid]
        return Solution(
            node,
            None,
            cost=0.0,
            area=0.0,
            wire=0.0,
            position=self.state.map_position(node),
            arrival=instance.arrival or 0.0,
        )


class LilyDelayMapper(_LilyMixin, BaseMapper):
    """Minimum-delay mapping with wiring delay (Section 4).

    Implements the five-step procedure of Section 4.4: the output arrival
    of every match input is *recalculated* with its now-known load (type
    and position of ``gate(m)``), block arrival times split the linear
    delay into load-independent and load-dependent parts, and the output
    load of the candidate uses the base-function gates at the node's
    inchoate fanouts plus the placement-derived wire capacitance.
    """

    def __init__(
        self,
        library: Library,
        options: Optional[LilyOptions] = None,
        region: Optional[Rect] = None,
        pad_positions: Optional[Dict[str, Point]] = None,
        wire_cap: Optional[WireCapModel] = None,
        input_arrivals: Optional[Dict[str, float]] = None,
        pad_cap: float = 0.25,
        **kwargs,
    ) -> None:
        options = options or LilyOptions()
        kwargs.setdefault("use_cone_ordering", options.use_cone_ordering)
        super().__init__(library, **kwargs)
        self._init_lily(options, region, pad_positions)
        self.wire_cap = wire_cap or WireCapModel()
        self.input_arrivals = dict(input_arrivals or {})
        self.pad_cap = pad_cap
        #: Base-function input capacitance for egg/nestling fanouts.
        self._base_cap = library.nand2().pins[0].input_cap

    # -- Section 4 load and arrival machinery --------------------------------

    def _fanout_cap_and_point(
        self, consumer: SubjectNode
    ) -> Tuple[float, Point]:
        """Capacitance and position a true fanout contributes to a net."""
        if consumer.is_po:
            p = self.state.place_position(consumer)
            return self.pad_cap, p
        if (
            consumer.is_gate
            and self.lifecycle.state(consumer) is NodeState.HAWK
        ):
            instance = self.instances.get(consumer.uid)
            cap = (
                instance.cell.max_input_cap
                if instance is not None
                else self._base_cap
            )
            p = self.state.best_position(consumer)
            return cap, p
        return self._base_cap, self.state.place_position(consumer)

    def _load_at_input(
        self,
        fanin: SubjectNode,
        match: Match,
        pin_index: int,
        gate_position: Point,
        fanin_position: Point,
    ) -> float:
        """Current load at a match input (Section 4.4, step 1)."""
        covered_set = {n.uid for n in match.covered}
        cap = match.cell.pins[pin_index].input_cap  # gate(m) itself
        points: List[Point] = [fanin_position, gate_position]
        for consumer in self._true_fanouts(fanin):
            if consumer.uid in covered_set:
                continue
            c, p = self._fanout_cap_and_point(consumer)
            cap += c
            points.append(p)
        cap += self._wire_cap(points)
        return cap

    def _wire_cap(self, points: Sequence[Point]) -> float:
        if len(points) < 2:
            return 0.0
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return self.wire_cap.capacitance(max(xs) - min(xs), max(ys) - min(ys))

    def _recalculated_arrival(
        self, node: SubjectNode, solution: Solution, load: float
    ) -> float:
        """Output arrival of a match input under a known load.

        Only the load-dependent ``R_i * C_L`` part is recomputed; the block
        arrival times ``b_i`` are fixed (the LI/LD split of Section 4.3).
        """
        if solution.block_arrivals is None or solution.match is None:
            return solution.arrival  # PI, constant, or positionless leaf
        cell = solution.match.cell
        return max(
            b + cell.pins[i].timing.worst_resistance * load
            for i, b in enumerate(solution.block_arrivals)
        )

    def _output_load(
        self, node: SubjectNode, match: Match, gate_position: Point
    ) -> float:
        """Step 3: output load of gate(m) from the inchoate fanouts."""
        covered_set = {n.uid for n in match.covered}
        cap = 0.0
        points: List[Point] = [gate_position]
        consumers = [s for s in node.fanouts if s.uid not in covered_set]
        if not consumers:
            cap += self.pad_cap
        for consumer in consumers:
            c, p = self._fanout_cap_and_point(consumer)
            cap += c
            points.append(p)
        cap += self._wire_cap(points)
        return cap

    # -- DP hooks ---------------------------------------------------------------

    def evaluate_match(
        self, node: SubjectNode, match: Match, inputs: Sequence[Solution]
    ) -> Solution:
        position = self._tentative_position(node, match, inputs)
        blocks: List[float] = []
        for pin_index, fanin in enumerate(match.inputs):
            fanin_position = self._input_position(fanin, inputs[pin_index])
            load = self._load_at_input(
                fanin, match, pin_index, position, fanin_position
            )
            t_in = self._recalculated_arrival(fanin, inputs[pin_index], load)
            timing = match.cell.pins[pin_index].timing
            blocks.append(t_in + timing.worst_block)
        output_load = self._output_load(node, match, position)
        arrival = max(
            b + match.cell.pins[i].timing.worst_resistance * output_load
            for i, b in enumerate(blocks)
        )
        area = match.cell.area + sum(s.area for s in inputs)
        return Solution(
            node,
            match,
            cost=arrival,
            area=area,
            arrival=arrival,
            position=position,
            block_arrivals=blocks,
        )

    def leaf_solution(self, node: SubjectNode) -> Solution:
        arrival = self.input_arrivals.get(node.name, 0.0)
        position = (
            self.state.place_position(node) if self.state is not None else None
        )
        return Solution(
            node, None, cost=arrival, arrival=arrival, position=position
        )

    def hawk_solution(self, node: SubjectNode) -> Solution:
        instance = self.instances[node.uid]
        committed = self._committed_solutions.get(node.uid)
        arrival = instance.arrival if instance.arrival is not None else 0.0
        blocks = committed.block_arrivals if committed is not None else None
        match = committed.match if committed is not None else None
        return Solution(
            node,
            match,
            cost=arrival,
            arrival=arrival,
            position=self.state.map_position(node),
            block_arrivals=blocks,
        )

    def on_commit(
        self, node: SubjectNode, solution: Solution, instance: MappedNode
    ) -> None:
        super().on_commit(node, solution, instance)
        self._committed_solutions[node.uid] = solution

    def map(self, subject: SubjectGraph):
        self._committed_solutions: Dict[int, Solution] = {}
        return super().map(subject)
