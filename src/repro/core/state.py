"""Placement state shared by Lily's cost hooks.

Keeps, for every subject node, the *placePosition* (from the balanced
global placement of the inchoate network, Section 3.1) and — once known —
the *mapPosition* of the gate implementing it (committed hawks, or the
tentative constructive position stored with a DP solution).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.geometry import Point, Rect
from repro.network.subject import SubjectGraph, SubjectNode

__all__ = ["PlacementState"]


class PlacementState:
    """Positions of subject nodes during mapping.

    Args:
        region: the layout image.
        place_positions: subject node name -> global-placement position
            (gates) — PIs and POs come from ``pad_positions``.
        pad_positions: terminal name -> pad position.
    """

    def __init__(
        self,
        region: Rect,
        place_positions: Dict[str, Point],
        pad_positions: Dict[str, Point],
    ) -> None:
        self.region = region
        self._place: Dict[int, Point] = {}
        self._place_by_name = dict(place_positions)
        self._pads = dict(pad_positions)
        self._map: Dict[int, Point] = {}

    def bind(self, graph: SubjectGraph) -> None:
        """Resolve name-keyed positions to node uids for fast lookup."""
        center = self.region.center
        for node in graph.nodes:
            if node.is_gate or node.is_constant:
                p = self._place_by_name.get(node.name, center)
                self._place[node.uid] = p
            elif node.is_pi or node.is_po:
                self._place[node.uid] = self._pads.get(node.name, center)

    # -- placePositions ------------------------------------------------------

    def place_position(self, node: SubjectNode) -> Point:
        return self._place[node.uid]

    def set_place_position(self, node: SubjectNode, p: Point) -> None:
        self._place[node.uid] = p

    # -- mapPositions ---------------------------------------------------------

    def map_position(self, node: SubjectNode) -> Optional[Point]:
        return self._map.get(node.uid)

    def set_map_position(self, node: SubjectNode, p: Point) -> None:
        self._map[node.uid] = p

    def best_position(self, node: SubjectNode) -> Point:
        """mapPosition when the node has one, otherwise placePosition."""
        return self._map.get(node.uid, self._place[node.uid])

    def pad_position(self, name: str) -> Optional[Point]:
        return self._pads.get(name)
