"""True fanouts and fanin/fanout enclosing rectangles (Section 3.3).

The *true fanouts* of a node are the fanouts that would exist had mapping
stopped after the previous cone: hawks, nestlings and eggs that consume the
node's signal.  A fanout that has become a dove was merged into some hawk,
so the walk continues through it (``add-true-fanout-recursively``); logic
duplication can yield more than one true fanout along a branch.

Rectangles use mapPositions for hawks (and for the fanin node itself when
it has one) and placePositions for everything else, exactly as the paper
prescribes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from repro.geometry import Point, Rect, bounding_rect
from repro.core.state import PlacementState
from repro.map.lifecycle import LifecycleTracker, NodeState
from repro.network.subject import SubjectNode

__all__ = ["true_fanouts", "fanin_rectangle", "fanout_rectangle"]


def true_fanouts(
    node: SubjectNode, lifecycle: LifecycleTracker
) -> List[SubjectNode]:
    """All true fanouts of ``node`` across its branches.

    Primary outputs are terminals (pads) and always count as true fanouts.
    Doves are looked *through*: the hawk(s) their logic was merged into (or
    further consumers) absorb the connection.
    """
    found: List[SubjectNode] = []
    seen: Set[int] = set()
    stack = list(node.fanouts)
    while stack:
        branch = stack.pop()
        if branch.uid in seen:
            continue
        seen.add(branch.uid)
        if branch.is_po or not branch.is_gate:
            found.append(branch)
            continue
        if lifecycle.state(branch) is NodeState.DOVE:
            stack.extend(branch.fanouts)
        else:
            found.append(branch)
    # Stable, deterministic order.
    found.sort(key=lambda n: n.uid)
    return found


def _node_point(
    node: SubjectNode,
    state: PlacementState,
    lifecycle: LifecycleTracker,
) -> Point:
    """mapPosition for hawks, placePosition (or pad) otherwise."""
    if node.is_gate and lifecycle.state(node) is NodeState.HAWK:
        p = state.map_position(node)
        if p is not None:
            return p
    return state.place_position(node)


def fanin_rectangle(
    fanin: SubjectNode,
    covered: Iterable[SubjectNode],
    state: PlacementState,
    lifecycle: LifecycleTracker,
    fanin_position: Optional[Point] = None,
    extra_point: Optional[Point] = None,
    consumers: Optional[List[SubjectNode]] = None,
) -> Rect:
    """Enclosing rectangle of a match input's output net (Section 3.3).

    The node list is the fanin's true fanouts, minus those covered by the
    candidate match, plus the fanin itself; ``extra_point`` (the candidate
    gate position) is included when estimating wire cost.

    Args:
        fanin: the subject node feeding the candidate match.
        covered: nodes merged into the candidate match.
        state: current placement state.
        lifecycle: current life-cycle states.
        fanin_position: override for the fanin's own position — the
            (tentative) mapPosition of the best gate matching there.
        extra_point: candidate gate position to include, if any.
        consumers: precomputed ``true_fanouts(fanin, ...)`` (cache hook).
    """
    covered_set = {n.uid for n in covered}
    if consumers is None:
        consumers = true_fanouts(fanin, lifecycle)
    points: List[Point] = []
    for consumer in consumers:
        if consumer.uid in covered_set:
            continue
        points.append(_node_point(consumer, state, lifecycle))
    if fanin_position is not None:
        points.append(fanin_position)
    else:
        points.append(_node_point(fanin, state, lifecycle))
    if extra_point is not None:
        points.append(extra_point)
    return bounding_rect(points)


def fanout_rectangle(
    node: SubjectNode,
    covered: Iterable[SubjectNode],
    state: PlacementState,
    lifecycle: LifecycleTracker,
) -> Optional[Rect]:
    """Enclosing rectangle of the candidate match's output net.

    The outputs of the match root are eggs (depth-first ordering), so their
    placePositions are used directly; nodes merged into the match are
    excluded.  Returns ``None`` when every fanout is covered (the output is
    consumed entirely inside the match — only possible for the root of a
    cone, whose PO pad then provides the point).
    """
    covered_set = {n.uid for n in covered}
    points: List[Point] = []
    for sink in node.fanouts:
        if sink.uid in covered_set:
            continue
        points.append(_node_point(sink, state, lifecycle))
    if not points:
        return None
    return bounding_rect(points)
