"""Lily — the layout-driven technology mapper (the paper's contribution).

The mapper extends the DP covering engine with:

* a live placement of the inchoate network (:mod:`repro.core.state`);
* true-fanout search and fanin/fanout rectangles (:mod:`repro.core.rectangles`);
* the CM-of-Merged / CM-of-Fans incremental position update
  (:mod:`repro.core.position`);
* wire-cost estimation per candidate match (:mod:`repro.core.wirecost`);
* the area-mode and delay-mode mappers themselves (:mod:`repro.core.lily`).
"""

from repro.core.state import PlacementState
from repro.core.rectangles import (
    true_fanouts,
    fanin_rectangle,
    fanout_rectangle,
)
from repro.core.position import cm_of_merged, cm_of_fans
from repro.core.wirecost import match_wire_cost
from repro.core.lily import LilyAreaMapper, LilyDelayMapper, LilyOptions

__all__ = [
    "PlacementState",
    "true_fanouts",
    "fanin_rectangle",
    "fanout_rectangle",
    "cm_of_merged",
    "cm_of_fans",
    "match_wire_cost",
    "LilyAreaMapper",
    "LilyDelayMapper",
    "LilyOptions",
]
