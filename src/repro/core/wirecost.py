"""Wire-cost estimation for a candidate match (Section 3.4).

For each fanin ``v_i`` of match ``m``, the candidate gate position is added
to the fanin rectangle of ``v_i``; the expected length contributed by the
input net is the rectangle's half-perimeter divided by the true-fanout
count at ``v_i`` (avoiding duplicate accounting across the fanouts that
share the net), multiplied by the Chung–Hwang minimal-Steiner-tree-to-
half-perimeter ratio [3].  The alternative model connects all pins of the
net with a rectilinear spanning tree instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.geometry import Point, Rect
from repro.core.rectangles import fanin_rectangle, true_fanouts
from repro.core.state import PlacementState
from repro.map.lifecycle import LifecycleTracker, NodeState
from repro.match.treematch import Match
from repro.network.subject import SubjectNode
from repro.route.spanning import rectilinear_mst_length
from repro.route.wirelength import chung_hwang_factor

__all__ = ["match_wire_cost", "fanin_net_cost"]


def fanin_net_cost(
    fanin: SubjectNode,
    match: Match,
    gate_position: Point,
    fanin_position: Point,
    state: PlacementState,
    lifecycle: LifecycleTracker,
    model: str = "halfperim",
    consumers: Optional[List[SubjectNode]] = None,
) -> float:
    """Expected wire length the match adds on one input net."""
    if consumers is None:
        consumers = true_fanouts(fanin, lifecycle)
    covered_set = {n.uid for n in match.covered}
    remaining = [c for c in consumers if c.uid not in covered_set]
    # The candidate gate joins the net as one more fanout.
    fanout_count = max(1, len(remaining) + 1)

    if model == "halfperim":
        rect = fanin_rectangle(
            fanin,
            match.covered,
            state,
            lifecycle,
            fanin_position=fanin_position,
            extra_point=gate_position,
            consumers=consumers,
        )
        pin_count = len(remaining) + 2  # fanin driver + gate(m)
        length = rect.half_perimeter * chung_hwang_factor(pin_count)
        return length / fanout_count
    if model == "spanning":
        points: List[Point] = [fanin_position, gate_position]
        for consumer in remaining:
            if consumer.is_gate and lifecycle.state(consumer) is NodeState.HAWK:
                p = state.map_position(consumer) or state.place_position(consumer)
            else:
                p = state.place_position(consumer)
            points.append(p)
        return rectilinear_mst_length(points) / fanout_count
    raise ValueError(f"unknown wire model: {model!r}")


def match_wire_cost(
    match: Match,
    gate_position: Point,
    input_positions: Sequence[Point],
    state: PlacementState,
    lifecycle: LifecycleTracker,
    model: str = "halfperim",
    consumers_of=None,
) -> float:
    """``wire(gate(m), gate(v_i))`` of the Section 3 cost recursion.

    Sums the expected input-net lengths over all match inputs.  Primary
    inputs use their pad positions; constants contribute nothing.
    ``consumers_of`` optionally supplies cached true-fanout lists.
    """
    total = 0.0
    for index, fanin in enumerate(match.inputs):
        if fanin.is_constant:
            continue
        consumers = consumers_of(fanin) if consumers_of is not None else None
        total += fanin_net_cost(
            fanin,
            match,
            gate_position,
            input_positions[index],
            state,
            lifecycle,
            model=model,
            consumers=consumers,
        )
    return total
