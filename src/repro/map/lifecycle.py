"""The node life cycle of Section 2 (Figures 2.1 and 2.2).

During cone-by-cone mapping every subject node is in one of four states:

* **egg** — not yet visited by the mapper;
* **nestling** — visited, in the cone currently being processed; whether it
  survives into ``N_mapped`` is not yet known;
* **hawk** — the sink (root) node of a chosen match: it *will* appear in the
  final network, carries a gate instance and a ``map_position``;
* **dove** — a non-sink element of a chosen match: merged into a hawk, it
  disappears from the final network.

Logic duplication across cones lets a dove *reincarnate*: a later cone that
needs the dove's signal restarts it as an egg, and it may then become a hawk
(Figure 2.2).  The tracker enforces exactly the transitions of that figure.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.network.subject import SubjectNode
from repro.obs import OBS

__all__ = ["NodeState", "LifecycleTracker", "LifecycleError"]


class NodeState(enum.Enum):
    EGG = "egg"
    NESTLING = "nestling"
    HAWK = "hawk"
    DOVE = "dove"


#: Legal transitions, per Figure 2.2: egg -> nestling; nestling -> hawk/dove;
#: dove -> egg (reincarnation).  Hawks are final.  A dove may also be chosen
#: as a match sink directly in a later cone, which is modelled as the
#: two-step reincarnation dove -> egg -> nestling -> hawk.
_LEGAL = {
    (NodeState.EGG, NodeState.NESTLING),
    (NodeState.NESTLING, NodeState.HAWK),
    (NodeState.NESTLING, NodeState.DOVE),
    (NodeState.DOVE, NodeState.EGG),
}


class LifecycleError(RuntimeError):
    """Raised on a transition Figure 2.2 does not permit."""


class LifecycleTracker:
    """Tracks every subject node's life-cycle state during mapping."""

    def __init__(self) -> None:
        self._state: Dict[int, NodeState] = {}
        #: (node uid, from-state, to-state) history, for tests and reports.
        self.history: List[Tuple[int, NodeState, NodeState]] = []
        #: Number of dove -> egg reincarnations (logic-duplication events).
        self.reincarnations = 0

    def state(self, node: SubjectNode) -> NodeState:
        return self._state.get(node.uid, NodeState.EGG)

    def is_hawk(self, node: SubjectNode) -> bool:
        return self.state(node) is NodeState.HAWK

    def is_dove(self, node: SubjectNode) -> bool:
        return self.state(node) is NodeState.DOVE

    def is_egg(self, node: SubjectNode) -> bool:
        return self.state(node) is NodeState.EGG

    def _transition(self, node: SubjectNode, to: NodeState) -> None:
        frm = self.state(node)
        if frm is to:
            return
        if (frm, to) not in _LEGAL:
            raise LifecycleError(
                f"{node.name}: illegal transition {frm.value} -> {to.value}"
            )
        self._state[node.uid] = to
        self.history.append((node.uid, frm, to))
        if frm is NodeState.DOVE and to is NodeState.EGG:
            self.reincarnations += 1
        if OBS.enabled:
            OBS.metrics.counter(
                f"lifecycle.{frm.value}_to_{to.value}"
            ).inc()

    def visit(self, node: SubjectNode) -> None:
        """Mark an egg as a nestling (the DP pass has reached it)."""
        if self.state(node) is NodeState.EGG:
            self._transition(node, NodeState.NESTLING)

    def make_hawk(self, node: SubjectNode) -> None:
        """The node is the sink of a committed match."""
        frm = self.state(node)
        if frm is NodeState.HAWK:
            return
        if frm is NodeState.DOVE:
            # Reincarnation: the dove's logic is duplicated for a new cone.
            self._transition(node, NodeState.EGG)
            frm = NodeState.EGG
        if frm is NodeState.EGG:
            self._transition(node, NodeState.NESTLING)
        self._transition(node, NodeState.HAWK)

    def make_dove(self, node: SubjectNode) -> None:
        """The node is a non-sink element of a committed match.

        A node that is already a hawk stays a hawk: its gate exists for the
        earlier cone and the new match simply duplicates its logic.
        """
        frm = self.state(node)
        if frm in (NodeState.HAWK, NodeState.DOVE):
            return
        if frm is NodeState.EGG:
            self._transition(node, NodeState.NESTLING)
        self._transition(node, NodeState.DOVE)

    def counts(self) -> Dict[NodeState, int]:
        out = {state: 0 for state in NodeState}
        for state in self._state.values():
            out[state] += 1
        return out

    def finished(self, gates: Iterable[SubjectNode]) -> bool:
        """At the end of mapping only hawks and doves remain (Section 2)."""
        return all(
            self.state(g) in (NodeState.HAWK, NodeState.DOVE) for g in gates
        )
