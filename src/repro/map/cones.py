"""Logic cones and the output-cone ordering of Section 3.5.

Each primary output defines a cone ``K_i``: the output plus its transitive
fanin gates.  Lily processes cones in an order chosen to minimise references
to not-yet-mapped logic: over all cone pairs, the number of *exit lines*
from a processed cone into unprocessed ones should be as small as possible.
The paper's greedy procedure — repeatedly pick the row of the exit-line
matrix with the minimum remaining row sum, emit it, delete its row and
column — is implemented verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.network.subject import SubjectGraph, SubjectNode

__all__ = ["logic_cones", "exit_line_matrix", "order_cones", "ordering_cost"]


def logic_cones(
    graph: SubjectGraph,
) -> List[Tuple[SubjectNode, Set[SubjectNode]]]:
    """Per primary output: (po node, set of gate nodes in its cone)."""
    return [(po, graph.cone_nodes(po)) for po in graph.primary_outputs]


def exit_line_matrix(
    graph: SubjectGraph,
    cones: Sequence[Tuple[SubjectNode, Set[SubjectNode]]],
) -> List[List[int]]:
    """The matrix M with M[i][j] = E(K_i, K_j), the number of exit lines.

    An exit line of cone ``K_i`` is a directed edge from a node inside
    ``K_i`` to a node outside it; it is counted towards ``E(K_i, K_j)``
    for every other cone ``K_j`` that contains the edge's head.  Diagonal
    entries are zero and the matrix is in general asymmetric.
    """
    n = len(cones)
    matrix = [[0] * n for _ in range(n)]
    memberships: List[Set[int]] = []  # node uid -> cones, built as sets per cone
    cone_sets = [cone for _, cone in cones]
    # For each edge (u -> v) between gates, attribute exit lines.
    for node in graph.nodes:
        if not node.is_gate:
            continue
        in_cones = [i for i, cone in enumerate(cone_sets) if node in cone]
        if not in_cones:
            continue
        for sink in node.fanouts:
            if not sink.is_gate:
                continue
            sink_cones = {
                j for j, cone in enumerate(cone_sets) if sink in cone
            }
            for i in in_cones:
                if sink in cone_sets[i]:
                    continue  # internal line of K_i, not an exit line
                for j in sink_cones:
                    if j != i:
                        matrix[i][j] += 1
    return matrix


def order_cones(
    graph: SubjectGraph,
    cones: Sequence[Tuple[SubjectNode, Set[SubjectNode]]] = None,
) -> List[int]:
    """Greedy cone ordering (Section 3.5); returns cone indices in order.

    Repeatedly selects the remaining cone whose exit-line row sum over the
    other remaining cones is minimal (i.e. the cone that least references
    logic that will still be unmapped), appends it, and removes its row and
    column.

    Note: the paper states this finds the optimum linear ordering, but the
    objective is an instance of the (NP-hard) linear ordering problem and
    the greedy is only a heuristic — on some graphs it loses to the
    declaration order.  We therefore keep whichever of the two is better
    under the stated objective.
    """
    if cones is None:
        cones = logic_cones(graph)
    matrix = exit_line_matrix(graph, cones)
    remaining = list(range(len(cones)))
    order: List[int] = []
    while remaining:
        best_index = None
        best_sum = None
        for i in remaining:
            row_sum = sum(matrix[i][j] for j in remaining if j != i)
            if best_sum is None or row_sum < best_sum:
                best_sum = row_sum
                best_index = i
        order.append(best_index)
        remaining.remove(best_index)
    natural = list(range(len(cones)))
    if ordering_cost(matrix, natural) < ordering_cost(matrix, order):
        return natural
    return order


def ordering_cost(matrix: Sequence[Sequence[int]], order: Sequence[int]) -> int:
    """The objective of Section 3.5 for a given linear cone order.

    ``sum_{i<j} E(K_{pi_i}, K_{pi_j})`` — exit lines from each processed
    cone into cones mapped after it.
    """
    total = 0
    for a in range(len(order) - 1):
        for b in range(a + 1, len(order)):
            total += matrix[order[a]][order[b]]
    return total
