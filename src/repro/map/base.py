"""The shared dynamic-programming covering engine (DAGON/MIS style).

Cones are processed one primary output at a time (optionally in Lily's
Section 3.5 order).  Within a cone, every gate node gets its best match by
bottom-up DP: the cost of match ``m`` at node ``v`` is the hook-defined
combination of the gate's own cost and the best costs of the match inputs.
The chosen cover is then committed: match roots become *hawks* (instantiated
library gates), covered interior nodes become *doves*, and logic shared with
later cones may be duplicated (dove reincarnation) exactly as in Section 2.

Subclasses specialise four hooks:

* :meth:`evaluate_match` — the cost function (area / arrival / layout);
* :meth:`hawk_solution` — the cost of reusing an already-mapped node;
* :meth:`position_for` — a ``map_position`` for a committed gate (Lily);
* :meth:`on_begin` / :meth:`on_cone_done` / :meth:`on_commit` — lifecycle
  hooks (Lily's placement bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.geometry import Point
from repro.library.cell import Library
from repro.library.patterns import pattern_set_for
from repro.map.cones import logic_cones, order_cones
from repro.map.lifecycle import LifecycleTracker, NodeState
from repro.map.netlist import MappedNetwork, MappedNode
from repro.match.treematch import Match, Matcher
from repro.network.subject import SubjectGraph, SubjectNode
from repro.obs import OBS
from repro.perf.memomatch import MemoMatcher
from repro.perf.options import PerfOptions
from repro.perf.parallel import prewarm_match_cache

__all__ = ["Solution", "MapResult", "BaseMapper", "NoMatchError"]


class NoMatchError(RuntimeError):
    """No library pattern matches a subject node (library not complete)."""


@dataclass
class Solution:
    """The best (so far) implementation choice at a subject node."""

    node: SubjectNode
    match: Optional[Match]  # None for leaves and reused hawks
    cost: float  # primary objective (mode-dependent)
    area: float = 0.0  # cumulative duplicated-area estimate
    arrival: float = 0.0  # estimated output arrival time
    wire: float = 0.0  # cumulative wire-cost estimate (Lily)
    #: Tentative constructive mapPosition of the matched gate (Lily).
    position: Optional[Point] = None
    #: Per-pin block arrival times b_i = t_i + I_i (Lily delay mode).
    block_arrivals: Optional[List[float]] = None

    def key(self) -> tuple:
        """Deterministic comparison key: cost, then area, then identity."""
        cell = self.match.cell.name if self.match else ""
        return (self.cost, self.area, cell)


@dataclass
class MapResult:
    """Everything a flow needs after mapping."""

    mapped: MappedNetwork
    subject: SubjectGraph
    lifecycle: LifecycleTracker
    cone_order: List[int]

    @property
    def num_gates(self) -> int:
        return len(self.mapped.gates)

    @property
    def cell_area(self) -> float:
        return self.mapped.total_cell_area()


class BaseMapper:
    """DP tree/DAG covering over logic cones.

    Args:
        library: target gate library.
        tree_mode: restrict matches to DAGON's maximal-tree partition
            (no match may cross a multi-fanout stem).
        use_cone_ordering: process cones in the Section 3.5 order instead
            of declaration order.
        perf: hot-path optimization switches (:class:`PerfOptions`);
            defaults to all caches on, one job.  Every setting maps
            bit-identically to the naive paths.
    """

    def __init__(
        self,
        library: Library,
        tree_mode: bool = False,
        use_cone_ordering: bool = False,
        matcher=None,
        perf: Optional[PerfOptions] = None,
    ) -> None:
        self.library = library
        self.patterns = pattern_set_for(library)
        self.perf = perf if perf is not None else PerfOptions()
        if matcher is None:
            if self.perf.memoize_matches or self.perf.index_patterns:
                matcher = MemoMatcher(
                    self.patterns,
                    tree_mode=tree_mode,
                    memoize=self.perf.memoize_matches,
                    index=self.perf.index_patterns,
                )
            else:
                matcher = Matcher(self.patterns, tree_mode=tree_mode)
        self.matcher = matcher
        self.tree_mode = tree_mode
        self.use_cone_ordering = use_cone_ordering
        # Per-run state, initialised in map().
        self.subject: Optional[SubjectGraph] = None
        self.lifecycle: Optional[LifecycleTracker] = None
        self.mapped: Optional[MappedNetwork] = None
        self.instances: Dict[int, MappedNode] = {}
        self.memo: Dict[int, Solution] = {}
        self._gate_counter = 0
        self._match_cache: Dict[int, List[Match]] = {}

    # -- hooks (overridden by subclasses) ------------------------------------

    def on_begin(self, subject: SubjectGraph) -> None:
        """Called once before any cone is processed."""

    def on_cone_begin(self, po: SubjectNode) -> None:
        """Called before each cone's DP pass starts."""

    def on_cone_done(self, po: SubjectNode) -> None:
        """Called after each cone's cover has been committed."""

    def on_commit(self, node: SubjectNode, solution: Solution,
                  instance: MappedNode) -> None:
        """Called for each gate instantiated while committing a cover."""

    def evaluate_match(
        self, node: SubjectNode, match: Match, inputs: Sequence[Solution]
    ) -> Solution:
        """Cost of implementing ``node`` with ``match`` — the DP objective.

        The base implementation is MIS area mode: gate area plus the summed
        costs of the match inputs.
        """
        cost = match.cell.area + sum(s.cost for s in inputs)
        area = match.cell.area + sum(s.area for s in inputs)
        return Solution(node, match, cost=cost, area=area)

    def hawk_solution(self, node: SubjectNode) -> Solution:
        """Cost of reusing an already-instantiated (hawk) node's output."""
        instance = self.instances[node.uid]
        arrival = instance.arrival if instance.arrival is not None else 0.0
        return Solution(node, None, cost=0.0, area=0.0, arrival=arrival)

    def leaf_solution(self, node: SubjectNode) -> Solution:
        """Cost of a primary input or constant leaf."""
        return Solution(node, None, cost=0.0, area=0.0, arrival=0.0)

    def position_for(
        self, node: SubjectNode, match: Match
    ) -> Optional[Point]:
        """``map_position`` for a newly committed gate (Lily overrides)."""
        return None

    def cone_sequence(self, subject: SubjectGraph, cones) -> List[int]:
        """Order in which cones are processed."""
        if self.use_cone_ordering:
            return order_cones(subject, cones)
        return list(range(len(cones)))

    # -- main entry -------------------------------------------------------------

    def map(self, subject: SubjectGraph) -> MapResult:
        """Cover the subject graph; returns the mapped netlist and records."""
        self.subject = subject
        self.lifecycle = LifecycleTracker()
        self.mapped = MappedNetwork(f"{subject.name}_mapped")
        self.instances = {}
        self._gate_counter = 0
        self._match_cache = {}

        for pi in subject.primary_inputs:
            self.instances[pi.uid] = self.mapped.add_primary_input(pi.name)

        bind = getattr(self.matcher, "bind", None)
        if bind is not None:
            bind(subject)
        cones = logic_cones(subject)
        order = self.cone_sequence(subject, cones)
        if self.perf.jobs > 1:
            prewarm_match_cache(self, cones, order, self.perf.jobs)
        self.on_begin(subject)
        for index in order:
            po, cone = cones[index]
            self._map_cone(po, cone)
        self.mapped.check()
        live_gates = [
            n
            for n in subject.transitive_fanin(subject.primary_outputs)
            if n.is_gate
        ]
        if not self.lifecycle.finished(live_gates):
            raise RuntimeError(
                "mapping left live nodes that are neither hawk nor dove"
            )
        return MapResult(self.mapped, subject, self.lifecycle, list(order))

    # -- cone processing -----------------------------------------------------------

    def _matches_at(self, node: SubjectNode) -> List[Match]:
        cached = self._match_cache.get(node.uid)
        if cached is None:
            cached = self.matcher.matches_at(node)
            self._match_cache[node.uid] = cached
        elif OBS.enabled:
            OBS.metrics.counter("match.cache_hits").inc()
        return cached

    def _map_cone(self, po: SubjectNode, cone: Set[SubjectNode]) -> None:
        driver = po.fanins[0]
        self.memo = {}
        if OBS.enabled:
            OBS.metrics.counter("dp.cones").inc()
            OBS.metrics.histogram("dp.cone_size").observe(len(cone))
        self.on_cone_begin(po)
        if driver.is_gate:
            self._solve_cone(driver, cone)
            instance = self._commit(driver)
        elif driver.is_pi:
            instance = self.instances[driver.uid]
        else:  # constant
            instance = self._constant_instance(driver)
        self.mapped.add_primary_output(po.name, instance)
        self.on_cone_done(po)

    def _solve_cone(self, root: SubjectNode, cone: Set[SubjectNode]) -> None:
        """Bottom-up DP over the cone's gates (reversed-DFS order)."""
        for node in self._cone_topological(root):
            if self.lifecycle.is_hawk(node):
                continue  # reuse: its gate already exists
            self.lifecycle.visit(node)
            best: Optional[Solution] = None
            matches = self._matches_at(node)
            if OBS.enabled:
                OBS.metrics.counter("dp.nodes_visited").inc()
                OBS.metrics.counter("dp.states_expanded").inc(len(matches))
            for match in matches:
                inputs = [self.solution_of(v) for v in match.inputs]
                solution = self.evaluate_match(node, match, inputs)
                if solution is None:
                    continue
                if best is None or solution.key() < best.key():
                    best = solution
            if best is None:
                raise NoMatchError(
                    f"no match at {node.name} ({node.type.value}); "
                    f"library {self.library.name!r} cannot cover the graph"
                )
            self.memo[node.uid] = best

    def _cone_topological(self, root: SubjectNode) -> List[SubjectNode]:
        """Gate nodes of the cone of ``root`` in fanin-first order."""
        order: List[SubjectNode] = []
        visited: Set[int] = set()
        stack: List[Tuple[SubjectNode, int]] = [(root, 0)]
        on_stack = {root.uid}
        while stack:
            node, idx = stack[-1]
            if idx < len(node.fanins):
                stack[-1] = (node, idx + 1)
                child = node.fanins[idx]
                if child.is_gate and child.uid not in visited and child.uid not in on_stack:
                    stack.append((child, 0))
                    on_stack.add(child.uid)
            else:
                stack.pop()
                on_stack.discard(node.uid)
                if node.uid not in visited:
                    visited.add(node.uid)
                    order.append(node)
        return order

    def solution_of(self, node: SubjectNode) -> Solution:
        """Best solution for a node referenced as a match input."""
        if node.is_pi or node.is_constant:
            return self.leaf_solution(node)
        if self.lifecycle.is_hawk(node):
            return self.hawk_solution(node)
        return self.memo[node.uid]

    # -- cover commitment -------------------------------------------------------------

    def _constant_instance(self, node: SubjectNode) -> MappedNode:
        existing = self.instances.get(node.uid)
        if existing is None:
            value = node.type.value == "const1"
            existing = self.mapped.add_constant(f"const{int(value)}", value)
            self.instances[node.uid] = existing
        return existing

    def _commit(self, root: SubjectNode) -> MappedNode:
        """Instantiate the chosen cover of ``root``; returns its instance.

        Iterative post-order over the chosen matches' input DAG; revisits of
        already-resolved nodes are harmless no-ops.
        """
        stack: List[Tuple[SubjectNode, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node.is_pi or self.lifecycle.is_hawk(node):
                continue
            if node.is_constant:
                self._constant_instance(node)
                continue
            solution = self.memo[node.uid]
            if expanded:
                self._instantiate(node, solution)
                continue
            stack.append((node, True))
            for v in solution.match.inputs:
                if not self._is_resolved(v):
                    stack.append((v, False))
        return self.instances[root.uid]

    def _is_resolved(self, node: SubjectNode) -> bool:
        if node.is_pi:
            return True
        if node.is_constant:
            return node.uid in self.instances
        return self.lifecycle.is_hawk(node)

    def _instantiate(self, node: SubjectNode, solution: Solution) -> None:
        match = solution.match
        fanins = []
        for v in match.inputs:
            if v.is_constant and v.uid not in self.instances:
                self._constant_instance(v)
            fanins.append(self.instances[v.uid])
        self._gate_counter += 1
        name = f"{match.cell.name}_{self._gate_counter}"
        instance = self.mapped.add_gate(name, match.cell, fanins)
        instance.arrival = solution.arrival
        instance.position = self.position_for(node, match)
        self.lifecycle.make_hawk(node)
        for inner in match.inner:
            self.lifecycle.make_dove(inner)
        self.instances[node.uid] = instance
        if OBS.enabled:
            OBS.metrics.counter("dp.gates_committed").inc()
        self.on_commit(node, solution, instance)
