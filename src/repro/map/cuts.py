"""Cut-based covering: the DAG-mapping alternative to tree matching.

The tree matcher behind :class:`~repro.map.base.BaseMapper` only finds a
cell where the subject graph happens to be decomposed in one of the cell's
pattern shapes.  This module implements the other classical paradigm:

1. **Priority-cut enumeration** (Kulkarni & Vrudhula) — every gate node
   gets a bounded, deterministically ordered set of k-feasible cuts
   (:func:`enumerate_priority_cuts`).  The direct-fanin cut is always
   retained so a library with an inverter and a NAND2 can cover any graph.
2. **NPN boolean matching** — each cut's function (computed with the
   :mod:`repro.match.boolmatch` truth-table machinery) is looked up in a
   precomputed expansion table of the library (:class:`NpnMatchTable`):
   for every cell up to :data:`NPN_FULL_WIDTH` inputs, *all* NPN variants
   of its function are tabulated once per library, so matching a cut is a
   single dict probe instead of a canonical-form search.  Wider cells
   (5-6 inputs) are expanded under permutation + output polarity only,
   which keeps the one-time build sub-second.  Input/output negations are
   realised by inserting library inverters at commit time (deduplicated
   per driven signal) and priced into the DP cost.
3. **DP covering** (:class:`CutMapper`) — per-cone bottom-up dynamic
   programming with the same egg/nestling/hawk/dove lifecycle, cone
   partition and :class:`~repro.map.base.MapResult` contract as the tree
   mapper, so placement, routing, STA, serve and verify run unchanged.
   ``mode="area"`` minimises cell area, ``mode="timing"`` minimises
   arrival under the MIS constant-load model of :mod:`repro.map.mis`.
4. **LUT-k mode** — ``lut_k=K`` covers with generated k-input LUT cells
   (:func:`lut_cell`) instead of library gates: the classic FPGA mapping
   workload, where every cut function is implementable and the objective
   degenerates to LUT count.
5. **Fusion** (:class:`FusionMapper`) — runs the tree mapper *and* the
   cut mapper on the same subject graph and keeps, per output cone, the
   cover that is better under the selected objective, so the fused area
   is never worse than either backend on any cone.

Everything is deterministic: cuts, bindings and tie-breaks are ordered by
explicit keys, so two processes mapping the same graph produce bit-stable
covers (the differential property fleet asserts this).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.library.cell import Cell, Library, Pin, PinTiming
from repro.map.base import MapResult, NoMatchError
from repro.map.cones import logic_cones
from repro.map.lifecycle import LifecycleTracker
from repro.map.mis import (
    DEFAULT_PAD_CAP,
    DEFAULT_WIRE_CAP_PER_FANOUT,
    MisAreaMapper,
    MisDelayMapper,
    _typical_input_cap,
)
from repro.map.netlist import MappedNetwork, MappedNode
from repro.match.boolmatch import cut_cone, cut_function
from repro.network.logic import TruthTable
from repro.network.subject import SubjectGraph, SubjectNode
from repro.obs import OBS
from repro.perf.options import PerfOptions

__all__ = [
    "CutError",
    "MapperSpecError",
    "MapperSpec",
    "parse_mapper_spec",
    "enumerate_priority_cuts",
    "NpnBinding",
    "NpnMatchTable",
    "match_table_for",
    "lut_cell",
    "CutSolution",
    "CutCoverRecord",
    "CutMapResult",
    "CutMapper",
    "FusionChoice",
    "FusionMapResult",
    "FusionMapper",
    "DEFAULT_PRIORITY_CUTS",
    "NPN_FULL_WIDTH",
    "MAX_CUT_K",
    "MAPPER_KINDS",
]

#: Non-trivial cuts retained per node (the priority-cut bound).
DEFAULT_PRIORITY_CUTS = 8
#: Widest cut any mapper configuration may request.
MAX_CUT_K = 6
#: Cells up to this many inputs get the full NPN expansion; wider cells
#: are expanded under permutation + output polarity only (the input-phase
#: axis would cost 2^n more table entries for little coverage gain).
NPN_FULL_WIDTH = 4
#: The mapper kinds ``--mapper`` accepts (``lut`` takes a ``:K`` suffix).
MAPPER_KINDS = ("tree", "cuts", "fusion", "lut")

#: Area of one generated LUT cell (constant, so LUT-mode area cost is a
#: scaled LUT count — the classic FPGA objective).
LUT_AREA = 464.0
#: Input capacitance of every generated LUT pin, pF.
LUT_PIN_CAP = 1.0
#: Intrinsic delay / drive resistance of every generated LUT pin.
LUT_BLOCK = 1.0
LUT_RESISTANCE = 0.2


class CutError(RuntimeError):
    """Raised when cut enumeration meets a malformed subject graph."""


class MapperSpecError(ValueError):
    """Raised on a malformed ``--mapper`` specification string."""


@dataclass(frozen=True)
class MapperSpec:
    """A parsed mapper selection (see :func:`parse_mapper_spec`)."""

    kind: str  # "tree" | "cuts" | "fusion" | "lut"
    lut_k: Optional[int] = None

    @property
    def canonical(self) -> str:
        """The canonical spec string (round-trips through the parser)."""
        if self.kind == "lut":
            return f"lut:{self.lut_k}"
        return self.kind


def parse_mapper_spec(spec: str) -> MapperSpec:
    """Parse a ``--mapper`` string: ``tree``, ``cuts``, ``fusion``, ``lut:K``.

    Raises :class:`MapperSpecError` with a contextual message on anything
    else (the fuzz corpus pins these messages).
    """
    if not isinstance(spec, str):
        raise MapperSpecError(
            f"mapper spec must be a string, got {type(spec).__name__}")
    text = spec.strip()
    if text in ("tree", "cuts", "fusion"):
        return MapperSpec(text)
    if text == "lut" or text.startswith("lut:"):
        suffix = text[4:] if text.startswith("lut:") else ""
        if not suffix:
            raise MapperSpecError(
                f"mapper {spec!r}: lut mode needs a width, e.g. 'lut:4'")
        try:
            k = int(suffix)
        except ValueError:
            raise MapperSpecError(
                f"mapper {spec!r}: lut width {suffix!r} is not an integer")
        if not 2 <= k <= MAX_CUT_K:
            raise MapperSpecError(
                f"mapper {spec!r}: lut width must be in 2..{MAX_CUT_K}, "
                f"got {k}")
        return MapperSpec("lut", k)
    raise MapperSpecError(
        f"unknown mapper: {spec!r} (expected tree|cuts|fusion|lut:K)")


# -- priority-cut enumeration -------------------------------------------------


def _cut_priority(cut: FrozenSet[SubjectNode]) -> Tuple[int, List[int]]:
    """Deterministic cut ordering: fewer leaves first, then leaf uids."""
    return (len(cut), sorted(n.uid for n in cut))


def enumerate_priority_cuts(
    graph: SubjectGraph,
    k: int,
    cuts_per_node: int = DEFAULT_PRIORITY_CUTS,
) -> Dict[int, List[Tuple[SubjectNode, ...]]]:
    """Bounded k-feasible cut sets per gate node, deterministically ordered.

    Standard bottom-up enumeration: a cut of a node is the union of one
    cut from each fanin (the fanin's trivial cut contributes the fanin
    itself).  Each node keeps the ``cuts_per_node`` best cuts under
    :func:`_cut_priority`; the direct-fanin cut is *always* retained so
    the covering DP can fall back on the library's NAND2/inverter.  Cuts
    are returned as uid-sorted node tuples (trivial cuts excluded), so
    the result is bit-stable across processes.

    Raises :class:`CutError` on a cyclic subject graph (a gate consumed
    before it can be enumerated) instead of looping or silently skipping.
    """
    if k < 1:
        raise CutError(f"cut width must be positive, got {k}")
    table: Dict[int, List[FrozenSet[SubjectNode]]] = {}
    result: Dict[int, List[Tuple[SubjectNode, ...]]] = {}
    for node in graph.topological_order():
        if node.is_po:
            continue
        if not node.is_gate:
            table[node.uid] = [frozenset([node])]
            continue
        fanin_cut_lists = []
        for fanin in node.fanins:
            cuts = table.get(fanin.uid)
            if cuts is None:
                if fanin.is_gate:
                    raise CutError(
                        f"cyclic subject graph: {node.name!r} consumes gate "
                        f"{fanin.name!r} before it was enumerated")
                cuts = [frozenset([fanin])]
                table[fanin.uid] = cuts
            fanin_cut_lists.append(cuts)
        merged: Set[FrozenSet[SubjectNode]] = set()
        for combo in itertools.product(*fanin_cut_lists):
            union: FrozenSet[SubjectNode] = frozenset().union(*combo)
            if len(union) <= k:
                merged.add(union)
        ordered = sorted(merged, key=_cut_priority)[:cuts_per_node]
        direct = frozenset(node.fanins)
        if len(direct) <= k and direct not in ordered:
            ordered.append(direct)
        table[node.uid] = [frozenset([node])] + ordered
        result[node.uid] = [
            tuple(sorted(cut, key=lambda n: n.uid)) for cut in ordered
        ]
    return result


# -- NPN library expansion ----------------------------------------------------


@dataclass(frozen=True)
class NpnBinding:
    """How one cell implements one cut function.

    Pin ``i`` of :attr:`cell` reads cut leaf :attr:`leaf_of_pin` ``[i]``
    (leaves in uid order), inverted when :attr:`pin_negated` ``[i]``; the
    cell output is additionally inverted when :attr:`output_negated`.
    """

    cell: Cell
    leaf_of_pin: Tuple[int, ...]
    pin_negated: Tuple[bool, ...]
    output_negated: bool

    def inverter_count(self) -> int:
        """Inverters the binding needs (negated leaves deduplicated)."""
        negated_leaves = {
            leaf for leaf, neg in zip(self.leaf_of_pin, self.pin_negated)
            if neg
        }
        return len(negated_leaves) + (1 if self.output_negated else 0)

    def realized_bits(self) -> int:
        """Truth-table bits of the function the bound cell realises."""
        n = self.cell.num_inputs
        cell_bits = self.cell.truth_table.bits
        bits = 0
        for m in range(1 << n):
            y = 0
            for pin in range(n):
                value = (m >> self.leaf_of_pin[pin]) & 1
                if self.pin_negated[pin]:
                    value ^= 1
                if value:
                    y |= 1 << pin
            value = (cell_bits >> y) & 1
            if self.output_negated:
                value ^= 1
            if value:
                bits |= 1 << m
        return bits


class NpnMatchTable:
    """Per-library table: cut function -> cell bindings realising it.

    Built once per ``(library, k)`` (see :func:`match_table_for`): every
    cell with at most ``k`` inputs is expanded over input permutations,
    output polarity and — up to :data:`NPN_FULL_WIDTH` inputs — input
    polarities.  Lookup is then an O(1) probe keyed on the cut function's
    ``(num_inputs, bits)``.  Each cell contributes at most one binding
    per function (the fewest-inverter variant, ties broken by phase and
    permutation order), and binding lists are sorted by cell area then
    name, so matching is deterministic.
    """

    def __init__(self, library: Library, k: int,
                 full_width: int = NPN_FULL_WIDTH) -> None:
        self.library = library
        self.k = k
        self.full_width = full_width
        self._table: Dict[Tuple[int, int], List[NpnBinding]] = {}
        for cell in library:
            if cell.num_inputs <= k:
                self._expand_cell(cell)
        for bindings in self._table.values():
            bindings.sort(key=lambda b: (b.cell.area, b.cell.name))

    def _expand_cell(self, cell: Cell) -> None:
        n = cell.num_inputs
        full = n <= self.full_width
        phase_space = range(1 << n) if full else (0,)
        best_for_cell: Dict[int, Tuple[tuple, NpnBinding]] = {}
        for output_negated in (False, True):
            for phase_bits in phase_space:
                phases = tuple(
                    (phase_bits >> i) & 1 == 1 for i in range(n))
                phased = cell.truth_table.with_phases(phases, output_negated)
                for perm in itertools.permutations(range(n)):
                    bits = phased.permuted(perm).bits
                    leaf_of_pin = [0] * n
                    for j, old in enumerate(perm):
                        leaf_of_pin[old] = j
                    binding = NpnBinding(
                        cell, tuple(leaf_of_pin), phases, output_negated)
                    rank = (binding.inverter_count(), output_negated,
                            phase_bits, perm)
                    kept = best_for_cell.get(bits)
                    if kept is None or rank < kept[0]:
                        best_for_cell[bits] = (rank, binding)
        for bits, (_, binding) in best_for_cell.items():
            self._table.setdefault((n, bits), []).append(binding)

    def lookup(self, tt: TruthTable) -> List[NpnBinding]:
        """Bindings realising ``tt`` exactly (possibly empty)."""
        return self._table.get((tt.num_inputs, tt.bits), [])

    def __len__(self) -> int:
        return len(self._table)


_MATCH_TABLE_CACHE: Dict[Tuple[int, int], NpnMatchTable] = {}


def match_table_for(library: Library, k: int) -> NpnMatchTable:
    """Memoised :class:`NpnMatchTable` (libraries are long-lived)."""
    key = (id(library), k)
    cached = _MATCH_TABLE_CACHE.get(key)
    if cached is None or cached.library is not library:
        cached = NpnMatchTable(library, k)
        _MATCH_TABLE_CACHE[key] = cached
    return cached


# -- generated LUT cells ------------------------------------------------------

_LUT_CELL_CACHE: Dict[Tuple[int, int], Cell] = {}


def lut_cell(num_inputs: int, bits: int) -> Cell:
    """The generic LUT cell computing ``TruthTable(num_inputs, bits)``.

    Cells are cached by ``(num_inputs, bits)`` and named
    ``lut<width>_<bits-hex>``, so LUT-mode netlists are deterministic and
    serialisable without a library.  Every pin carries the same uniform
    capacitance and timing (an FPGA LUT's delay is input-independent to
    first order); the function must depend on every input (cut functions
    are matched post-support-shrink, which guarantees this).
    """
    key = (num_inputs, bits)
    cached = _LUT_CELL_CACHE.get(key)
    if cached is not None:
        return cached
    tt = TruthTable(num_inputs, bits)
    pins = [
        Pin(f"i{j}", LUT_PIN_CAP, PinTiming.uniform(LUT_BLOCK, LUT_RESISTANCE))
        for j in range(num_inputs)
    ]
    terms = []
    for cube in tt.to_sop().cubes:
        literals = []
        for j, lit in enumerate(cube.mask):
            if lit == "1":
                literals.append(f"i{j}")
            elif lit == "0":
                literals.append(f"!i{j}")
        terms.append("*".join(literals))
    cell = Cell(f"lut{num_inputs}_{bits:x}", LUT_AREA,
                "+".join(terms), pins)
    if cell.truth_table.bits != bits:  # pragma: no cover - safety net
        raise RuntimeError(f"LUT synthesis mismatch for {cell.name}")
    _LUT_CELL_CACHE[key] = cell
    return cell


# -- the covering DP ----------------------------------------------------------


@dataclass
class CutSolution:
    """The best cut implementation (so far) at a subject node."""

    node: SubjectNode
    leaves: Tuple[SubjectNode, ...]
    binding: Optional[NpnBinding]  # None for leaves and reused hawks
    covered: FrozenSet[SubjectNode]
    cost: float
    area: float = 0.0
    arrival: float = 0.0

    def key(self) -> tuple:
        """Deterministic comparison key (total order over candidates)."""
        if self.binding is None:
            return (self.cost, self.area, "", (), (), False)
        return (
            self.cost,
            self.area,
            self.binding.cell.name,
            tuple(n.uid for n in self.leaves),
            self.binding.pin_negated,
            self.binding.output_negated,
        )


@dataclass(frozen=True)
class CutCoverRecord:
    """One committed cut match, for the verify cut-cover audit."""

    instance: str  # mapped cell-instance name
    cell: str
    root: int  # subject node uid
    leaves: Tuple[int, ...]  # cut leaf uids in binding order
    leaf_of_pin: Tuple[int, ...]
    pin_negated: Tuple[bool, ...]
    output_negated: bool


@dataclass
class CutMapResult(MapResult):
    """A :class:`~repro.map.base.MapResult` plus the committed cut cover."""

    cut_cover: List[CutCoverRecord] = field(default_factory=list)


class CutMapper:
    """Priority-cut DAG covering with NPN matching (area/timing/LUT).

    Args:
        library: target gate library (function table and inverters; its
            cells are ignored in LUT mode).
        mode: ``"area"`` (minimum cell area) or ``"timing"`` (minimum
            arrival under the MIS constant-load model).
        k: cut width; defaults to ``min(library.max_fanin(), MAX_CUT_K)``
            (or ``lut_k`` in LUT mode).
        cuts_per_node: priority-cut bound per node.
        lut_k: cover with generated ``lut_k``-input LUTs instead of
            library cells (FPGA mode).
        wire_cap_per_fanout / pad_cap / input_arrivals: the MIS delay
            model's knobs, as in :class:`~repro.map.mis.MisDelayMapper`.
        perf: accepted for flow-interface symmetry; the cut DP has no
            configurable fast paths yet (results never depend on it).
    """

    def __init__(
        self,
        library: Library,
        mode: str = "area",
        k: Optional[int] = None,
        cuts_per_node: int = DEFAULT_PRIORITY_CUTS,
        lut_k: Optional[int] = None,
        wire_cap_per_fanout: float = DEFAULT_WIRE_CAP_PER_FANOUT,
        pad_cap: float = DEFAULT_PAD_CAP,
        input_arrivals: Optional[Dict[str, float]] = None,
        perf: Optional[PerfOptions] = None,
    ) -> None:
        if mode not in ("area", "timing"):
            raise ValueError(f"unknown mode: {mode!r}")
        if lut_k is not None and not 2 <= lut_k <= MAX_CUT_K:
            raise ValueError(
                f"lut width must be in 2..{MAX_CUT_K}, got {lut_k}")
        self.library = library
        self.mode = mode
        self.lut_k = lut_k
        self.cuts_per_node = cuts_per_node
        self.perf = perf if perf is not None else PerfOptions()
        if lut_k is not None:
            self.k = lut_k
            self.table: Optional[NpnMatchTable] = None
            self.inverter: Optional[Cell] = None
            self.input_cap = LUT_PIN_CAP
        else:
            self.k = k if k is not None else min(library.max_fanin(),
                                                 MAX_CUT_K)
            self.table = match_table_for(library, self.k)
            self.inverter = library.inverter()
            self.input_cap = _typical_input_cap(library)
        self.wire_cap_per_fanout = wire_cap_per_fanout
        self.pad_cap = pad_cap
        self.input_arrivals = dict(input_arrivals or {})
        # Per-run state, initialised in map().
        self.subject: Optional[SubjectGraph] = None
        self.lifecycle: Optional[LifecycleTracker] = None
        self.mapped: Optional[MappedNetwork] = None
        self.instances: Dict[int, MappedNode] = {}
        self.memo: Dict[int, CutSolution] = {}
        self.cut_cover: List[CutCoverRecord] = []
        self.provenance: Dict[str, Tuple[SubjectNode,
                                         FrozenSet[SubjectNode]]] = {}
        self._cuts: Dict[int, List[Tuple[SubjectNode, ...]]] = {}
        self._inverters: Dict[str, MappedNode] = {}
        self._gate_counter = 0

    # -- main entry ----------------------------------------------------------

    def map(self, subject: SubjectGraph) -> CutMapResult:
        """Cover the subject graph; same contract as ``BaseMapper.map``."""
        self.subject = subject
        self.lifecycle = LifecycleTracker()
        self.mapped = MappedNetwork(f"{subject.name}_mapped")
        self.instances = {}
        self.memo = {}
        self.cut_cover = []
        self.provenance = {}
        self._inverters = {}
        self._gate_counter = 0
        for pi in subject.primary_inputs:
            self.instances[pi.uid] = self.mapped.add_primary_input(pi.name)
        with OBS.span("cut.enumerate", gates=len(subject.gates)):
            self._cuts = enumerate_priority_cuts(
                subject, self.k, self.cuts_per_node)
        cones = logic_cones(subject)
        order = list(range(len(cones)))
        for index in order:
            po, cone = cones[index]
            self._map_cone(po)
        self.mapped.check()
        live_gates = [
            n for n in subject.transitive_fanin(subject.primary_outputs)
            if n.is_gate
        ]
        if not self.lifecycle.finished(live_gates):
            raise RuntimeError(
                "cut mapping left live nodes that are neither hawk nor dove")
        return CutMapResult(self.mapped, subject, self.lifecycle,
                            list(order), cut_cover=list(self.cut_cover))

    # -- cone processing -----------------------------------------------------

    def _map_cone(self, po: SubjectNode) -> None:
        driver = po.fanins[0]
        self.memo = {}
        if OBS.enabled:
            OBS.metrics.counter("cut.cones").inc()
        if driver.is_gate:
            self._solve_cone(driver)
            instance = self._commit(driver)
        elif driver.is_pi:
            instance = self.instances[driver.uid]
        else:  # constant
            instance = self._constant_instance(driver)
        self.mapped.add_primary_output(po.name, instance)

    def _cone_topological(self, root: SubjectNode) -> List[SubjectNode]:
        """Gate nodes of the cone of ``root`` in fanin-first order."""
        order: List[SubjectNode] = []
        visited: Set[int] = set()
        stack: List[Tuple[SubjectNode, int]] = [(root, 0)]
        on_stack = {root.uid}
        while stack:
            node, idx = stack[-1]
            if idx < len(node.fanins):
                stack[-1] = (node, idx + 1)
                child = node.fanins[idx]
                if (child.is_gate and child.uid not in visited
                        and child.uid not in on_stack):
                    stack.append((child, 0))
                    on_stack.add(child.uid)
            else:
                stack.pop()
                on_stack.discard(node.uid)
                if node.uid not in visited:
                    visited.add(node.uid)
                    order.append(node)
        return order

    def _solve_cone(self, root: SubjectNode) -> None:
        for node in self._cone_topological(root):
            if self.lifecycle.is_hawk(node):
                continue  # reuse: its gate already exists
            self.lifecycle.visit(node)
            if OBS.enabled:
                OBS.metrics.counter("cut.nodes_visited").inc()
            best: Optional[CutSolution] = None
            for leaves in self._cuts.get(node.uid, ()):
                candidate = self._best_at_cut(node, leaves)
                if candidate is not None and (
                        best is None or candidate.key() < best.key()):
                    best = candidate
            if best is None:
                raise NoMatchError(
                    f"no cut match at {node.name} ({node.type.value}); "
                    f"library {self.library.name!r} cannot cover the graph")
            self.memo[node.uid] = best

    def _best_at_cut(
        self, node: SubjectNode, leaves: Tuple[SubjectNode, ...]
    ) -> Optional[CutSolution]:
        """Best binding implementing ``node``'s function over ``leaves``."""
        tt = cut_function(node, leaves)
        if tt is None:
            return None
        if len(tt.support()) != len(leaves):
            return None  # vacuous leaf; a smaller cut covers this function
        interior = cut_cone(node, frozenset(leaves))
        if interior is None:
            return None
        covered = frozenset(interior)
        if self.lut_k is not None:
            n = len(leaves)
            bindings = [NpnBinding(
                lut_cell(n, tt.bits), tuple(range(n)),
                tuple([False] * n), False)]
        else:
            bindings = self.table.lookup(tt)
        best: Optional[CutSolution] = None
        leaf_solutions = [self._solution_of(leaf) for leaf in leaves]
        if OBS.enabled:
            OBS.metrics.counter("cut.states_expanded").inc(len(bindings))
        for binding in bindings:
            solution = self._evaluate(node, leaves, binding, covered,
                                      leaf_solutions)
            if best is None or solution.key() < best.key():
                best = solution
        return best

    def _evaluate(
        self,
        node: SubjectNode,
        leaves: Tuple[SubjectNode, ...],
        binding: NpnBinding,
        covered: FrozenSet[SubjectNode],
        leaf_solutions: Sequence[CutSolution],
    ) -> CutSolution:
        """DP cost of one binding at one cut (area or timing objective)."""
        inverter_area = self.inverter.area if self.inverter else 0.0
        impl_area = binding.cell.area + \
            inverter_area * binding.inverter_count()
        area = impl_area + sum(s.area for s in leaf_solutions)
        if self.mode == "area":
            cost = impl_area + sum(s.cost for s in leaf_solutions)
            return CutSolution(node, leaves, binding, covered, cost,
                               area=area)
        arrival = self._estimated_arrival(node, binding, leaf_solutions)
        return CutSolution(node, leaves, binding, covered, arrival,
                           area=area, arrival=arrival)

    def _estimated_load(self, node: SubjectNode) -> float:
        """The MIS constant-load model of ``repro.map.mis``."""
        load = 0.0
        for sink in node.fanouts:
            load += self.pad_cap if sink.is_po else self.input_cap
        if not node.fanouts:
            load += self.pad_cap
        load += self.wire_cap_per_fanout * max(1, len(node.fanouts))
        return load

    def _estimated_arrival(
        self,
        node: SubjectNode,
        binding: NpnBinding,
        leaf_solutions: Sequence[CutSolution],
    ) -> float:
        load = self._estimated_load(node)
        inv_timing = self.inverter.pins[0].timing if self.inverter else None
        inv_cap = self.inverter.pins[0].input_cap if self.inverter else 0.0
        # An output inverter sits between the cell and the fanouts: the
        # cell then drives only the inverter pin.
        cell_load = inv_cap if binding.output_negated else load
        arrival = 0.0
        for pin_index in range(binding.cell.num_inputs):
            pin = binding.cell.pins[pin_index]
            leaf_arrival = \
                leaf_solutions[binding.leaf_of_pin[pin_index]].arrival
            if binding.pin_negated[pin_index]:
                leaf_arrival += (inv_timing.worst_block +
                                 inv_timing.worst_resistance * pin.input_cap)
            pin_arrival = (leaf_arrival + pin.timing.worst_block +
                           pin.timing.worst_resistance * cell_load)
            if pin_arrival > arrival:
                arrival = pin_arrival
        if binding.output_negated:
            arrival += (inv_timing.worst_block +
                        inv_timing.worst_resistance * load)
        return arrival

    def _solution_of(self, node: SubjectNode) -> CutSolution:
        """Best solution for a node referenced as a cut leaf."""
        if node.is_pi or node.is_constant:
            arrival = self.input_arrivals.get(node.name, 0.0)
            cost = arrival if self.mode == "timing" else 0.0
            return CutSolution(node, (), None, frozenset(), cost,
                               arrival=arrival)
        if self.lifecycle.is_hawk(node):
            instance = self.instances[node.uid]
            arrival = instance.arrival if instance.arrival is not None else 0.0
            cost = arrival if self.mode == "timing" else 0.0
            return CutSolution(node, (), None, frozenset(), cost,
                               arrival=arrival)
        return self.memo[node.uid]

    # -- cover commitment -----------------------------------------------------

    def _constant_instance(self, node: SubjectNode) -> MappedNode:
        existing = self.instances.get(node.uid)
        if existing is None:
            value = node.type.value == "const1"
            existing = self.mapped.add_constant(f"const{int(value)}", value)
            self.instances[node.uid] = existing
        return existing

    def _is_resolved(self, node: SubjectNode) -> bool:
        if node.is_pi:
            return True
        if node.is_constant:
            return node.uid in self.instances
        return self.lifecycle.is_hawk(node)

    def _commit(self, root: SubjectNode) -> MappedNode:
        """Instantiate the chosen cover of ``root`` (iterative post-order)."""
        stack: List[Tuple[SubjectNode, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node.is_pi or self.lifecycle.is_hawk(node):
                continue
            if node.is_constant:
                self._constant_instance(node)
                continue
            solution = self.memo[node.uid]
            if expanded:
                self._instantiate(node, solution)
                continue
            stack.append((node, True))
            for leaf in solution.leaves:
                if not self._is_resolved(leaf):
                    stack.append((leaf, False))
        return self.instances[root.uid]

    def _inverted(self, source: MappedNode) -> MappedNode:
        """An inverter instance on ``source``, deduplicated per signal."""
        cached = self._inverters.get(source.name)
        if cached is None:
            self._gate_counter += 1
            cached = self.mapped.add_gate(
                f"{self.inverter.name}_{self._gate_counter}",
                self.inverter, [source])
            cached.arrival = source.arrival
            self._inverters[source.name] = cached
        return cached

    def _instantiate(self, node: SubjectNode, solution: CutSolution) -> None:
        binding = solution.binding
        cell = binding.cell
        leaf_instances = []
        for leaf in solution.leaves:
            if leaf.is_constant and leaf.uid not in self.instances:
                self._constant_instance(leaf)
            leaf_instances.append(self.instances[leaf.uid])
        fanins = []
        for pin_index in range(cell.num_inputs):
            source = leaf_instances[binding.leaf_of_pin[pin_index]]
            if binding.pin_negated[pin_index]:
                source = self._inverted(source)
            fanins.append(source)
        self._gate_counter += 1
        name = f"{cell.name}_{self._gate_counter}"
        instance = self.mapped.add_gate(name, cell, fanins)
        instance.arrival = solution.arrival
        output = instance
        if binding.output_negated:
            output = self._inverted(instance)
            output.arrival = solution.arrival
        self.lifecycle.make_hawk(node)
        for inner in solution.covered:
            if inner is not node:
                self.lifecycle.make_dove(inner)
        self.instances[node.uid] = output
        self.cut_cover.append(CutCoverRecord(
            instance=name,
            cell=cell.name,
            root=node.uid,
            leaves=tuple(n.uid for n in solution.leaves),
            leaf_of_pin=binding.leaf_of_pin,
            pin_negated=binding.pin_negated,
            output_negated=binding.output_negated,
        ))
        self.provenance[name] = (node, solution.covered - {node})
        if OBS.enabled:
            OBS.metrics.counter("cut.gates_committed").inc()


# -- mapping fusion -----------------------------------------------------------


class _ProvenanceTreeAreaMapper(MisAreaMapper):
    """Area tree mapper that records instance -> subject-match provenance."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.provenance: Dict[str, Tuple[SubjectNode,
                                         FrozenSet[SubjectNode]]] = {}

    def on_commit(self, node, solution, instance) -> None:
        """Record the committed match's root and interior doves."""
        self.provenance[instance.name] = (node,
                                          frozenset(solution.match.inner))


class _ProvenanceTreeDelayMapper(MisDelayMapper):
    """Delay tree mapper that records instance -> subject-match provenance."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.provenance: Dict[str, Tuple[SubjectNode,
                                         FrozenSet[SubjectNode]]] = {}

    def on_commit(self, node, solution, instance) -> None:
        """Record the committed match's root and interior doves."""
        self.provenance[instance.name] = (node,
                                          frozenset(solution.match.inner))


@dataclass(frozen=True)
class FusionChoice:
    """Which backend won one output cone, and at what cost."""

    output: str
    winner: str  # "tree" | "cuts"
    tree_cost: float
    cut_cost: float


@dataclass
class FusionMapResult(MapResult):
    """A fused :class:`~repro.map.base.MapResult` plus both source covers."""

    choices: List[FusionChoice] = field(default_factory=list)
    tree_result: Optional[MapResult] = None
    cut_result: Optional[CutMapResult] = None


def _mapped_cone_instances(driver: MappedNode) -> List[MappedNode]:
    """All gate instances in the transitive fanin of ``driver`` (inclusive)."""
    seen: Set[str] = set()
    order: List[MappedNode] = []
    stack = [driver]
    while stack:
        node = stack.pop()
        if node.name in seen or not node.is_gate:
            continue
        seen.add(node.name)
        order.append(node)
        stack.extend(node.fanins)
    return order


def _cone_cost(driver: MappedNode, mode: str) -> float:
    """One mapped cone's standalone cost under the selected objective.

    Area mode sums cell area over the cone's transitive fanin (shared
    gates count fully in every cone, identically for both backends, so
    the comparison is fair); timing mode reads the driver's estimated
    arrival stamped at commit time.
    """
    if mode == "timing":
        if driver.is_gate and driver.arrival is not None:
            return driver.arrival
        return 0.0
    return sum(g.cell.area for g in _mapped_cone_instances(driver))


class FusionMapper:
    """Best-cover-per-cone fusion of the tree and cut backends.

    Runs :class:`~repro.map.mis.MisAreaMapper` (or the delay variant) and
    :class:`CutMapper` on the same subject graph, then assembles a fused
    netlist by copying, for every primary output, the cone of whichever
    backend scored better under the objective — so the fused cover is
    never worse than either backend on any cone.  The lifecycle history
    is replayed from the copied instances' match provenance, keeping the
    full ``repro.verify`` audit (lifecycle + cone partition + per-cone
    equivalence) applicable unchanged.
    """

    def __init__(
        self,
        library: Library,
        mode: str = "area",
        perf: Optional[PerfOptions] = None,
        matcher=None,
        cuts_per_node: int = DEFAULT_PRIORITY_CUTS,
    ) -> None:
        if mode not in ("area", "timing"):
            raise ValueError(f"unknown mode: {mode!r}")
        self.library = library
        self.mode = mode
        self.perf = perf
        if mode == "area":
            self.tree_mapper = _ProvenanceTreeAreaMapper(
                library, perf=perf, matcher=matcher)
        else:
            self.tree_mapper = _ProvenanceTreeDelayMapper(
                library, perf=perf, matcher=matcher)
        self.cut_mapper = CutMapper(library, mode=mode,
                                    cuts_per_node=cuts_per_node, perf=perf)

    def map(self, subject: SubjectGraph) -> FusionMapResult:
        """Map with both backends and keep the best cover per cone."""
        with OBS.span("fusion.tree"):
            tree_result = self.tree_mapper.map(subject)
        with OBS.span("fusion.cuts"):
            cut_result = self.cut_mapper.map(subject)
        sources = {
            "tree": (tree_result, self.tree_mapper.provenance, "t"),
            "cuts": (cut_result, self.cut_mapper.provenance, "c"),
        }
        fused = MappedNetwork(f"{subject.name}_mapped")
        lifecycle = LifecycleTracker()
        for pi in subject.primary_inputs:
            fused.add_primary_input(pi.name)
        copies: Dict[Tuple[str, str], MappedNode] = {}
        constants: Dict[bool, MappedNode] = {}
        choices: List[FusionChoice] = []
        # Tie-break toward the backend with the better whole-netlist cover:
        # mixing sources duplicates logic the cones share, so equal-cost
        # cones should not fragment the cover for nothing.
        tie_winner = ("tree" if tree_result.cell_area <= cut_result.cell_area
                      else "cuts")
        for po in subject.primary_outputs:
            tree_driver = tree_result.mapped[po.name].fanins[0]
            cut_driver = cut_result.mapped[po.name].fanins[0]
            tree_cost = _cone_cost(tree_driver, self.mode)
            cut_cost = _cone_cost(cut_driver, self.mode)
            if tree_cost < cut_cost:
                winner = "tree"
            elif cut_cost < tree_cost:
                winner = "cuts"
            else:
                winner = tie_winner
            result, provenance, tag = sources[winner]
            driver = result.mapped[po.name].fanins[0]
            copy = self._copy_cone(fused, driver, tag, provenance,
                                   copies, constants, lifecycle)
            fused.add_primary_output(po.name, copy)
            choices.append(FusionChoice(po.name, winner, tree_cost, cut_cost))
            if OBS.enabled:
                OBS.metrics.counter(f"fusion.cones_{winner}").inc()
        fused.check()
        live_gates = [
            n for n in subject.transitive_fanin(subject.primary_outputs)
            if n.is_gate
        ]
        if not lifecycle.finished(live_gates):
            raise RuntimeError(
                "fusion left live nodes that are neither hawk nor dove")
        return FusionMapResult(
            fused, subject, lifecycle,
            list(range(len(subject.primary_outputs))),
            choices=choices, tree_result=tree_result, cut_result=cut_result)

    def _copy_cone(
        self,
        fused: MappedNetwork,
        driver: MappedNode,
        tag: str,
        provenance: Dict[str, Tuple[SubjectNode, FrozenSet[SubjectNode]]],
        copies: Dict[Tuple[str, str], MappedNode],
        constants: Dict[bool, MappedNode],
        lifecycle: LifecycleTracker,
    ) -> MappedNode:
        """Copy one source cone into the fused netlist (post-order DFS).

        Instances are renamed ``<tag>_<name>`` so the two sources never
        collide; primary inputs and constants are shared.  Every copied
        instance's provenance replays into the fused lifecycle (hawk for
        the match root, doves for the interior), which reconstructs a
        legal Figure 2.2 history covering all live gates.
        """
        stack: List[Tuple[MappedNode, bool]] = [(driver, False)]
        while stack:
            node, expanded = stack.pop()
            if node.is_pi:
                continue
            if node.is_constant:
                if node.const_value not in constants:
                    constants[node.const_value] = fused.add_constant(
                        node.name, node.const_value)
                continue
            key = (tag, node.name)
            if key in copies:
                continue
            if not expanded:
                stack.append((node, True))
                for fanin in node.fanins:
                    stack.append((fanin, False))
                continue
            fanins = [self._copied(fused, fanin, tag, copies, constants)
                      for fanin in node.fanins]
            instance = fused.add_gate(f"{tag}_{node.name}", node.cell, fanins)
            instance.arrival = node.arrival
            instance.position = node.position
            copies[key] = instance
            entry = provenance.get(node.name)
            if entry is not None:
                root, inner = entry
                lifecycle.make_hawk(root)
                for dove in sorted(inner, key=lambda n: n.uid):
                    lifecycle.make_dove(dove)
        return self._copied(fused, driver, tag, copies, constants)

    @staticmethod
    def _copied(
        fused: MappedNetwork,
        node: MappedNode,
        tag: str,
        copies: Dict[Tuple[str, str], MappedNode],
        constants: Dict[bool, MappedNode],
    ) -> MappedNode:
        """The fused-netlist node standing for a source-netlist node."""
        if node.is_pi:
            return fused[node.name]
        if node.is_constant:
            return constants[node.const_value]
        return copies[(tag, node.name)]
