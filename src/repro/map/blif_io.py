"""BLIF I/O for mapped netlists (the SIS ``.gate`` convention).

A mapped circuit is written with one ``.gate <cell> pin=signal ...`` line
per instance, exactly as SIS emitted mapped networks; reading requires the
gate library to resolve cell names.  A functional fallback writer emits
plain ``.names`` blocks instead (readable by any BLIF consumer, including
our own :func:`repro.network.blif.parse_blif`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.library.cell import Library
from repro.map.netlist import MappedNetwork, MappedNode

__all__ = ["write_mapped_blif", "parse_mapped_blif", "MappedBlifError"]


class MappedBlifError(ValueError):
    """Raised on malformed mapped-BLIF input."""


def _po_port(name: str) -> str:
    return name[:-4] if name.endswith("__po") else name


def write_mapped_blif(mapped: MappedNetwork, use_gates: bool = True) -> str:
    """Serialise a mapped netlist to BLIF.

    Args:
        mapped: the netlist.
        use_gates: emit ``.gate`` lines (SIS style); with ``False``, emit
            functional ``.names`` blocks instead.
    """
    lines = [f".model {mapped.name}"]
    lines.append(
        ".inputs " + " ".join(n.name for n in mapped.primary_inputs)
    )
    po_ports: List[str] = []
    buffers: List[str] = []
    for po in mapped.primary_outputs:
        port = _po_port(po.name)
        po_ports.append(port)
        driver = po.fanins[0]
        if driver.name != port:
            buffers.append(f".names {driver.name} {port}\n1 1")
    lines.append(".outputs " + " ".join(po_ports))

    for node in mapped.topological_order():
        if node.is_constant:
            lines.append(f".names {node.name}")
            if node.const_value:
                lines.append("1")
        elif node.is_gate:
            if use_gates:
                bindings = " ".join(
                    f"{pin.name}={fanin.name}"
                    for pin, fanin in zip(node.cell.pins, node.fanins)
                )
                lines.append(
                    f".gate {node.cell.name} {bindings} "
                    f"{node.cell.output_name}={node.name}"
                )
            else:
                header = ".names " + " ".join(
                    [f.name for f in node.fanins] + [node.name]
                )
                lines.append(header)
                for cube in node.cell.sop().cubes:
                    lines.append(f"{cube.mask} 1")
    lines.extend(buffers)
    lines.append(".end")
    return "\n".join(lines) + "\n"


def parse_mapped_blif(text: str, library: Library) -> MappedNetwork:
    """Parse a ``.gate``-style mapped BLIF back into a netlist.

    Plain ``.names`` blocks are accepted only for constants and the
    single-literal output-port buffers our writer produces.
    """
    model = "mapped"
    inputs: List[str] = []
    outputs: List[str] = []
    gate_lines: List[List[str]] = []
    names_blocks: List[tuple] = []

    pending_names: Optional[tuple] = None
    for raw in text.splitlines():
        hash_pos = raw.find("#")
        if hash_pos >= 0:
            raw = raw[:hash_pos]
        line = raw.strip()
        if not line:
            continue
        tokens = line.split()
        if tokens[0].startswith("."):
            if pending_names is not None:
                names_blocks.append(pending_names)
                pending_names = None
        if tokens[0] == ".model":
            model = tokens[1] if len(tokens) > 1 else model
        elif tokens[0] == ".inputs":
            inputs.extend(tokens[1:])
        elif tokens[0] == ".outputs":
            outputs.extend(tokens[1:])
        elif tokens[0] == ".gate":
            gate_lines.append(tokens[1:])
        elif tokens[0] == ".names":
            pending_names = (tokens[1:], [])
        elif tokens[0] == ".end":
            continue
        elif tokens[0].startswith("."):
            raise MappedBlifError(f"unsupported directive {tokens[0]!r}")
        else:
            if pending_names is None:
                raise MappedBlifError(f"stray cover row {line!r}")
            pending_names[1].append(tokens)
    if pending_names is not None:
        names_blocks.append(pending_names)

    mapped = MappedNetwork(model)
    signals: Dict[str, MappedNode] = {}
    for name in inputs:
        signals[name] = mapped.add_primary_input(name)

    # Constants and buffers from .names blocks; gates from .gate lines.
    remaining_gates = list(gate_lines)
    remaining_names = list(names_blocks)
    progress = True
    alias: Dict[str, str] = {}
    while (remaining_gates or remaining_names) and progress:
        progress = False
        next_gates = []
        for tokens in remaining_gates:
            cell_name = tokens[0]
            cell = library.get(cell_name)
            if cell is None:
                raise MappedBlifError(f"unknown cell {cell_name!r}")
            bindings = dict(t.split("=", 1) for t in tokens[1:])
            out_signal = bindings.pop(cell.output_name, None)
            if out_signal is None:
                raise MappedBlifError(f"gate {cell_name!r} lacks an output")
            if not all(bindings.get(p.name) in signals for p in cell.pins):
                next_gates.append(tokens)
                continue
            fanins = [signals[bindings[p.name]] for p in cell.pins]
            signals[out_signal] = mapped.add_gate(out_signal, cell, fanins)
            progress = True
        remaining_gates = next_gates

        next_names = []
        for header, rows in remaining_names:
            out = header[-1]
            ins = header[:-1]
            if not ins:
                value = bool(rows and rows[0] == ["1"])
                signals[out] = mapped.add_constant(out, value)
                progress = True
            elif len(ins) == 1 and rows == [["1", "1"]]:
                if ins[0] in signals:
                    alias[out] = ins[0]
                    signals[out] = signals[ins[0]]
                    progress = True
                else:
                    next_names.append((header, rows))
            else:
                raise MappedBlifError(
                    "only constants and unit buffers are allowed as .names "
                    "in a mapped BLIF"
                )
        remaining_names = next_names

    if remaining_gates or remaining_names:
        raise MappedBlifError("unresolvable signal dependencies")

    for port in outputs:
        driver = signals.get(port)
        if driver is None:
            raise MappedBlifError(f"undriven output {port!r}")
        mapped.add_primary_output(f"{port}__po", driver)
    mapped.check()
    return mapped
