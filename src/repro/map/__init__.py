"""Technology-mapping framework: the mapped netlist, the node life cycle of
Section 2, logic cones and their ordering, the shared dynamic-programming
covering engine, and the MIS 2.1-style baseline mapper."""

from repro.map.netlist import MappedNetwork, MappedNode, MappedNodeKind, Net
from repro.map.lifecycle import LifecycleTracker, NodeState
from repro.map.cones import exit_line_matrix, logic_cones, order_cones
from repro.map.base import BaseMapper, MapResult, NoMatchError
from repro.map.mis import MisAreaMapper, MisDelayMapper
from repro.map.blif_io import parse_mapped_blif, write_mapped_blif

__all__ = [
    "parse_mapped_blif",
    "write_mapped_blif",
    "MappedNetwork",
    "MappedNode",
    "MappedNodeKind",
    "Net",
    "LifecycleTracker",
    "NodeState",
    "logic_cones",
    "exit_line_matrix",
    "order_cones",
    "BaseMapper",
    "MapResult",
    "NoMatchError",
    "MisAreaMapper",
    "MisDelayMapper",
]
