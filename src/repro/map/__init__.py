"""Technology-mapping framework: the mapped netlist, the node life cycle of
Section 2, logic cones and their ordering, the shared dynamic-programming
covering engine, the MIS 2.1-style baseline mapper, and the cut-based
covering backend (priority cuts, NPN matching, LUT mode, fusion)."""

from repro.map.netlist import MappedNetwork, MappedNode, MappedNodeKind, Net
from repro.map.lifecycle import LifecycleTracker, NodeState
from repro.map.cones import exit_line_matrix, logic_cones, order_cones
from repro.map.base import BaseMapper, MapResult, NoMatchError
from repro.map.mis import MisAreaMapper, MisDelayMapper
from repro.map.blif_io import parse_mapped_blif, write_mapped_blif
from repro.map.cuts import (
    CutMapper,
    CutMapResult,
    FusionMapper,
    FusionMapResult,
    MapperSpec,
    MapperSpecError,
    parse_mapper_spec,
)

__all__ = [
    "CutMapper",
    "CutMapResult",
    "FusionMapper",
    "FusionMapResult",
    "MapperSpec",
    "MapperSpecError",
    "parse_mapper_spec",
    "parse_mapped_blif",
    "write_mapped_blif",
    "MappedNetwork",
    "MappedNode",
    "MappedNodeKind",
    "Net",
    "LifecycleTracker",
    "NodeState",
    "logic_cones",
    "exit_line_matrix",
    "order_cones",
    "BaseMapper",
    "MapResult",
    "NoMatchError",
    "MisAreaMapper",
    "MisDelayMapper",
]
