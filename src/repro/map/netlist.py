"""The mapped netlist: library-gate instances produced by technology mapping.

``N_mapped`` mirrors the protocol of the source network (``is_pi``/``is_po``,
``fanins``, ``truth_table()``) so the same simulator verifies equivalence,
and adds what the physical-design substrates need: gate cells, positions and
net extraction (one net per driver, with sink pins and their capacitances).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.geometry import Point
from repro.library.cell import Cell
from repro.network.logic import TruthTable

__all__ = ["MappedNodeKind", "MappedNode", "Net", "MappedNetwork"]


class MappedNodeKind(enum.Enum):
    PRIMARY_INPUT = "pi"
    PRIMARY_OUTPUT = "po"
    GATE = "gate"
    CONSTANT = "const"


class MappedNode:
    """A gate instance, I/O port or constant source in the mapped netlist."""

    __slots__ = ("name", "kind", "cell", "fanins", "fanouts", "position",
                 "const_value", "arrival")

    def __init__(
        self,
        name: str,
        kind: MappedNodeKind,
        cell: Optional[Cell] = None,
        fanins: Sequence["MappedNode"] = (),
        const_value: Optional[bool] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.cell = cell
        self.fanins: List[MappedNode] = list(fanins)
        self.fanouts: List[MappedNode] = []
        #: Physical location (pads and placed gates); ``None`` until placed.
        self.position: Optional[Point] = None
        self.const_value = const_value
        #: Worst-case output arrival time, filled in by the STA.
        self.arrival: Optional[float] = None

    @property
    def is_pi(self) -> bool:
        return self.kind is MappedNodeKind.PRIMARY_INPUT

    @property
    def is_po(self) -> bool:
        return self.kind is MappedNodeKind.PRIMARY_OUTPUT

    @property
    def is_gate(self) -> bool:
        return self.kind is MappedNodeKind.GATE

    @property
    def is_constant(self) -> bool:
        return self.kind is MappedNodeKind.CONSTANT

    @property
    def area(self) -> float:
        return self.cell.area if self.cell is not None else 0.0

    def truth_table(self) -> TruthTable:
        """Local function over ordered fanins (simulation protocol)."""
        if self.is_gate:
            return self.cell.truth_table
        if self.is_constant:
            return TruthTable.constant(bool(self.const_value))
        raise ValueError(f"{self.kind} node has no local function")

    def input_pin_cap(self, fanin_index: int) -> float:
        """Capacitance the pin fed by ``fanins[fanin_index]`` presents."""
        if self.is_gate:
            return self.cell.pins[fanin_index].input_cap
        return 0.0  # output pads are treated as capacitance-free

    def __repr__(self) -> str:
        cell = f", {self.cell.name}" if self.cell else ""
        return f"MappedNode({self.name!r}, {self.kind.value}{cell})"


@dataclass
class Net:
    """One electrical net: a driver and its sink (node, pin-index) pairs."""

    driver: MappedNode
    sinks: List[Tuple[MappedNode, int]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.driver.name

    @property
    def num_pins(self) -> int:
        return 1 + len(self.sinks)

    def pin_positions(self) -> List[Point]:
        """Positions of all placed pins on the net (point gate model)."""
        positions = []
        if self.driver.position is not None:
            positions.append(self.driver.position)
        for node, _pin in self.sinks:
            if node.position is not None:
                positions.append(node.position)
        return positions

    def sink_capacitance(self) -> float:
        """Sum of input-pin capacitances hanging on the net."""
        return sum(node.input_pin_cap(pin) for node, pin in self.sinks)


class MappedNetwork:
    """A technology-mapped circuit: DAG of library-gate instances."""

    def __init__(self, name: str = "mapped") -> None:
        self.name = name
        self._nodes: Dict[str, MappedNode] = {}
        self.primary_inputs: List[MappedNode] = []
        self.primary_outputs: List[MappedNode] = []

    # -- construction -----------------------------------------------------

    def _register(self, node: MappedNode) -> MappedNode:
        if node.name in self._nodes:
            raise ValueError(f"duplicate mapped node name: {node.name!r}")
        self._nodes[node.name] = node
        for f in node.fanins:
            f.fanouts.append(node)
        return node

    def add_primary_input(self, name: str) -> MappedNode:
        node = self._register(MappedNode(name, MappedNodeKind.PRIMARY_INPUT))
        self.primary_inputs.append(node)
        return node

    def add_gate(
        self, name: str, cell: Cell, fanins: Sequence[MappedNode]
    ) -> MappedNode:
        if len(fanins) != cell.num_inputs:
            raise ValueError(
                f"gate {name!r}: {len(fanins)} fanins for "
                f"{cell.num_inputs}-input cell {cell.name!r}"
            )
        return self._register(
            MappedNode(name, MappedNodeKind.GATE, cell=cell, fanins=fanins)
        )

    def add_constant(self, name: str, value: bool) -> MappedNode:
        return self._register(
            MappedNode(name, MappedNodeKind.CONSTANT, const_value=value)
        )

    def add_primary_output(self, name: str, driver: MappedNode) -> MappedNode:
        node = self._register(
            MappedNode(name, MappedNodeKind.PRIMARY_OUTPUT, fanins=[driver])
        )
        self.primary_outputs.append(node)
        return node

    # -- lookup / traversal ---------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __getitem__(self, name: str) -> MappedNode:
        return self._nodes[name]

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[MappedNode]:
        return list(self._nodes.values())

    @property
    def gates(self) -> List[MappedNode]:
        return [n for n in self._nodes.values() if n.is_gate]

    def topological_order(self) -> List[MappedNode]:
        order: List[MappedNode] = []
        done: Set[str] = set()
        for root in self._nodes.values():
            if root.name in done:
                continue
            stack: List[Tuple[MappedNode, int]] = [(root, 0)]
            on_stack = {root.name}
            while stack:
                node, idx = stack[-1]
                if idx < len(node.fanins):
                    stack[-1] = (node, idx + 1)
                    child = node.fanins[idx]
                    if child.name not in done:
                        if child.name in on_stack:
                            raise ValueError(
                                f"cycle in mapped netlist at {child.name!r}"
                            )
                        stack.append((child, 0))
                        on_stack.add(child.name)
                else:
                    stack.pop()
                    on_stack.discard(node.name)
                    if node.name not in done:
                        done.add(node.name)
                        order.append(node)
        return order

    def transitive_fanin(self, roots: Iterable[MappedNode]) -> Set[MappedNode]:
        """All nodes in the transitive fanin of ``roots`` (roots included)."""
        seen: Set[MappedNode] = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(node.fanins)
        return seen

    # -- physical views ----------------------------------------------------------

    def nets(self) -> List[Net]:
        """One net per driver that has at least one sink."""
        nets: Dict[str, Net] = {}
        for node in self._nodes.values():
            for pin_index, fanin in enumerate(node.fanins):
                net = nets.get(fanin.name)
                if net is None:
                    net = Net(fanin)
                    nets[fanin.name] = net
                net.sinks.append((node, pin_index))
        return list(nets.values())

    def total_cell_area(self) -> float:
        """Total instance (active cell) area — Table 1's first metric."""
        return sum(g.area for g in self.gates)

    def cell_histogram(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for g in self.gates:
            hist[g.cell.name] = hist.get(g.cell.name, 0) + 1
        return hist

    def check(self) -> None:
        """Validate structural invariants; raises ``ValueError`` on breakage."""
        for node in self._nodes.values():
            if node.is_gate and len(node.fanins) != node.cell.num_inputs:
                raise ValueError(f"gate {node.name}: fanin/pin count mismatch")
            if node.is_po and len(node.fanins) != 1:
                raise ValueError(f"PO {node.name}: needs exactly one driver")
            if node.is_pi and node.fanins:
                raise ValueError(f"PI {node.name}: must have no fanins")
            for f in node.fanins:
                if self._nodes.get(f.name) is not f:
                    raise ValueError(f"{node.name}: foreign fanin {f.name}")
                if node not in f.fanouts:
                    raise ValueError(
                        f"{node.name}: missing fanout backlink on {f.name}"
                    )
        self.topological_order()

    def stats(self) -> Dict[str, float]:
        return {
            "inputs": len(self.primary_inputs),
            "outputs": len(self.primary_outputs),
            "gates": len(self.gates),
            "area": self.total_cell_area(),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"MappedNetwork({self.name!r}, gates={s['gates']}, "
            f"area={s['area']:.0f})"
        )
