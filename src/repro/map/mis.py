"""The MIS 2.1-style baseline mappers (no layout information).

* :class:`MisAreaMapper` — minimum total gate area, the classic DAG-covering
  objective ("generate circuits with small active cell area but ignore area
  and delay contributed by interconnections", Section 1).
* :class:`MisDelayMapper` — minimum arrival time under the linear delay
  model of Section 4.1, with MIS's load approximations: every gate presents
  the same constant input capacitance, and the wiring capacitance of a net
  is a user-set constant per fanout (Section 4.2: "In MIS, C_w is modeled
  as a function of n ... linear in n").
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.library.cell import Library
from repro.map.base import BaseMapper, Solution
from repro.match.treematch import Match
from repro.network.subject import SubjectGraph, SubjectNode
from repro.obs import OBS

__all__ = ["MisAreaMapper", "MisDelayMapper", "inchoate_fanout_count"]

#: Default wiring capacitance per fanout connection, pF (MIS's linear model).
DEFAULT_WIRE_CAP_PER_FANOUT = 0.05
#: Default load presented by an output pad, pF.
DEFAULT_PAD_CAP = 0.25


def inchoate_fanout_count(node: SubjectNode) -> int:
    """Number of fanout connections of a node in N_inchoate."""
    return max(1, len(node.fanouts))


class MisAreaMapper(BaseMapper):
    """Minimum-gate-area covering; the cost hooks are the base defaults."""


class MisDelayMapper(BaseMapper):
    """Minimum-arrival covering with MIS's constant-load approximation.

    Args:
        library: target gate library.
        input_cap: the assumed constant gate input capacitance (pF);
            defaults to the library's most common pin capacitance.
        wire_cap_per_fanout: lumped wiring capacitance per fanout (pF).
        pad_cap: load presented by a primary-output pad (pF).
        input_arrivals: optional arrival time per primary-input name.
    """

    def __init__(
        self,
        library: Library,
        input_cap: Optional[float] = None,
        wire_cap_per_fanout: float = DEFAULT_WIRE_CAP_PER_FANOUT,
        pad_cap: float = DEFAULT_PAD_CAP,
        input_arrivals: Optional[Dict[str, float]] = None,
        **kwargs,
    ) -> None:
        super().__init__(library, **kwargs)
        if input_cap is None:
            input_cap = _typical_input_cap(library)
        self.input_cap = input_cap
        self.wire_cap_per_fanout = wire_cap_per_fanout
        self.pad_cap = pad_cap
        self.input_arrivals = dict(input_arrivals or {})

    def estimated_load(self, node: SubjectNode) -> float:
        """MIS load model: constant cap per fanout gate + linear wire cap."""
        load = 0.0
        fanouts = node.fanouts or [node]
        for sink in node.fanouts:
            if sink.is_po:
                load += self.pad_cap
            else:
                load += self.input_cap
        if not node.fanouts:
            load += self.pad_cap
        load += self.wire_cap_per_fanout * len(fanouts)
        return load

    def evaluate_match(
        self, node: SubjectNode, match: Match, inputs: Sequence[Solution]
    ) -> Solution:
        if OBS.enabled:
            OBS.metrics.counter("mis.delay_evals").inc()
        load = self.estimated_load(node)
        arrival = 0.0
        for pin_index, input_solution in enumerate(inputs):
            timing = match.cell.pins[pin_index].timing
            pin_arrival = (
                input_solution.arrival
                + timing.worst_block
                + timing.worst_resistance * load
            )
            if pin_arrival > arrival:
                arrival = pin_arrival
        area = match.cell.area + sum(s.area for s in inputs)
        return Solution(node, match, cost=arrival, area=area, arrival=arrival)

    def leaf_solution(self, node: SubjectNode) -> Solution:
        arrival = self.input_arrivals.get(node.name, 0.0)
        return Solution(node, None, cost=arrival, area=0.0, arrival=arrival)

    def hawk_solution(self, node: SubjectNode) -> Solution:
        instance = self.instances[node.uid]
        arrival = instance.arrival if instance.arrival is not None else 0.0
        return Solution(node, None, cost=arrival, area=0.0, arrival=arrival)


def _typical_input_cap(library: Library) -> float:
    """Most common input-pin capacitance across the library."""
    counts: Dict[float, int] = {}
    for cell in library:
        for pin in cell.pins:
            counts[pin.input_cap] = counts.get(pin.input_cap, 0) + 1
    return max(counts.items(), key=lambda item: item[1])[0]
