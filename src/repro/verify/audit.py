"""Audit orchestration: run every applicable checker over a flow's artifacts.

The audit has two effort tiers:

* ``fast`` — all structural invariant checkers plus one end-to-end
  equivalence proof (source network ↔ mapped netlist) with a 12-input
  exhaustive limit and 1024 random vectors.  Cheap enough to run inside
  tests and on every flow when ``--verify fast`` is given.
* ``full`` — the fast tier plus stepwise equivalence (source ↔ subject
  graph and subject graph ↔ mapped netlist, so a failure names the phase
  that broke the function), a 16-input exhaustive limit and 8192 random
  vectors.

Results flow through :class:`~repro.verify.result.VerifyReport`; when the
global observability session is enabled, per-family counters
(``verify.checks``, ``verify.failures``) and a ``verify.audit`` span are
emitted so ``--profile`` shows the audit next to the other phases.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.map.lifecycle import LifecycleTracker
from repro.map.netlist import MappedNetwork
from repro.network.network import Network
from repro.network.subject import SubjectGraph, SubjectNode
from repro.obs import OBS
from repro.place.detailed import DetailedPlacement
from repro.timing.model import WireCapModel
from repro.timing.sta import TimingReport
from repro.verify.equiv import EquivBudget, check_equivalence
from repro.verify.invariants import (
    check_cone_partition,
    check_cut_cover,
    check_incremental_sta,
    check_lifecycle,
    check_mapped,
    check_network,
    check_placement,
    check_subject,
    check_timing,
    check_vec_kernels,
)
from repro.verify.result import CheckResult, VerifyReport

__all__ = ["FlowArtifacts", "audit", "audit_flow", "audit_mapping",
           "LEVELS"]

#: The recognised audit levels, in increasing effort order.
LEVELS = ("fast", "full")


@dataclass
class FlowArtifacts:
    """Everything one pipeline run produced that the audit can inspect.

    Any field may be ``None``; the audit runs whichever checkers its
    inputs are present for.  ``cones`` is the (output, gate-set) list the
    mapper partitioned the subject graph into; when omitted it is
    recomputed, so pass the mapper's own list to audit *its* partition.
    """

    net: Optional[Network] = None
    subject: Optional[SubjectGraph] = None
    mapped: Optional[MappedNetwork] = None
    lifecycle: Optional[LifecycleTracker] = None
    cones: Optional[
        Sequence[Tuple[SubjectNode, Set[SubjectNode]]]
    ] = None
    placement: Optional[DetailedPlacement] = None
    timing: Optional[TimingReport] = None
    wire_model: Optional[WireCapModel] = None
    #: Cut-cover records (``repro.map.cuts``); audited per match when the
    #: mapping came from the cut backend.
    cut_cover: Optional[Sequence] = None

    @staticmethod
    def from_flow(net, map_result, backend=None,
                  wire_model=None) -> "FlowArtifacts":
        """Collect artifacts from a mapper result and optional backend."""
        return FlowArtifacts(
            net=net,
            subject=map_result.subject,
            mapped=map_result.mapped,
            lifecycle=map_result.lifecycle,
            placement=backend.routed.placement if backend else None,
            timing=backend.timing if backend else None,
            wire_model=wire_model,
            cut_cover=getattr(map_result, "cut_cover", None),
        )


def _guarded_equivalence(a, b, budget: EquivBudget,
                         name: str) -> List[CheckResult]:
    """Equivalence that degrades to a failed check on a broken artifact.

    A corrupted network (e.g. a combinational cycle) makes simulation
    impossible; the audit reports that as a failure instead of dying, so
    the structural findings still reach the caller.
    """
    t0 = time.perf_counter()
    try:
        return check_equivalence(a, b, budget, name=name)
    except Exception as exc:
        target = f"{getattr(a, 'name', 'a')} vs {getattr(b, 'name', 'b')}"
        return [CheckResult(
            f"{name}.error", target, False,
            f"equivalence run aborted: {exc}", time.perf_counter() - t0,
        )]


def audit(artifacts: FlowArtifacts, level: str = "fast") -> VerifyReport:
    """Run every applicable checker; returns the collected report."""
    if level not in LEVELS:
        raise ValueError(f"unknown verify level: {level!r}")
    budget = EquivBudget.for_level(level)
    report = VerifyReport(level)
    a = artifacts

    with OBS.span("verify.audit", level=level):
        # Structural invariants first: equivalence assumes sane DAGs.
        if a.net is not None:
            report.extend(check_network(a.net))
        if a.subject is not None:
            report.extend(check_subject(a.subject))
            report.extend(check_cone_partition(a.subject, a.cones))
        if a.mapped is not None:
            report.extend(check_mapped(a.mapped))
        if a.lifecycle is not None and a.subject is not None:
            report.extend(check_lifecycle(a.lifecycle, a.subject))
        if a.cut_cover and a.subject is not None and a.mapped is not None:
            report.extend(check_cut_cover(a.subject, a.mapped, a.cut_cover))
        if a.placement is not None and a.mapped is not None:
            report.extend(check_placement(a.mapped, a.placement))
        if a.timing is not None and a.mapped is not None:
            report.extend(check_timing(a.mapped, a.timing,
                                       wire_model=a.wire_model))
            # The incremental STA engine must track full recomputation
            # bitwise; exercise it with seeded random gate moves (one
            # trial on fast audits, three on full).
            report.extend(check_incremental_sta(
                a.mapped, wire_model=a.wire_model,
                trials=1 if level == "fast" else 3))
            # The struct-of-arrays kernels must reproduce the naive
            # engines bitwise on the audited artifacts themselves.
            report.extend(check_vec_kernels(
                a.mapped, wire_model=a.wire_model))

        # Functional equivalence across the phases that must preserve it.
        if a.net is not None and a.mapped is not None:
            report.extend(_guarded_equivalence(
                a.net, a.mapped, budget, "equiv.net_mapped"))
        if level == "full":
            if a.net is not None and a.subject is not None:
                report.extend(_guarded_equivalence(
                    a.net, a.subject, budget, "equiv.net_subject"))
            if a.subject is not None and a.mapped is not None:
                report.extend(_guarded_equivalence(
                    a.subject, a.mapped, budget, "equiv.subject_mapped"))
        elif a.net is None and a.subject is not None and a.mapped is not None:
            # Mapping-only fast audits still get one equivalence proof.
            report.extend(_guarded_equivalence(
                a.subject, a.mapped, budget, "equiv.subject_mapped"))

    if OBS.enabled:
        counts = report.counts()
        OBS.metrics.counter("verify.checks").inc(counts["run"])
        OBS.metrics.counter("verify.failures").inc(counts["failed"])
    return report


def audit_flow(net, map_result, backend=None, level: str = "fast",
               wire_model=None) -> VerifyReport:
    """Audit one pipeline run end to end.

    Args:
        net: the source network the flow started from.
        map_result: the mapper's :class:`~repro.map.base.MapResult`.
        backend: the flow's :class:`~repro.flow.pipeline.BackendResult`
            (placement + timing checks are skipped when ``None``).
        level: ``"fast"`` or ``"full"``.
        wire_model: the wire-capacitance model the backend STA ran with;
            enables exact load recomputation.
    """
    return audit(
        FlowArtifacts.from_flow(net, map_result, backend, wire_model),
        level=level,
    )


def audit_mapping(map_result, net=None, level: str = "fast") -> VerifyReport:
    """Audit a mapper result alone (no placement/timing backend)."""
    return audit(
        FlowArtifacts.from_flow(net, map_result),
        level=level,
    )
