"""Functional equivalence checking between two networks.

The mapper's contract (Section 2) is that covering only re-expresses the
subject graph in library gates — the function at every primary output must
be untouched.  This module proves that claim per output cone:

* cones whose input support is small (≤ ``exhaustive_limit``) are compared
  **exhaustively** — every input minterm, bit-parallel, so a 16-input cone
  is one 65536-bit word evaluation per node;
* larger cones are compared on a **seeded random vector set**, evaluated
  once for the whole network and shared across all large cones.

Any of :class:`~repro.network.network.Network`,
:class:`~repro.network.subject.SubjectGraph` and
:class:`~repro.map.netlist.MappedNetwork` can sit on either side — they all
expose the simulation protocol (``primary_inputs``/``primary_outputs``,
``fanins``, ``topological_order()``, ``truth_table()``).
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.logic import TruthTable
from repro.network.simulate import _eval_tt_words
from repro.verify.result import CheckResult

__all__ = [
    "EquivBudget",
    "po_port",
    "cone_support",
    "check_equivalence",
    "equivalent",
]


class EquivBudget:
    """Effort knobs for one equivalence run.

    Attributes:
        exhaustive_limit: cone supports up to this size are enumerated
            completely (2**k vectors).
        num_vectors: random vectors used for larger cones.
        seed: RNG seed for the random vector set (deterministic reruns).
    """

    __slots__ = ("exhaustive_limit", "num_vectors", "seed")

    def __init__(
        self, exhaustive_limit: int = 16, num_vectors: int = 4096,
        seed: int = 0,
    ) -> None:
        self.exhaustive_limit = exhaustive_limit
        self.num_vectors = num_vectors
        self.seed = seed

    @staticmethod
    def for_level(level: str) -> "EquivBudget":
        """The budget behind the named audit level (``fast``/``full``)."""
        if level == "fast":
            return EquivBudget(exhaustive_limit=12, num_vectors=1024)
        if level == "full":
            return EquivBudget(exhaustive_limit=16, num_vectors=8192)
        raise ValueError(f"unknown verify level: {level!r}")


def po_port(name: str) -> str:
    """Strip the ``__po`` wrapper suffix so ports compare across netlists."""
    return name[:-4] if name.endswith("__po") else name


def cone_support(net, po) -> List[str]:
    """Names of the primary inputs in the transitive fanin of ``po``."""
    return sorted(
        n.name for n in net.transitive_fanin([po]) if n.is_pi
    )


def _cone_order(net_order: Sequence, po) -> List:
    """The PO's cone in fanin-first order, filtered from a full order."""
    cone = {id(n) for n in _tfi(po)}
    return [n for n in net_order if id(n) in cone]


def _tfi(po) -> List:
    """Transitive fanin of one node (protocol-agnostic, iterative)."""
    seen = set()
    out = []
    stack = [po]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        out.append(node)
        stack.extend(node.fanins)
    return out


def _evaluate_cone(
    cone_order: Sequence, po, pi_words: Dict[str, int], width: int
) -> int:
    """Evaluate one output cone bit-parallel; returns the PO's word."""
    mask = (1 << width) - 1
    values: Dict[str, int] = {}
    for node in cone_order:
        if node.is_pi:
            values[node.name] = pi_words.get(node.name, 0) & mask
        elif node.is_po:
            values[node.name] = values[node.fanins[0].name]
        else:
            fanin_words = [values[f.name] for f in node.fanins]
            values[node.name] = _eval_tt_words(
                node.truth_table(), fanin_words, mask
            )
    return values[po.name]


def _counterexample(
    support: Sequence[str], pi_words: Dict[str, int], diff: int
) -> str:
    """Decode the lowest differing vector into a readable assignment."""
    bit = (diff & -diff).bit_length() - 1
    assignment = ", ".join(
        f"{name}={(pi_words.get(name, 0) >> bit) & 1}" for name in support
    )
    return f"differs at {{{assignment}}}"


def check_equivalence(
    a, b, budget: Optional[EquivBudget] = None, name: str = "equiv",
) -> List[CheckResult]:
    """Prove ``a`` and ``b`` compute the same function, port by port.

    Returns three results: ``<name>.ports`` (terminal sets match),
    ``<name>.exhaustive`` (all small-support cones, complete enumeration)
    and ``<name>.random`` (all large-support cones, shared seeded vectors).
    """
    budget = budget or EquivBudget()
    target = f"{getattr(a, 'name', 'a')} vs {getattr(b, 'name', 'b')}"
    results: List[CheckResult] = []

    t0 = time.perf_counter()
    a_pis = sorted(pi.name for pi in a.primary_inputs)
    b_pis = sorted(pi.name for pi in b.primary_inputs)
    a_pos = {po_port(po.name): po for po in a.primary_outputs}
    b_pos = {po_port(po.name): po for po in b.primary_outputs}
    port_problems = []
    if a_pis != b_pis:
        only_a = sorted(set(a_pis) - set(b_pis))
        only_b = sorted(set(b_pis) - set(a_pis))
        port_problems.append(f"PI mismatch (a-only {only_a}, b-only {only_b})")
    if sorted(a_pos) != sorted(b_pos):
        only_a = sorted(set(a_pos) - set(b_pos))
        only_b = sorted(set(b_pos) - set(a_pos))
        port_problems.append(f"PO mismatch (a-only {only_a}, b-only {only_b})")
    results.append(CheckResult(
        f"{name}.ports", target, not port_problems,
        "; ".join(port_problems), time.perf_counter() - t0,
    ))
    if port_problems:
        return results

    order_a = a.topological_order()
    order_b = b.topological_order()

    # Partition ports by joint cone support size.
    supports: Dict[str, List[str]] = {}
    for port in a_pos:
        sup = set(cone_support(a, a_pos[port]))
        sup.update(cone_support(b, b_pos[port]))
        supports[port] = sorted(sup)
    small = [p for p in sorted(a_pos) if
             len(supports[p]) <= budget.exhaustive_limit]
    big = [p for p in sorted(a_pos) if p not in set(small)]

    # Exhaustive tier: enumerate every minterm of each small cone.
    t0 = time.perf_counter()
    failures: List[str] = []
    for port in small:
        support = supports[port]
        k = len(support)
        width = 1 << k
        pi_words = {
            pi: TruthTable.variable(i, k).bits for i, pi in enumerate(support)
        }
        wa = _evaluate_cone(_cone_order(order_a, a_pos[port]),
                            a_pos[port], pi_words, width)
        wb = _evaluate_cone(_cone_order(order_b, b_pos[port]),
                            b_pos[port], pi_words, width)
        if wa != wb:
            failures.append(
                f"{port}: {_counterexample(support, pi_words, wa ^ wb)}"
            )
    results.append(CheckResult(
        f"{name}.exhaustive", f"{target} ({len(small)} outputs)",
        not failures, "; ".join(failures[:3]), time.perf_counter() - t0,
    ))

    # Random tier: one shared whole-network simulation for all big cones.
    t0 = time.perf_counter()
    failures = []
    if big:
        width = budget.num_vectors
        rng = random.Random(budget.seed)
        pi_words = {pi: rng.getrandbits(width) for pi in a_pis}
        for port in big:
            wa = _evaluate_cone(_cone_order(order_a, a_pos[port]),
                                a_pos[port], pi_words, width)
            wb = _evaluate_cone(_cone_order(order_b, b_pos[port]),
                                b_pos[port], pi_words, width)
            if wa != wb:
                failures.append(
                    f"{port}: "
                    f"{_counterexample(supports[port], pi_words, wa ^ wb)}"
                )
    results.append(CheckResult(
        f"{name}.random",
        f"{target} ({len(big)} outputs x {budget.num_vectors} vectors)",
        not failures, "; ".join(failures[:3]), time.perf_counter() - t0,
    ))
    return results


def equivalent(a, b, budget: Optional[EquivBudget] = None) -> bool:
    """Convenience wrapper: ``True`` iff every equivalence check passes."""
    return all(c.passed for c in check_equivalence(a, b, budget))
