"""``repro.verify`` — equivalence proofs, invariant audits, fault injection.

The mapper's whole claim (Section 2) is that covering changes only *cost*,
never *function*.  This package machine-checks that claim and the
structural invariants every pipeline phase relies on:

* :mod:`repro.verify.equiv` — per-output-cone functional equivalence:
  exhaustive truth tables for small supports, seeded random vectors above;
* :mod:`repro.verify.invariants` — structural checkers for networks,
  subject graphs, mapped netlists, cone partitions, the
  egg/nestling/dove/hawk lifecycle, detailed placements and STA reports;
* :mod:`repro.verify.audit` — orchestration into ``fast``/``full`` tiers,
  wired into both flows via ``--verify`` and ``python -m repro.flow
  verify``;
* :mod:`repro.verify.faults` — deliberate corruptions proving each
  checker fires (see ``tests/verify/test_faults.py``).

Quick use::

    from repro.verify import audit_flow

    report = audit_flow(net, flow.map_result, flow.backend, level="full")
    report.raise_on_failure()
"""

from repro.verify.audit import (
    LEVELS,
    FlowArtifacts,
    audit,
    audit_flow,
    audit_mapping,
)
from repro.verify.equiv import (
    EquivBudget,
    check_equivalence,
    cone_support,
    equivalent,
    po_port,
)
from repro.verify.faults import (
    FAULTS,
    FaultNotApplicable,
    FaultSpec,
    copy_artifacts,
    inject_fault,
)
from repro.verify.invariants import (
    check_cone_partition,
    check_cut_cover,
    check_lifecycle,
    check_mapped,
    check_network,
    check_placement,
    check_subject,
    check_timing,
)
from repro.verify.result import CheckResult, VerifyReport

__all__ = [
    "LEVELS",
    "FlowArtifacts",
    "audit",
    "audit_flow",
    "audit_mapping",
    "EquivBudget",
    "check_equivalence",
    "cone_support",
    "equivalent",
    "po_port",
    "FAULTS",
    "FaultNotApplicable",
    "FaultSpec",
    "copy_artifacts",
    "inject_fault",
    "check_cone_partition",
    "check_cut_cover",
    "check_lifecycle",
    "check_mapped",
    "check_network",
    "check_placement",
    "check_subject",
    "check_timing",
    "CheckResult",
    "VerifyReport",
]
