"""Result types for the verification subsystem.

Every checker returns a :class:`CheckResult`; an audit run collects them
into a :class:`VerifyReport`.  Checkers never raise on a *finding* — a
broken invariant is data, not an exception — so a single audit pass can
report every violated invariant at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["CheckResult", "VerifyReport"]


@dataclass
class CheckResult:
    """Outcome of one checker applied to one artifact.

    Attributes:
        name: dotted checker id, e.g. ``"equiv.mapped"`` or
            ``"invariant.mapped.acyclic"``.  The prefix before the first
            dot groups checkers into families (``equiv``, ``invariant``).
        target: what was checked (a network/netlist name, a phase).
        passed: ``True`` when the invariant held.
        details: human-readable finding — the first counterexample or the
            first violated structural fact; empty when passed.
        duration_s: wall-clock cost of the check.
    """

    name: str
    target: str
    passed: bool
    details: str = ""
    duration_s: float = 0.0

    def __str__(self) -> str:
        mark = "ok  " if self.passed else "FAIL"
        line = f"[{mark}] {self.name:<34} {self.target}"
        if self.details:
            line += f" — {self.details}"
        return line


@dataclass
class VerifyReport:
    """All check results of one audit run."""

    level: str
    checks: List[CheckResult] = field(default_factory=list)

    def add(self, result: CheckResult) -> CheckResult:
        """Append one result and return it (for chaining)."""
        self.checks.append(result)
        return result

    def extend(self, results: List[CheckResult]) -> None:
        """Append many results."""
        self.checks.extend(results)

    @property
    def passed(self) -> bool:
        """``True`` iff every check passed."""
        return all(c.passed for c in self.checks)

    @property
    def failures(self) -> List[CheckResult]:
        """The failing checks, in run order."""
        return [c for c in self.checks if not c.passed]

    def family_passed(self, prefix: str) -> bool:
        """Did every check whose name starts with ``prefix`` pass?"""
        return all(
            c.passed for c in self.checks if c.name.startswith(prefix)
        )

    def counts(self) -> Dict[str, int]:
        """Summary counts: run / passed / failed."""
        failed = len(self.failures)
        return {
            "run": len(self.checks),
            "passed": len(self.checks) - failed,
            "failed": failed,
        }

    def format_table(self) -> str:
        """Fixed-width report table, one line per check."""
        lines = [f"verify report (level={self.level})"]
        lines.extend(str(c) for c in self.checks)
        c = self.counts()
        lines.append(
            f"{c['run']} checks: {c['passed']} passed, {c['failed']} failed"
        )
        return "\n".join(lines)

    def raise_on_failure(self) -> None:
        """Raise ``AssertionError`` listing every failed check."""
        if self.passed:
            return
        summary = "\n".join(str(c) for c in self.failures)
        raise AssertionError(f"verification failed:\n{summary}")
