"""Structural invariant checkers for every pipeline artifact.

One checker per artifact family, each auditing the facts the rest of the
pipeline silently relies on:

* **Boolean network** — node arity by kind, fanin/fanout backlink
  symmetry, local functions present and width-consistent, acyclicity;
* **subject graph** — base-function arity, symmetry, acyclicity, and
  structural-hash uniqueness (no duplicate NAND2 pair / INV chain);
* **mapped netlist** — gate fanin count equals cell pin count, PO/PI/
  constant arity, symmetry, acyclicity;
* **cone partition** — every cone is exactly the transitive-fanin gate set
  of its output, recomputed independently, and the cones jointly cover all
  live gates (Section 3.5's K_i partition);
* **lifecycle** — the recorded egg/nestling/dove/hawk history replays
  legally under Figure 2.2 and ends with only hawks and doves alive;
* **placement** — every gate is placed, appears in exactly one row, row
  spans do not overlap, and positions agree with the row geometry;
* **timing** — loads are non-negative (and reproducible from the netlist),
  arrivals are monotone along every edge, the critical delay matches the
  worst output, and no slack is negative at the default deadline.

Checkers re-derive facts independently of the artifact's own ``check()``
helpers wherever possible, so a bug in construction-time validation does
not blind the audit.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.geometry import Point
from repro.map.lifecycle import LifecycleTracker, NodeState, _LEGAL
from repro.map.netlist import MappedNetwork
from repro.network.network import Network
from repro.network.subject import SubjectGraph, SubjectNode, SubjectNodeType
from repro.place.detailed import DetailedPlacement
from repro.timing.model import WireCapModel, net_wire_capacitance
from repro.timing.sta import TimingReport, required_times
from repro.verify.result import CheckResult

__all__ = [
    "check_network",
    "check_subject",
    "check_mapped",
    "check_cone_partition",
    "check_cut_cover",
    "check_lifecycle",
    "check_placement",
    "check_timing",
    "check_incremental_sta",
    "check_vec_kernels",
]

#: Absolute tolerance for floating-point geometric/timing comparisons.
EPS = 1e-6


def _result(name: str, target: str, problems: List[str],
            t0: float) -> CheckResult:
    """Fold a problem list into one result (first findings shown)."""
    details = "; ".join(problems[:3])
    if len(problems) > 3:
        details += f" (+{len(problems) - 3} more)"
    return CheckResult(name, target, not problems, details,
                       time.perf_counter() - t0)


def _acyclic(net, name: str, target: str) -> CheckResult:
    """Shared acyclicity probe via the artifact's topological sort."""
    t0 = time.perf_counter()
    problems: List[str] = []
    try:
        net.topological_order()
    except ValueError as exc:
        problems.append(str(exc))
    return _result(name, target, problems, t0)


def _link_problems(nodes) -> List[str]:
    """Fanin/fanout backlink symmetry with multi-edge counts."""
    problems = []
    for node in nodes:
        for f in set(id(x) for x in node.fanins):
            fanin = next(x for x in node.fanins if id(x) == f)
            uses = sum(1 for x in node.fanins if x is fanin)
            backs = sum(1 for x in fanin.fanouts if x is node)
            if uses != backs:
                problems.append(
                    f"{node.name}: {uses} fanin uses of {fanin.name} but "
                    f"{backs} fanout backlinks"
                )
        for g in node.fanouts:
            if not any(x is node for x in g.fanins):
                problems.append(
                    f"{node.name}: fanout {g.name} lacks the fanin link"
                )
    return problems


# -- Boolean network ---------------------------------------------------------


def check_network(net: Network) -> List[CheckResult]:
    """Audit a source :class:`~repro.network.network.Network`."""
    target = net.name
    results = []

    t0 = time.perf_counter()
    problems = []
    for node in net.nodes:
        if node.is_pi and node.fanins:
            problems.append(f"PI {node.name} has fanins")
        if node.is_po and len(node.fanins) != 1:
            problems.append(f"PO {node.name} has {len(node.fanins)} drivers")
    results.append(_result("invariant.network.arity", target, problems, t0))

    t0 = time.perf_counter()
    problems = []
    for node in net.nodes:
        if node.is_internal:
            if node.function is None:
                problems.append(f"{node.name}: internal node without function")
            elif node.function.num_inputs != len(node.fanins):
                problems.append(
                    f"{node.name}: cover width {node.function.num_inputs} "
                    f"!= {len(node.fanins)} fanins"
                )
    results.append(_result("invariant.network.functions", target, problems, t0))

    t0 = time.perf_counter()
    results.append(_result("invariant.network.links", target,
                           _link_problems(net.nodes), t0))
    results.append(_acyclic(net, "invariant.network.acyclic", target))
    return results


# -- subject graph -----------------------------------------------------------

_SUBJECT_ARITY = {
    SubjectNodeType.PRIMARY_INPUT: 0,
    SubjectNodeType.PRIMARY_OUTPUT: 1,
    SubjectNodeType.NAND2: 2,
    SubjectNodeType.INV: 1,
    SubjectNodeType.CONST0: 0,
    SubjectNodeType.CONST1: 0,
}


def check_subject(subject: SubjectGraph) -> List[CheckResult]:
    """Audit a subject graph (the inchoate network N_inchoate)."""
    target = subject.name
    results = []

    t0 = time.perf_counter()
    problems = []
    for node in subject.nodes:
        expected = _SUBJECT_ARITY[node.type]
        if len(node.fanins) != expected:
            problems.append(
                f"{node.name}: {node.type.value} with "
                f"{len(node.fanins)} fanins (expected {expected})"
            )
    results.append(_result("invariant.subject.arity", target, problems, t0))

    t0 = time.perf_counter()
    results.append(_result("invariant.subject.links", target,
                           _link_problems(subject.nodes), t0))
    results.append(_acyclic(subject, "invariant.subject.acyclic", target))

    # Structural hashing: NAND2 fanin pairs and INV fanins are unique.
    t0 = time.perf_counter()
    problems = []
    nand_pairs: Dict[Tuple[int, int], str] = {}
    inv_of: Dict[int, str] = {}
    for node in subject.nodes:
        if node.type is SubjectNodeType.NAND2:
            a, b = node.fanins
            key = (min(a.uid, b.uid), max(a.uid, b.uid))
            if key in nand_pairs:
                problems.append(
                    f"duplicate NAND2 {node.name} / {nand_pairs[key]}"
                )
            nand_pairs[key] = node.name
        elif node.type is SubjectNodeType.INV:
            key1 = node.fanins[0].uid
            if key1 in inv_of:
                problems.append(
                    f"duplicate INV {node.name} / {inv_of[key1]}"
                )
            inv_of[key1] = node.name
    results.append(_result("invariant.subject.strash", target, problems, t0))
    return results


# -- mapped netlist -----------------------------------------------------------


def check_mapped(mapped: MappedNetwork) -> List[CheckResult]:
    """Audit a mapped netlist (library-gate instances)."""
    target = mapped.name
    results = []

    t0 = time.perf_counter()
    problems = []
    for node in mapped.nodes:
        if node.is_gate:
            if node.cell is None:
                problems.append(f"gate {node.name} has no cell")
            elif len(node.fanins) != node.cell.num_inputs:
                problems.append(
                    f"gate {node.name}: {len(node.fanins)} fanins for "
                    f"{node.cell.num_inputs}-input cell {node.cell.name}"
                )
        elif node.is_po and len(node.fanins) != 1:
            problems.append(f"PO {node.name} has {len(node.fanins)} drivers")
        elif (node.is_pi or node.is_constant) and node.fanins:
            problems.append(f"{node.kind.value} {node.name} has fanins")
    results.append(_result("invariant.mapped.arity", target, problems, t0))

    t0 = time.perf_counter()
    results.append(_result("invariant.mapped.links", target,
                           _link_problems(mapped.nodes), t0))
    results.append(_acyclic(mapped, "invariant.mapped.acyclic", target))
    return results


# -- cone partition -----------------------------------------------------------


def check_cone_partition(
    subject: SubjectGraph,
    cones: Optional[Sequence[Tuple[SubjectNode, Set[SubjectNode]]]] = None,
) -> List[CheckResult]:
    """Audit the per-output cone partition of Section 3.5.

    Each cone K_i must be exactly the gate subset of its output's
    transitive fanin (recomputed here with an independent traversal), and
    the cones must jointly cover every live gate of the subject graph.
    """
    target = subject.name
    t0 = time.perf_counter()
    problems: List[str] = []
    if cones is None:
        from repro.map.cones import logic_cones

        cones = logic_cones(subject)

    cone_by_po = {po.uid: cone for po, cone in cones}
    po_uids = {po.uid for po in subject.primary_outputs}
    for po, _cone in cones:
        if po.uid not in po_uids:
            problems.append(f"cone root {po.name} is not a primary output")
    covered: Set[int] = set()
    for po in subject.primary_outputs:
        cone = cone_by_po.get(po.uid)
        if cone is None:
            problems.append(f"output {po.name} has no cone")
            continue
        # Independent traversal (not graph.cone_nodes / transitive_fanin).
        expected: Set[int] = set()
        stack = [po]
        seen = {po.uid}
        while stack:
            node = stack.pop()
            if node.is_gate:
                expected.add(node.uid)
            for f in node.fanins:
                if f.uid not in seen:
                    seen.add(f.uid)
                    stack.append(f)
        actual = {n.uid for n in cone}
        if actual != expected:
            extra = len(actual - expected)
            missing = len(expected - actual)
            problems.append(
                f"cone of {po.name}: {missing} gates missing, "
                f"{extra} foreign gates"
            )
        covered.update(actual)
    live = {
        n.uid
        for n in subject.transitive_fanin(subject.primary_outputs)
        if n.is_gate
    }
    uncovered = live - covered
    if uncovered:
        problems.append(f"{len(uncovered)} live gates in no cone")
    return [_result("invariant.cones.partition", target, problems, t0)]


# -- cut cover ---------------------------------------------------------------


def check_cut_cover(subject: SubjectGraph, mapped: MappedNetwork,
                    cover: Sequence) -> List[CheckResult]:
    """Audit a cut mapper's committed cover records.

    Every :class:`~repro.map.cuts.CutCoverRecord` must name an existing
    instance of the recorded cell, and the cell — wired through the
    record's pin assignment and negations — must realise *exactly* the
    cut function, which is re-derived here from the subject graph.  This
    proves the NPN match table and the commit wiring agree cone by cone,
    independently of the end-to-end equivalence checks.
    """
    from repro.match.boolmatch import cut_function

    target = subject.name
    t0 = time.perf_counter()
    problems: List[str] = []
    nodes = {n.uid: n for n in subject.nodes}
    for record in cover:
        if record.instance not in mapped:
            problems.append(
                f"cut record names missing instance {record.instance}")
            continue
        instance = mapped[record.instance]
        if instance.cell is None or instance.cell.name != record.cell:
            problems.append(
                f"cut record {record.instance}: expected cell "
                f"{record.cell}, instance carries "
                f"{instance.cell.name if instance.cell else None}")
            continue
        root = nodes.get(record.root)
        leaves = [nodes.get(uid) for uid in record.leaves]
        if root is None or any(leaf is None for leaf in leaves):
            problems.append(
                f"cut record {record.instance}: unknown subject uids")
            continue
        n = instance.cell.num_inputs
        if (len(leaves) != n or len(record.leaf_of_pin) != n
                or len(record.pin_negated) != n):
            problems.append(
                f"cut record {record.instance}: binding width mismatch "
                f"({len(leaves)} leaves for {n}-input {record.cell})")
            continue
        tt = cut_function(root, leaves)
        if tt is None:
            problems.append(
                f"cut record {record.instance}: leaves are not a cut "
                f"of {root.name}")
            continue
        cell_bits = instance.cell.truth_table.bits
        bits = 0
        for m in range(1 << n):
            pins = 0
            for pin in range(n):
                value = (m >> record.leaf_of_pin[pin]) & 1
                if record.pin_negated[pin]:
                    value ^= 1
                if value:
                    pins |= 1 << pin
            value = (cell_bits >> pins) & 1
            if record.output_negated:
                value ^= 1
            if value:
                bits |= 1 << m
        if bits != tt.bits:
            problems.append(
                f"cut record {record.instance}: bound {record.cell} "
                f"realises {bits:#x}, cut function of {root.name} "
                f"is {tt.bits:#x}")
    return [_result("invariant.map.cut_cover", target, problems, t0)]


# -- lifecycle ---------------------------------------------------------------


def check_lifecycle(
    lifecycle: LifecycleTracker, subject: SubjectGraph
) -> List[CheckResult]:
    """Audit the egg/nestling/dove/hawk history against Figure 2.2.

    The recorded transition history is replayed from scratch: every step
    must be one of the legal transitions, the replayed final states must
    match the tracker's, the reincarnation counter must equal the number
    of dove→egg steps, and every live gate must finish as hawk or dove.
    """
    target = subject.name
    results = []

    t0 = time.perf_counter()
    problems = []
    replayed: Dict[int, NodeState] = {}
    reincarnations = 0
    for uid, frm, to in lifecycle.history:
        current = replayed.get(uid, NodeState.EGG)
        if current is not frm:
            problems.append(
                f"uid {uid}: history claims {frm.value} but replay "
                f"is at {current.value}"
            )
        if (frm, to) not in _LEGAL:
            problems.append(
                f"uid {uid}: illegal transition {frm.value} -> {to.value}"
            )
        if frm is NodeState.DOVE and to is NodeState.EGG:
            reincarnations += 1
        replayed[uid] = to
    for uid, state in replayed.items():
        tracked = lifecycle._state.get(uid, NodeState.EGG)
        if tracked is not state:
            problems.append(
                f"uid {uid}: tracker says {tracked.value}, history "
                f"replays to {state.value}"
            )
    if reincarnations != lifecycle.reincarnations:
        problems.append(
            f"reincarnation counter {lifecycle.reincarnations} != "
            f"{reincarnations} dove->egg steps in history"
        )
    results.append(_result("invariant.lifecycle.transitions",
                           target, problems, t0))

    t0 = time.perf_counter()
    problems = []
    for node in subject.transitive_fanin(subject.primary_outputs):
        if not node.is_gate:
            continue
        state = lifecycle.state(node)
        if state not in (NodeState.HAWK, NodeState.DOVE):
            problems.append(f"live gate {node.name} ended as {state.value}")
    results.append(_result("invariant.lifecycle.final",
                           target, problems, t0))
    return results


# -- placement ---------------------------------------------------------------


def check_placement(
    mapped: MappedNetwork, placement: DetailedPlacement
) -> List[CheckResult]:
    """Audit a detailed placement against its mapped netlist."""
    target = mapped.name
    results = []
    gate_names = {g.name for g in mapped.gates}

    t0 = time.perf_counter()
    problems = []
    in_rows: Dict[str, int] = {}
    for row in placement.rows:
        for cell in row.cells:
            in_rows[cell] = in_rows.get(cell, 0) + 1
    for name in gate_names:
        if name not in placement.positions:
            problems.append(f"gate {name} has no position")
        if in_rows.get(name, 0) != 1:
            problems.append(
                f"gate {name} appears in {in_rows.get(name, 0)} rows"
            )
    for cell in in_rows:
        if cell not in gate_names:
            problems.append(f"row cell {cell} is not a netlist gate")
    results.append(_result("invariant.place.coverage", target, problems, t0))

    t0 = time.perf_counter()
    problems = []
    for row in placement.rows:
        spans = []
        for cell in row.cells:
            span = row.x_spans.get(cell)
            if span is None:
                problems.append(f"row {row.index}: {cell} has no x span")
                continue
            lo, hi = span
            if hi < lo - EPS:
                problems.append(f"row {row.index}: {cell} span reversed")
            spans.append((lo, hi, cell))
        spans.sort()
        for (lo1, hi1, c1), (lo2, hi2, c2) in zip(spans, spans[1:]):
            if hi1 > lo2 + EPS:
                problems.append(
                    f"row {row.index}: {c1} and {c2} overlap "
                    f"({hi1:.2f} > {lo2:.2f})"
                )
    results.append(_result("invariant.place.overlap", target, problems, t0))

    t0 = time.perf_counter()
    problems = []
    for row in placement.rows:
        for cell in row.cells:
            pos = placement.positions.get(cell)
            span = row.x_spans.get(cell)
            if pos is None or span is None:
                continue  # already reported by coverage / overlap
            lo, hi = span
            if abs(pos.x - (lo + hi) / 2.0) > EPS:
                problems.append(
                    f"{cell}: position x {pos.x:.2f} is not the span "
                    f"midpoint {(lo + hi) / 2.0:.2f}"
                )
            if abs(pos.y - row.y_center) > EPS:
                problems.append(
                    f"{cell}: position y {pos.y:.2f} != row {row.index} "
                    f"center {row.y_center:.2f}"
                )
    results.append(_result("invariant.place.geometry", target, problems, t0))
    return results


# -- timing ------------------------------------------------------------------


def check_timing(
    mapped: MappedNetwork,
    report: TimingReport,
    wire_model: Optional[WireCapModel] = None,
    pad_cap: float = 0.25,
) -> List[CheckResult]:
    """Audit an STA report against its (placed) mapped netlist.

    When ``wire_model`` is given (the model the STA ran with), gate loads
    are recomputed from pin capacitances plus the routed wire model and
    compared against the report.
    """
    target = mapped.name
    results = []

    t0 = time.perf_counter()
    problems = []
    for name, load in report.loads.items():
        if load < -EPS:
            problems.append(f"{name}: negative load {load:.4f}")
    if wire_model is not None:
        for node in mapped.nodes:
            if not node.is_gate or node.name not in report.loads:
                continue
            expected = 0.0
            positions = []
            if node.position is not None:
                positions.append(node.position)
            for sink in node.fanouts:
                if sink.is_po:
                    expected += pad_cap
                elif sink.is_gate:
                    for pin_index, fanin in enumerate(sink.fanins):
                        if fanin is node:
                            expected += sink.cell.pins[pin_index].input_cap
                if sink.position is not None:
                    positions.append(sink.position)
            expected += net_wire_capacitance(positions, wire_model)
            got = report.loads[node.name]
            if abs(got - expected) > max(EPS, 1e-6 * abs(expected)):
                problems.append(
                    f"{node.name}: load {got:.6f} != recomputed "
                    f"{expected:.6f}"
                )
    results.append(_result("invariant.timing.loads", target, problems, t0))

    t0 = time.perf_counter()
    problems = []
    for node in mapped.nodes:
        t = report.arrivals.get(node.name)
        if t is None:
            problems.append(f"{node.name}: no arrival time")
            continue
        for fanin in node.fanins:
            t_in = report.arrivals.get(fanin.name)
            if t_in is not None and t.worst < t_in.worst - EPS:
                problems.append(
                    f"{node.name}: arrival {t.worst:.4f} earlier than "
                    f"fanin {fanin.name} at {t_in.worst:.4f}"
                )
    results.append(_result("invariant.timing.monotone", target, problems, t0))

    t0 = time.perf_counter()
    problems = []
    po_arrivals = [
        report.arrivals[po.name].worst
        for po in mapped.primary_outputs
        if po.name in report.arrivals
    ]
    if po_arrivals:
        worst = max(po_arrivals)
        if abs(worst - report.critical_delay) > EPS:
            problems.append(
                f"critical delay {report.critical_delay:.4f} != worst "
                f"output arrival {worst:.4f}"
            )
        slack = {
            name: value
            for name, value in _safe_slacks(mapped, report).items()
        }
        negative = [n for n, s in slack.items() if s < -EPS]
        if negative:
            problems.append(
                f"{len(negative)} nodes with negative slack at the "
                f"critical-delay deadline (e.g. {negative[0]})"
            )
        if slack and min(slack.values()) > EPS:
            problems.append(
                "no zero-slack node: critical path inconsistent with "
                "required times"
            )
    results.append(_result("invariant.timing.slack", target, problems, t0))
    return results


def check_incremental_sta(
    mapped: MappedNetwork,
    wire_model: Optional[WireCapModel] = None,
    trials: int = 1,
    moves_per_trial: int = 8,
    seed: int = 0,
) -> List[CheckResult]:
    """Audit the incremental timing engine against full recomputation.

    Perturbs ``moves_per_trial`` random gate positions per trial, pushes
    each move through :class:`~repro.timing.incremental.IncrementalTiming`,
    and demands the live report match a from-scratch
    :func:`~repro.timing.sta.analyze` **bitwise** — arrivals, loads,
    critical output and critical delay.  Original positions (and the
    ``node.arrival`` side effects) are restored before returning, so the
    audit leaves the netlist exactly as it found it.
    """
    import random

    from repro.geometry import Point
    from repro.timing.incremental import IncrementalTiming

    target = mapped.name
    t0 = time.perf_counter()
    problems: List[str] = []
    gates = [node for node in mapped.nodes if node.is_gate]
    placed = [g for g in gates if g.position is not None]
    if not placed:
        return [_result("invariant.timing.incremental", target, [], t0)]
    saved = {g.name: g.position for g in placed}
    rng = random.Random(seed)
    try:
        engine = IncrementalTiming(mapped, wire_model=wire_model)
        for trial in range(trials):
            for _ in range(moves_per_trial):
                gate = placed[rng.randrange(len(placed))]
                p = gate.position
                engine.set_position(
                    gate.name,
                    Point(
                        p.x + rng.uniform(-4.0, 4.0),
                        p.y + rng.uniform(-4.0, 4.0),
                    ),
                )
            engine.update()
            engine.required()
            for problem in engine.check_against_full():
                problems.append(f"trial {trial}: {problem}")
            if problems:
                break
    except Exception as exc:  # engine crash must not kill the audit
        problems.append(f"incremental engine aborted: {exc}")
    finally:
        for name, position in saved.items():
            mapped[name].position = position
        # Re-run the full pass so node.arrival side effects match the
        # restored positions (the report object is discarded).
        try:
            from repro.timing.sta import analyze

            analyze(mapped, wire_model=wire_model)
        except Exception:
            pass
    return [_result("invariant.timing.incremental", target, problems, t0)]


def check_vec_kernels(
    mapped: MappedNetwork,
    wire_model: Optional[WireCapModel] = None,
) -> List[CheckResult]:
    """Audit the struct-of-arrays kernels against the naive engines.

    Rebuilds the flow's own artifacts both ways on the audited netlist
    and demands **bitwise** agreement, per the exactness policy of
    ``docs/SCALING.md``:

    * total HPWL and per-net bounding boxes of the mapped netlist's nets
      (:class:`repro.perf.vec.PinTable` / bulk
      :class:`~repro.perf.incremental.NetBoxCache` build vs the Python
      folds);
    * a full array-form STA (:class:`repro.timing.array_sta.ArraySTA`)
      vs :func:`repro.timing.sta.analyze` — arrivals, loads, critical
      output/delay — and the backward required times at the default
      deadline;
    * the vectorized routing estimators
      (:func:`repro.route.wirelength.netlist_wirelength` under every
      wire model, including the batched Prim spanning kernel) vs the
      per-net Python folds;
    * the level-batched incremental-STA frontier
      (:class:`~repro.timing.incremental.IncrementalTiming` with
      ``vec=True``) vs the per-node reference engine over a shared
      deterministic move sequence, including the refreshed required
      times.
    """
    t0 = time.perf_counter()
    target = mapped.name
    problems: List[str] = []
    try:
        from repro.perf.incremental import NetBoxCache
        from repro.perf.vec import PinTable
        from repro.route.wirelength import netlist_hpwl_naive
        from repro.timing.array_sta import ArraySTA
        from repro.timing.sta import analyze

        nets = [
            [net.driver.name] + [node.name for node, _pin in net.sinks]
            for net in mapped.nets()
        ]
        positions = {
            node.name: node.position
            for node in mapped.nodes
            if node.position is not None
        }
        table = PinTable(nets, positions, {})
        vec_total = table.total_hpwl()
        naive_total = netlist_hpwl_naive(nets, positions, {})
        if vec_total != naive_total:
            problems.append(
                f"vec HPWL {vec_total!r} != naive {naive_total!r}"
            )
        vec_cache = NetBoxCache(nets, positions, {}, vec=True)
        naive_cache = NetBoxCache(nets, positions, {}, vec=False)
        if vec_cache._box != naive_cache._box:
            bad = sum(
                1 for a, b in zip(vec_cache._box, naive_cache._box)
                if a != b
            )
            problems.append(f"{bad} net boxes differ between vec and "
                            f"naive bulk builds")

        full = analyze(mapped, wire_model=wire_model)
        vec = ArraySTA(mapped, wire_model=wire_model).analyze()
        for name, want in full.arrivals.items():
            got = vec.arrivals.get(name)
            if got is None or got.rise != want.rise or got.fall != want.fall:
                problems.append(
                    f"array-STA arrival mismatch at {name}: "
                    f"vec={got} full={want}"
                )
        if vec.loads != full.loads:
            bad = [n for n, v in full.loads.items()
                   if vec.loads.get(n) != v]
            problems.append(
                f"array-STA load mismatch at {len(bad)} gates "
                f"(e.g. {bad[0] if bad else '?'})"
            )
        if (vec.critical_po, vec.critical_delay) != (
                full.critical_po, full.critical_delay):
            problems.append(
                f"array-STA critical mismatch: vec=({vec.critical_po}, "
                f"{vec.critical_delay!r}) full=({full.critical_po}, "
                f"{full.critical_delay!r})"
            )
        want_req = required_times(mapped, full)
        got_req = ArraySTA(mapped, wire_model=wire_model).required(vec)
        if want_req != got_req:
            bad = [n for n, v in want_req.items() if got_req.get(n) != v]
            problems.append(
                f"array-STA required-time mismatch at {len(bad)} nodes "
                f"(e.g. {bad[0] if bad else '?'})"
            )

        from repro.route.wirelength import (
            netlist_wirelength,
            netlist_wirelength_naive,
        )

        for model in ("hpwl", "steiner", "spanning"):
            v = netlist_wirelength(nets, positions, {}, model=model)
            w = netlist_wirelength_naive(nets, positions, {}, model=model)
            if v != w:
                problems.append(
                    f"vec {model} wirelength {v!r} != naive {w!r}"
                )

        problems.extend(_frontier_problems(mapped, wire_model))
    except Exception as exc:  # kernel crash must not kill the audit
        problems.append(f"vec kernel audit aborted: {exc}")
    return [_result("invariant.perf.vec", target, problems, t0)]


def _frontier_problems(
    mapped: MappedNetwork, wire_model: Optional[WireCapModel]
) -> List[str]:
    """Drive the vec and per-node incremental engines through the same
    deterministic move sequence; report any bitwise divergence.

    Positions are restored afterwards, so the audit leaves the netlist
    untouched.
    """
    import random

    from repro.timing.incremental import IncrementalTiming

    gates = sorted(g.name for g in mapped.gates)
    if not gates:
        return []
    saved = {n.name: n.position for n in mapped.nodes}
    problems: List[str] = []
    try:
        e_vec = IncrementalTiming(mapped, wire_model=wire_model, vec=True)
        e_ref = IncrementalTiming(mapped, wire_model=wire_model, vec=False)
        rng = random.Random(0xC0FFEE)
        for step in range(8):
            for _ in range(rng.randrange(1, 5)):
                name = gates[rng.randrange(len(gates))]
                p = mapped[name].position
                if p is None:
                    continue
                moved = Point(p.x + rng.uniform(-8, 8),
                              p.y + rng.uniform(-8, 8))
                e_vec.set_position(name, moved)
                e_ref.set_position(name, moved)
            live = e_vec.update()
            ref = e_ref.update()
            for name, want in ref.arrivals.items():
                got = live.arrivals.get(name)
                if (got is None or got.rise != want.rise
                        or got.fall != want.fall):
                    problems.append(
                        f"frontier arrival mismatch at {name} "
                        f"(step {step}): vec={got} ref={want}"
                    )
                    break
            if live.loads != ref.loads:
                problems.append(f"frontier load mismatch at step {step}")
            if step % 3 == 1 and e_vec.required() != e_ref.required():
                problems.append(
                    f"frontier required-time mismatch at step {step}")
            if problems:
                break
        if not problems:
            problems.extend(
                f"vec frontier vs full pass: {p}"
                for p in e_vec.check_against_full()[:3]
            )
    finally:
        for name, pos in saved.items():
            mapped[name].position = pos
    return problems


def _safe_slacks(mapped: MappedNetwork,
                 report: TimingReport) -> Dict[str, float]:
    """Per-node slack at the default deadline; empty on missing data."""
    try:
        required = required_times(mapped, report)
    except Exception:  # corrupt artifacts must not kill the audit
        return {}
    return {
        name: required[name] - report.arrivals[name].worst
        for name in required
        if name in report.arrivals
    }
