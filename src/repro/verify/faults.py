"""Fault injection: prove that every checker actually fires.

A verification subsystem that has never seen a broken artifact is itself
unverified.  Each :class:`FaultSpec` here deliberately corrupts one flow
artifact — swapped gate pins, a wrong cell, a dropped backlink, a created
cycle, an illegal lifecycle transition, overlapping cells, a non-monotone
arrival — and names the checker family that must detect it.  The
parametrized test in ``tests/verify/test_faults.py`` injects every fault
into a fresh copy of a real flow's artifacts and asserts the audit fails
in exactly that family.

Injectors mutate the artifacts **in place**; callers own the copy (see
:func:`copy_artifacts`).  Functional faults pick their victim by
simulation: the corruption is only committed where it provably changes a
primary-output word on reachable input vectors, so detection by the
equivalence tier is guaranteed, not probabilistic.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.map.lifecycle import NodeState
from repro.map.netlist import MappedNetwork, MappedNode
from repro.network.simulate import _eval_tt_words
from repro.network.subject import SubjectNodeType
from repro.timing.sta import ArrivalTimes
from repro.verify.audit import FlowArtifacts

__all__ = ["FaultSpec", "FaultNotApplicable", "FAULTS", "inject_fault",
           "copy_artifacts"]


class FaultNotApplicable(RuntimeError):
    """The artifact lacks the structure this fault needs (e.g. no
    constant node to flip); the harness skips such faults per circuit."""


@dataclass(frozen=True)
class FaultSpec:
    """One deliberate corruption and the checker that must catch it.

    Attributes:
        name: unique fault id.
        target: artifact the injector mutates (documentation only).
        detected_by: checker-name prefix expected to fail after injection.
        description: what the corruption models going wrong.
        inject: mutator; returns a human-readable note of what it did.
    """

    name: str
    target: str
    detected_by: str
    description: str
    inject: Callable[[FlowArtifacts], str]


FAULTS: Dict[str, FaultSpec] = {}


def _fault(name: str, target: str, detected_by: str, description: str):
    """Decorator registering an injector under ``name``."""
    def wrap(fn: Callable[[FlowArtifacts], str]):
        FAULTS[name] = FaultSpec(name, target, detected_by, description, fn)
        return fn
    return wrap


def inject_fault(name: str, artifacts: FlowArtifacts) -> str:
    """Apply the named fault to ``artifacts`` (mutating them)."""
    return FAULTS[name].inject(artifacts)


def copy_artifacts(artifacts: FlowArtifacts) -> FlowArtifacts:
    """Deep-copy flow artifacts so a fault can be injected destructively.

    The copy is self-consistent: object identities *within* the copy are
    preserved (a node shared by two structures stays shared).
    """
    return copy.deepcopy(artifacts)


# -- simulation helpers (victim selection) -----------------------------------


def _value_words(mapped: MappedNetwork) -> Tuple[Dict[str, int], int]:
    """Reachable value word per node: exhaustive if ≤12 PIs, else random."""
    from repro.network.logic import TruthTable

    pis = sorted(pi.name for pi in mapped.primary_inputs)
    if len(pis) <= 12:
        width = 1 << len(pis)
        pi_words = {
            name: TruthTable.variable(i, len(pis)).bits
            for i, name in enumerate(pis)
        }
    else:
        width = 1024
        rng = random.Random(7)
        pi_words = {name: rng.getrandbits(width) for name in pis}
    mask = (1 << width) - 1
    values: Dict[str, int] = {}
    for node in mapped.topological_order():
        if node.is_pi:
            values[node.name] = pi_words[node.name]
        elif node.is_po:
            values[node.name] = values[node.fanins[0].name]
        else:
            words = [values[f.name] for f in node.fanins]
            values[node.name] = _eval_tt_words(node.truth_table(), words, mask)
    return values, width


def _po_drivers(mapped: MappedNetwork) -> List[MappedNode]:
    """Gates that directly drive a primary output, in PO order."""
    out = []
    for po in mapped.primary_outputs:
        driver = po.fanins[0]
        if driver.is_gate and driver not in out:
            out.append(driver)
    return out


# -- functional faults (equivalence must fire) -------------------------------


@_fault("mapped_swap_fanins", "mapped", "equiv",
        "swap the first two input pins of a gate with an asymmetric cell")
def _inject_swap_fanins(a: FlowArtifacts) -> str:
    values, width = _value_words(a.mapped)
    mask = (1 << width) - 1
    for gate in _po_drivers(a.mapped) + a.mapped.gates:
        if len(gate.fanins) < 2 or gate.fanins[0] is gate.fanins[1]:
            continue
        tt = gate.truth_table()
        words = [values[f.name] for f in gate.fanins]
        swapped = [words[1], words[0]] + words[2:]
        if _eval_tt_words(tt, words, mask) == _eval_tt_words(tt, swapped, mask):
            continue  # symmetric here: the swap would be invisible
        gate.fanins[0], gate.fanins[1] = gate.fanins[1], gate.fanins[0]
        return f"swapped pins 0/1 of {gate.name} ({gate.cell.name})"
    raise FaultNotApplicable("no gate with a pin-order-sensitive cell")


@_fault("mapped_wrong_cell", "mapped", "equiv",
        "replace a gate's cell with a same-arity cell of another function")
def _inject_wrong_cell(a: FlowArtifacts) -> str:
    values, width = _value_words(a.mapped)
    mask = (1 << width) - 1
    cells_by_arity: Dict[int, List] = {}
    for g in a.mapped.gates:
        arity_cells = cells_by_arity.setdefault(g.cell.num_inputs, [])
        if all(c.name != g.cell.name for c in arity_cells):
            arity_cells.append(g.cell)
    for gate in _po_drivers(a.mapped) + a.mapped.gates:
        if not gate.is_gate:
            continue
        words = [values[f.name] for f in gate.fanins]
        original = _eval_tt_words(gate.truth_table(), words, mask)
        for cell in cells_by_arity.get(len(gate.fanins), []):
            if cell.name == gate.cell.name:
                continue
            if _eval_tt_words(cell.truth_table, words, mask) == original:
                continue  # same function on reachable vectors
            old = gate.cell.name
            gate.cell = cell
            return f"replaced {gate.name}: {old} -> {cell.name}"
    raise FaultNotApplicable("no same-arity cell pair with different function")


@_fault("mapped_rewire_po", "mapped", "equiv",
        "reconnect a primary output to a signal with a different function")
def _inject_rewire_po(a: FlowArtifacts) -> str:
    values, _width = _value_words(a.mapped)
    for po in a.mapped.primary_outputs:
        old = po.fanins[0]
        for candidate in a.mapped.gates:
            if candidate is old:
                continue
            if values[candidate.name] == values[old.name]:
                continue  # same signal, swap would be invisible
            old.fanouts.remove(po)
            po.fanins[0] = candidate
            candidate.fanouts.append(po)
            return f"rewired {po.name}: {old.name} -> {candidate.name}"
    raise FaultNotApplicable("no alternative driver with a different signal")


@_fault("mapped_const_flip", "mapped", "equiv",
        "invert a constant source's value")
def _inject_const_flip(a: FlowArtifacts) -> str:
    for node in a.mapped.nodes:
        if node.is_constant and node.fanouts:
            node.const_value = not node.const_value
            return f"flipped constant {node.name}"
    raise FaultNotApplicable("netlist has no live constant node")


# -- structural faults on the mapped netlist ---------------------------------


@_fault("mapped_drop_backlink", "mapped", "invariant.mapped.links",
        "remove a fanout backlink so fanin/fanout lists disagree")
def _inject_drop_backlink(a: FlowArtifacts) -> str:
    for gate in a.mapped.gates:
        if gate.fanins:
            fanin = gate.fanins[0]
            fanin.fanouts.remove(gate)
            return f"dropped {fanin.name} -> {gate.name} backlink"
    raise FaultNotApplicable("no gate with fanins")


@_fault("mapped_cycle", "mapped", "invariant.mapped.acyclic",
        "rewire a gate input onto a transitive fanout, creating a cycle")
def _inject_cycle(a: FlowArtifacts) -> str:
    # Feed a PO-driving gate's output back into a gate of its own cone.
    for gate in _po_drivers(a.mapped):
        cone = a.mapped.transitive_fanin([gate])
        for inner in cone:
            if inner is gate or not inner.is_gate or not inner.fanins:
                continue
            old = inner.fanins[0]
            old.fanouts.remove(inner)
            inner.fanins[0] = gate
            gate.fanouts.append(inner)
            return f"cycle: {gate.name} feeds its own cone member {inner.name}"
    raise FaultNotApplicable("no multi-gate cone to close a cycle in")


@_fault("mapped_pin_count", "mapped", "invariant.mapped.arity",
        "give a gate more fanins than its cell has pins")
def _inject_pin_count(a: FlowArtifacts) -> str:
    for gate in a.mapped.gates:
        if gate.fanins:
            extra = gate.fanins[0]
            gate.fanins.append(extra)
            extra.fanouts.append(gate)
            return f"added surplus pin to {gate.name}"
    raise FaultNotApplicable("no gate with fanins")


# -- subject-graph faults ----------------------------------------------------


@_fault("subject_arity", "subject", "invariant.subject.arity",
        "give an inverter a second fanin")
def _inject_subject_arity(a: FlowArtifacts) -> str:
    for node in a.subject.nodes:
        if node.type is SubjectNodeType.INV:
            extra = node.fanins[0]
            node.fanins.append(extra)
            extra.fanouts.append(node)
            return f"inverter {node.name} now has 2 fanins"
    raise FaultNotApplicable("subject graph has no inverter")


@_fault("subject_strash_dup", "subject", "invariant.subject.strash",
        "create a second NAND2 over an already-hashed fanin pair")
def _inject_strash_dup(a: FlowArtifacts) -> str:
    for node in a.subject.nodes:
        if node.type is SubjectNodeType.NAND2:
            dup = a.subject._new_node(
                None, SubjectNodeType.NAND2, list(node.fanins)
            )
            return f"duplicated NAND2 {node.name} as {dup.name}"
    raise FaultNotApplicable("subject graph has no NAND2 node")


# -- cone-partition faults ---------------------------------------------------


@_fault("cones_missing_gate", "cones", "invariant.cones.partition",
        "remove one gate from a cone's membership set")
def _inject_cone_gap(a: FlowArtifacts) -> str:
    from repro.map.cones import logic_cones

    if a.cones is None:
        a.cones = logic_cones(a.subject)
    for po, cone in a.cones:
        if cone:
            victim = next(iter(cone))
            cone.discard(victim)
            return f"removed {victim.name} from cone of {po.name}"
    raise FaultNotApplicable("no non-empty cone")


# -- lifecycle faults --------------------------------------------------------


@_fault("lifecycle_illegal", "lifecycle", "invariant.lifecycle",
        "record a hawk reverting to an egg (forbidden by Figure 2.2)")
def _inject_lifecycle_illegal(a: FlowArtifacts) -> str:
    for uid, state in a.lifecycle._state.items():
        if state is NodeState.HAWK:
            a.lifecycle.history.append((uid, NodeState.HAWK, NodeState.EGG))
            a.lifecycle._state[uid] = NodeState.EGG
            return f"uid {uid}: hawk -> egg recorded"
    raise FaultNotApplicable("no hawk in the lifecycle tracker")


@_fault("lifecycle_unfinished", "lifecycle", "invariant.lifecycle",
        "leave a live gate stuck as a nestling after mapping")
def _inject_lifecycle_unfinished(a: FlowArtifacts) -> str:
    for node in a.subject.transitive_fanin(a.subject.primary_outputs):
        if node.is_gate:
            a.lifecycle._state[node.uid] = NodeState.NESTLING
            return f"{node.name} forced back to nestling"
    raise FaultNotApplicable("no live gate")


# -- placement faults --------------------------------------------------------


@_fault("place_overlap", "placement", "invariant.place",
        "slide one placed cell on top of its row neighbour")
def _inject_place_overlap(a: FlowArtifacts) -> str:
    for row in a.placement.rows:
        if len(row.cells) < 2:
            continue
        first, second = row.cells[0], row.cells[1]
        lo1, hi1 = row.x_spans[first]
        lo2, hi2 = row.x_spans[second]
        row.x_spans[second] = (lo1 + (hi1 - lo1) / 2.0,
                               lo1 + (hi1 - lo1) / 2.0 + (hi2 - lo2))
        return f"{second} slid onto {first} in row {row.index}"
    raise FaultNotApplicable("no row with two cells")


@_fault("place_missing", "placement", "invariant.place.coverage",
        "lose a gate's placement entirely")
def _inject_place_missing(a: FlowArtifacts) -> str:
    for row in a.placement.rows:
        if row.cells:
            victim = row.cells[0]
            row.cells.remove(victim)
            del row.x_spans[victim]
            a.placement.positions.pop(victim, None)
            return f"{victim} removed from placement"
    raise FaultNotApplicable("placement has no cells")


# -- timing faults -----------------------------------------------------------


@_fault("timing_arrival_drop", "timing", "invariant.timing",
        "make a gate's arrival earlier than its fanin's (non-causal)")
def _inject_arrival_drop(a: FlowArtifacts) -> str:
    for gate in a.mapped.gates:
        for fanin in gate.fanins:
            t_in = a.timing.arrivals.get(fanin.name)
            if t_in is not None and t_in.worst > 0:
                a.timing.arrivals[gate.name] = ArrivalTimes.at(
                    t_in.worst - 1.0
                )
                return f"{gate.name} arrival forced below {fanin.name}"
    raise FaultNotApplicable("no gate downstream of a nonzero arrival")


@_fault("timing_load_negative", "timing", "invariant.timing.loads",
        "record a physically impossible negative load")
def _inject_negative_load(a: FlowArtifacts) -> str:
    for name in a.timing.loads:
        a.timing.loads[name] = -1.0
        return f"load of {name} set to -1.0"
    raise FaultNotApplicable("timing report has no loads")
