"""repro -- a full reproduction of *Layout Driven Technology Mapping*
(Massoud Pedram and Narasimha Bhat, DAC 1991): the **Lily** technology
mapper, its MIS-style baseline, and every substrate the experiments need --
Boolean networks, BLIF, subject-graph decomposition, a standard-cell
library with pattern graphs, quadratic global placement, wirelength and
channel-routing estimation, static timing, and the benchmark circuit suite.
"""

__version__ = "1.0.0"
