"""Placement substrate: GORDIAN-style global placement (quadratic
programming + recursive bi-partitioning with FM refinement), connectivity-
driven I/O pad assignment, and row-based detailed placement for standard
cells."""

from repro.place.hypergraph import (
    PlacementNetlist,
    mapped_netlist,
    network_netlist,
    subject_netlist,
)
from repro.place.quadratic import solve_quadratic
from repro.place.fm import fm_bipartition
from repro.place.global_place import GlobalPlacement, GlobalPlacer
from repro.place.pads import assign_pads, perimeter_slots
from repro.place.detailed import DetailedPlacement, Row, detailed_place
from repro.place.anneal import AnnealStats, simulated_annealing

__all__ = [
    "PlacementNetlist",
    "subject_netlist",
    "mapped_netlist",
    "network_netlist",
    "AnnealStats",
    "simulated_annealing",
    "solve_quadratic",
    "fm_bipartition",
    "GlobalPlacement",
    "GlobalPlacer",
    "assign_pads",
    "perimeter_slots",
    "DetailedPlacement",
    "Row",
    "detailed_place",
]
