"""GORDIAN-style global placement (Section 3.1).

Alternates quadratic optimisation with recursive bi-partitioning: the
unconstrained quadratic solution captures the connectivity structure, then
cells are recursively split into regions (area-weighted median on the
coordinate, optionally refined by FM min-cut) and re-solved with springs
anchoring every cell to its region centre.  Partitioning stops when each
region holds at most ``min_cells_per_region`` cells — the paper's
"user-specified parameter" (a limit of one would be a detailed placement).

The result is the *balanced point placement* Lily needs: gates uniformly
distributed over the image, no over- or under-subscribed subregions, pads
fixed on the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry import Point, Rect
from repro.obs import OBS
from repro.place.fm import fm_bipartition
from repro.place.hypergraph import PlacementNetlist
from repro.place.quadratic import QuadraticSystem

__all__ = ["GlobalPlacement", "GlobalPlacer"]


@dataclass
class GlobalPlacement:
    """Result of global placement."""

    positions: Dict[str, Point]
    region: Rect
    leaf_regions: List[Rect] = field(default_factory=list)
    assignment: Dict[str, int] = field(default_factory=dict)

    def occupancies(self, sizes: Dict[str, float]) -> List[float]:
        """Total cell area per leaf region (balance diagnostics)."""
        occupancy = [0.0] * len(self.leaf_regions)
        for name, region_index in self.assignment.items():
            occupancy[region_index] += sizes.get(name, 1.0)
        return occupancy


class GlobalPlacer:
    """Quadratic placement + recursive bi-partitioning.

    Args:
        min_cells_per_region: stop splitting below this occupancy.
        use_fm: refine each geometric split with an FM min-cut pass.
        anchor_base: spring weight pulling cells to region centres; doubled
            every partitioning level so regions consolidate.
        max_levels: hard bound on partitioning depth.
        vec: assemble the quadratic system with the struct-of-arrays
            kernels (bitwise-identical matrix; ``PerfOptions.vec_place``).
    """

    def __init__(
        self,
        min_cells_per_region: int = 8,
        use_fm: bool = True,
        anchor_base: float = 0.05,
        max_levels: int = 10,
        vec: bool = True,
    ) -> None:
        self.min_cells_per_region = min_cells_per_region
        self.use_fm = use_fm
        self.anchor_base = anchor_base
        self.max_levels = max_levels
        self.vec = vec

    def place(self, netlist: PlacementNetlist, region: Rect) -> GlobalPlacement:
        """Produce a balanced point placement of all movable cells."""
        netlist.check()
        if not netlist.movables:
            return GlobalPlacement({}, region, [region], {})
        # One cached assembly serves every partitioning level: anchors
        # only touch the diagonal/rhs, so each level's re-solve skips the
        # net traversal while building a bitwise-identical system.
        with OBS.span("place.quadratic", cells=len(netlist.movables)):
            system = QuadraticSystem(netlist, region, vec=self.vec)
            positions = system.solve()
        if OBS.enabled:
            OBS.metrics.counter("place.quadratic_solves").inc()
        partitions: List[Tuple[Rect, List[str]]] = [
            (region, list(netlist.movables))
        ]
        levels_run = 0
        for level in range(self.max_levels):
            if all(
                len(cells) <= self.min_cells_per_region
                for _rect, cells in partitions
            ):
                break
            partitions = self._split_level(partitions, netlist, positions, level)
            levels_run = level + 1
            anchor_weight = self.anchor_base * (2.0 ** level)
            anchors = {}
            for rect, cells in partitions:
                center = rect.center
                for cell in cells:
                    anchors[cell] = (center, anchor_weight)
            with OBS.span("place.quadratic", level=level,
                          partitions=len(partitions)):
                positions = system.solve(anchors=anchors)
            if OBS.enabled:
                OBS.metrics.counter("place.quadratic_solves").inc()
        if OBS.enabled:
            OBS.metrics.counter("place.partitions").inc(len(partitions))
            OBS.metrics.gauge("place.levels").set(levels_run)

        final: Dict[str, Point] = {}
        assignment: Dict[str, int] = {}
        leaf_regions: List[Rect] = []
        for region_index, (rect, cells) in enumerate(partitions):
            leaf_regions.append(rect)
            for cell in cells:
                p = positions[cell]
                final[cell] = Point(
                    min(max(p.x, rect.lx), rect.ux),
                    min(max(p.y, rect.ly), rect.uy),
                )
                assignment[cell] = region_index
        return GlobalPlacement(final, region, leaf_regions, assignment)

    # -- partitioning -------------------------------------------------------

    def _split_level(
        self,
        partitions: List[Tuple[Rect, List[str]]],
        netlist: PlacementNetlist,
        positions: Dict[str, Point],
        level: int,
    ) -> List[Tuple[Rect, List[str]]]:
        out: List[Tuple[Rect, List[str]]] = []
        for rect, cells in partitions:
            if len(cells) <= self.min_cells_per_region:
                out.append((rect, cells))
                continue
            out.extend(self._split_region(rect, cells, netlist, positions))
        return out

    def _split_region(
        self,
        rect: Rect,
        cells: List[str],
        netlist: PlacementNetlist,
        positions: Dict[str, Point],
    ) -> List[Tuple[Rect, List[str]]]:
        """Split one region in two along its longer dimension."""
        vertical_cut = rect.width >= rect.height  # cut x if wide
        coordinate = (
            (lambda c: positions[c].x) if vertical_cut else (lambda c: positions[c].y)
        )
        ordered = sorted(cells, key=lambda c: (coordinate(c), c))
        sizes = netlist.sizes
        total = sum(sizes.get(c, 1.0) for c in cells)
        # Area-weighted median split.
        acc = 0.0
        split_at = len(ordered) // 2
        for i, cell in enumerate(ordered):
            acc += sizes.get(cell, 1.0)
            if acc >= total / 2.0:
                split_at = min(max(i + 1, 1), len(ordered) - 1)
                break
        low_cells = ordered[:split_at]
        high_cells = ordered[split_at:]

        if self.use_fm and len(cells) >= 8:
            low_cells, high_cells = self._refine_split(
                rect, low_cells, high_cells, netlist, positions, vertical_cut
            )
            if not low_cells or not high_cells:
                low_cells, high_cells = ordered[:split_at], ordered[split_at:]

        low_area = sum(sizes.get(c, 1.0) for c in low_cells)
        ratio = low_area / total if total > 0 else 0.5
        ratio = min(max(ratio, 0.2), 0.8)
        if vertical_cut:
            cut = rect.lx + rect.width * ratio
            low_rect = Rect(rect.lx, rect.ly, cut, rect.uy)
            high_rect = Rect(cut, rect.ly, rect.ux, rect.uy)
        else:
            cut = rect.ly + rect.height * ratio
            low_rect = Rect(rect.lx, rect.ly, rect.ux, cut)
            high_rect = Rect(rect.lx, cut, rect.ux, rect.uy)
        return [(low_rect, low_cells), (high_rect, high_cells)]

    def _refine_split(
        self,
        rect: Rect,
        low_cells: List[str],
        high_cells: List[str],
        netlist: PlacementNetlist,
        positions: Dict[str, Point],
        vertical_cut: bool,
    ) -> Tuple[List[str], List[str]]:
        """FM refinement of a geometric split.

        Pins outside the region (other cells and pads) are fixed on the
        side their current position suggests.
        """
        if OBS.enabled:
            OBS.metrics.counter("place.fm_refinements").inc()
        local = set(low_cells) | set(high_cells)
        cut_coord = _mean_boundary(positions, low_cells, high_cells, vertical_cut)
        initial: Dict[str, int] = {}
        for c in low_cells:
            initial[c] = 0
        for c in high_cells:
            initial[c] = 1

        relevant_nets: List[List[str]] = []
        for net in netlist.nets:
            if not any(pin in local for pin in net):
                continue
            relevant_nets.append(net)
            for pin in net:
                if pin in initial:
                    continue
                p = netlist.fixed.get(pin) or positions.get(pin)
                if p is None:
                    continue
                value = p.x if vertical_cut else p.y
                initial[pin] = 0 if value <= cut_coord else 1

        refined = fm_bipartition(
            sorted(local),
            relevant_nets,
            initial,
            sizes=netlist.sizes,
            balance_tolerance=0.1,
            max_passes=2,
        )
        new_low = [c for c in sorted(local) if refined[c] == 0]
        new_high = [c for c in sorted(local) if refined[c] == 1]
        return new_low, new_high


def _mean_boundary(positions, low_cells, high_cells, vertical_cut) -> float:
    """Coordinate of the split line between the two cell groups."""
    def value(cell: str) -> float:
        p = positions[cell]
        return p.x if vertical_cut else p.y

    low_max = max(value(c) for c in low_cells)
    high_min = min(value(c) for c in high_cells)
    return (low_max + high_min) / 2.0
