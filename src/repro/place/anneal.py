"""Simulated-annealing detailed-placement improvement (TimberWolf style).

The paper's back-end used TimberWolf 4.2, a simulated-annealing placer.
This module refines a row-legalised placement with the classic SA loop:
random pairwise cell swaps (within and across rows, with row repacking and
capacity control), Metropolis acceptance on half-perimeter wirelength, and
geometric cooling from an automatically calibrated starting temperature.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.geometry import Point
from repro.obs import OBS
from repro.place.detailed import DetailedPlacement, Row
from repro.place.hypergraph import PlacementNetlist

__all__ = ["AnnealStats", "simulated_annealing"]


@dataclass
class AnnealStats:
    """Outcome of one annealing run."""

    initial_hpwl: float = 0.0
    final_hpwl: float = 0.0
    moves_tried: int = 0
    moves_accepted: int = 0
    initial_temperature: float = 0.0

    @property
    def improvement(self) -> float:
        if self.initial_hpwl <= 0:
            return 0.0
        return 1.0 - self.final_hpwl / self.initial_hpwl


class _Incremental:
    """Full-recompute HPWL bookkeeping over a mutable placement.

    The reference engine: every refreshed net is re-folded from live
    positions and every swap repacks its rows in full.
    :class:`_IncrementalBBox` layers the stamped bounding-box cache of
    :class:`repro.perf.incremental.StampedNetBoxCache` on top and must
    stay bit-identical to this class (asserted by the randomized
    incremental-vs-full tests).
    """

    #: Whether ``_swap_cells`` should use the stamp-tracking fast repack.
    incremental = False

    def __init__(
        self, placement: DetailedPlacement, netlist: PlacementNetlist
    ) -> None:
        self.placement = placement
        self.netlist = netlist
        self.cell_nets: Dict[str, List[int]] = {}
        for net_id, net in enumerate(netlist.nets):
            for pin in net:
                self.cell_nets.setdefault(pin, []).append(net_id)
        self.net_hpwl: List[float] = self._initial_hpwl()
        self.total = sum(self.net_hpwl)
        self.row_of: Dict[str, Row] = {}
        for row in placement.rows:
            for cell in row.cells:
                self.row_of[cell] = row
        self.widths = {
            cell: row.x_spans[cell][1] - row.x_spans[cell][0]
            for row in placement.rows
            for cell in row.cells
        }
        self.capacity = max(
            (row.width for row in placement.rows), default=0.0
        ) * 1.05

    def _initial_hpwl(self) -> List[float]:
        """Per-net HPWL at engine construction (hook for the vec engine)."""
        return [self._compute(net) for net in self.netlist.nets]

    def _position(self, pin: str) -> Optional[Point]:
        p = self.placement.positions.get(pin)
        if p is not None:
            return p
        return self.netlist.fixed.get(pin)

    def _compute(self, net: List[str]) -> float:
        xs: List[float] = []
        ys: List[float] = []
        for pin in net:
            p = self._position(pin)
            if p is None:
                continue
            xs.append(p.x)
            ys.append(p.y)
        if len(xs) < 2:
            return 0.0
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def affected(self, cells: Tuple[str, ...]) -> List[int]:
        net_ids: List[int] = []
        for cell in cells:
            net_ids.extend(self.cell_nets.get(cell, []))
        return sorted(set(net_ids))

    def refresh(self, net_ids: List[int]) -> float:
        """Recompute the given nets; returns the delta applied to total."""
        delta = 0.0
        for net_id in net_ids:
            new = self._compute(self.netlist.nets[net_id])
            delta += new - self.net_hpwl[net_id]
            self.net_hpwl[net_id] = new
        self.total += delta
        return delta

    def row_width(self, row: Row) -> float:
        """Current packed width of a row (for the capacity check)."""
        return row.width


class _IncrementalBBox(_Incremental):
    """Stamp-validated bounding-box HPWL bookkeeping (the fast engine).

    Same external behaviour as :class:`_Incremental` — including the
    deliberate staleness of ``net_hpwl`` for nets that row repacking
    shifts without them being scored — but each refreshed net costs a
    stamp check against its cached box instead of a full fold, swaps
    repack only the row suffix that actually shifts, rejected moves need
    no restore work beyond the undoing swap's own stamps, and row widths
    are maintained instead of re-derived per capacity check.
    """

    incremental = True

    #: Whether the stamped cache bulk-builds its boxes through the
    #: struct-of-arrays kernels (bitwise-identical; the vec engine's
    #: construction fast path).
    vec_cache = False

    def __init__(
        self, placement: DetailedPlacement, netlist: PlacementNetlist
    ) -> None:
        super().__init__(placement, netlist)
        from repro.perf.incremental import StampedNetBoxCache

        self.cache = StampedNetBoxCache(
            netlist.nets, placement.positions, netlist.fixed,
            vec=self.vec_cache,
        )
        self._row_width: Dict[int, float] = {
            row.index: row.width for row in placement.rows
        }

    def refresh(self, net_ids: List[int]) -> float:
        # Scored nets always contain a just-swapped cell, so skip the
        # stamp scan and re-fold outright (same value, fewer checks).
        cache = self.cache
        boxes = cache._box
        stamps = cache._net_stamp
        clock = cache.clock
        fold = cache._fold
        hpwl = self.net_hpwl
        delta = 0.0
        folded = 0
        for net_id in net_ids:
            box = boxes[net_id]
            if box is None:
                new = 0.0
            else:
                box = boxes[net_id] = fold(net_id)
                stamps[net_id] = clock
                folded += 1
                new = (box[2] - box[0]) + (box[3] - box[1])
            delta += new - hpwl[net_id]
            hpwl[net_id] = new
        cache.refolds += folded
        self.total += delta
        return delta

    def row_width(self, row: Row) -> float:
        return self._row_width[row.index]


class _VecBBox(_IncrementalBBox):
    """Struct-of-arrays *construction* for the incremental engine.

    Everything built once per run is vectorized: the initial per-net
    boxes bulk-build through :func:`repro.perf.vec.fold_box_arrays`
    (``vec_cache``) and the initial per-net HPWL list comes from one
    flat :class:`repro.perf.vec.PinTable` fold instead of ``len(nets)``
    Python folds.  Move *scoring* stays per-net dict reads, inherited
    from :class:`_IncrementalBBox`: a probe touches 2–6 small nets, and
    at that batch size per-pin dict lookups beat any SoA fold once the
    cost of keeping coordinate arrays current against row-repack
    position writes is charged (a write-through-mirror variant measured
    2–3x *slower* end to end — repack writes outnumber scored pins by
    two orders of magnitude).  Min/max folds are exact in either
    representation, so results stay bitwise-identical throughout.
    """

    vec_cache = True

    def _initial_hpwl(self) -> List[float]:
        from repro.perf.vec import PinTable

        table = PinTable(
            self.netlist.nets, self.placement.positions,
            self.netlist.fixed,
        )
        return table.hpwl().tolist()

    @property
    def refreshes(self) -> int:
        """Net re-folds performed (feeds ``perf.vec.anneal_refreshes``).

        A plain property over the inherited cache counter: the scoring
        hot path must not carry a per-call override just to count.
        """
        return self.cache.refolds


def _repack_row(placement: DetailedPlacement, row: Row) -> None:
    x = 0.0
    for cell in row.cells:
        lo, hi = row.x_spans[cell]
        width = hi - lo
        row.x_spans[cell] = (x, x + width)
        placement.positions[cell] = Point(x + width / 2.0, row.y_center)
        x += width


def _repack_row_suffix(
    state: "_IncrementalBBox", row: Row, start: int, last_swapped: int
) -> None:
    """Repack a row from ``start``, stamping every cell that moves.

    Bit-identical to :func:`_repack_row`: spans before ``start`` already
    hold the exact running-sum values a full repack recomputes (their
    widths are untouched since the last repack), and the loop stops early
    once — past the swapped slot — a cell's stored span matches the
    running sum, because from there on a full repack rewrites only
    identical values.
    """
    cache = state.cache
    positions = state.placement.positions
    spans = row.x_spans
    cells = row.cells
    stamps = cache.cell_stamp
    clock = cache.clock
    x = spans[cells[start]][0]
    y = row.y_center
    n = len(cells)
    # Through the swapped slot: these cells always need their spans redone.
    for k in range(start, min(last_swapped + 1, n)):
        cell = cells[k]
        lo, hi = spans[cell]
        width = hi - lo
        spans[cell] = (x, x + width)
        nx = x + width / 2.0
        old = positions[cell]
        if old.x != nx or old.y != y:
            positions[cell] = Point(nx, y)
            stamps[cell] = clock
        x += width
    # Past it: stop at the first cell whose stored span matches the
    # running sum — everything after is provably unchanged.
    for k in range(last_swapped + 1, n):
        cell = cells[k]
        lo, hi = spans[cell]
        if lo == x:
            return
        width = hi - lo
        spans[cell] = (x, x + width)
        positions[cell] = Point(x + width / 2.0, y)
        stamps[cell] = clock
        x += width
    state._row_width[row.index] = x


def _swap_cells(state: _Incremental, a: str, b: str) -> None:
    """Exchange two cells' slots (possibly across rows) and repack."""
    row_a, row_b = state.row_of[a], state.row_of[b]
    ia = row_a.cells.index(a)
    ib = row_b.cells.index(b)
    row_a.cells[ia], row_b.cells[ib] = b, a
    # Move span widths with the cells.
    wa, wb = state.widths[a], state.widths[b]
    span_a = row_a.x_spans.pop(a)
    span_b = row_b.x_spans.pop(b)
    row_a.x_spans[b] = (span_a[0], span_a[0] + wb)
    row_b.x_spans[a] = (span_b[0], span_b[0] + wa)
    state.row_of[a], state.row_of[b] = row_b, row_a
    if state.incremental:
        state.cache.tick()
        if row_b is row_a:
            _repack_row_suffix(state, row_a, min(ia, ib), max(ia, ib))
        else:
            _repack_row_suffix(state, row_a, ia, ia)
            _repack_row_suffix(state, row_b, ib, ib)
    else:
        _repack_row(state.placement, row_a)
        if row_b is not row_a:
            _repack_row(state.placement, row_b)


def simulated_annealing(
    placement: DetailedPlacement,
    netlist: PlacementNetlist,
    seed: int = 0,
    moves_per_cell: int = 40,
    cooling: float = 0.92,
    min_acceptance: float = 0.015,
    incremental: bool = True,
    vec: bool = True,
) -> AnnealStats:
    """Refine a detailed placement in place; returns run statistics.

    Args:
        placement: the row placement to improve (mutated).
        netlist: its hypergraph (for wirelength and fixed pads).
        seed: RNG seed (runs are deterministic).
        moves_per_cell: swap attempts per cell per temperature step.
        cooling: geometric temperature decay per step.
        min_acceptance: stop when the acceptance rate falls below this.
        incremental: score moves with the per-net bounding-box cache
            (bit-identical results, much faster); off uses the
            full-recompute reference engine.
        vec: with ``incremental``, bulk-build the engine's initial
            boxes/HPWL through the struct-of-arrays kernels
            (:class:`_VecBBox`); bit-identical to both other engines,
            so the accept/reject sequence and the final placement are
            exactly the same.
    """
    cells = [c for row in placement.rows for c in row.cells]
    stats = AnnealStats()
    if len(cells) < 2:
        return stats
    if incremental:
        state_class = _VecBBox if vec else _IncrementalBBox
    else:
        state_class = _Incremental
    with OBS.span("place.anneal", cells=len(cells)):
        state = state_class(placement, netlist)
        _anneal(state, seed, moves_per_cell, cooling,
                min_acceptance, cells, stats)
    if OBS.enabled:
        OBS.metrics.counter("anneal.moves_tried").inc(stats.moves_tried)
        OBS.metrics.counter("anneal.moves_accepted").inc(stats.moves_accepted)
        OBS.metrics.histogram("anneal.improvement").observe(stats.improvement)
        if isinstance(state, _VecBBox):
            OBS.metrics.counter(
                "perf.vec.anneal_refreshes").inc(state.refreshes)
        elif incremental:
            cache = state.cache
            OBS.metrics.counter(
                "perf.incremental.bbox_hits").inc(cache.hits)
            OBS.metrics.counter(
                "perf.incremental.bbox_refolds").inc(cache.refolds)
    return stats


def _anneal(
    state: _Incremental,
    seed: int,
    moves_per_cell: int,
    cooling: float,
    min_acceptance: float,
    cells: List[str],
    stats: AnnealStats,
) -> None:
    rng = random.Random(seed)
    stats.initial_hpwl = state.total

    # Calibrate T0 from the spread of random-move deltas.
    samples: List[float] = []
    for _ in range(min(60, len(cells) * 2)):
        a, b = rng.sample(cells, 2)
        nets = state.affected((a, b))
        _swap_cells(state, a, b)
        delta = state.refresh(nets)
        samples.append(abs(delta))
        _swap_cells(state, a, b)  # undo
        state.refresh(nets)
    mean_delta = sum(samples) / len(samples) if samples else 1.0
    temperature = max(mean_delta * 10.0, 1e-6)
    stats.initial_temperature = temperature

    moves_per_step = moves_per_cell * len(cells) // 8
    while True:
        accepted = 0
        for _ in range(max(moves_per_step, 1)):
            a, b = rng.sample(cells, 2)
            if state.row_of[a] is not state.row_of[b]:
                # Capacity control for unequal widths across rows.
                row_b = state.row_of[b]
                row_a = state.row_of[a]
                delta_w = state.widths[a] - state.widths[b]
                if state.row_width(row_b) + delta_w > state.capacity:
                    continue
                if state.row_width(row_a) - delta_w > state.capacity:
                    continue
            nets = state.affected((a, b))
            _swap_cells(state, a, b)
            delta = state.refresh(nets)
            stats.moves_tried += 1
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                accepted += 1
                stats.moves_accepted += 1
            else:
                _swap_cells(state, a, b)
                state.refresh(nets)
        temperature *= cooling
        if accepted / max(moves_per_step, 1) < min_acceptance:
            break
        if temperature < stats.initial_temperature * 1e-4:
            break

    stats.final_hpwl = state.total
