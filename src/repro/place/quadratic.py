"""Quadratic (analytical) placement.

The GORDIAN engine of [21]: minimise the squared-Euclidean wirelength
``sum_nets w_net * ((x_i - x_j)^2 + (y_i - y_j)^2)`` over all pin pairs of
each net (clique model) subject to fixed pad positions.  The objective is
separable in x and y; each axis reduces to one sparse SPD linear system
``L x = b`` solved with conjugate gradients.

Repeated solves over the same netlist (the partitioning levels of the
global placer, Lily's periodic re-place) share a :class:`QuadraticSystem`:
anchors only ever touch the diagonal and the right-hand side, so the
O(pins²) net traversal is done once and every re-solve assembles a
bitwise-identical matrix from the cached off-diagonal terms.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.geometry import Point, Rect
from repro.place.hypergraph import PlacementNetlist

__all__ = [
    "solve_quadratic",
    "quadratic_objective",
    "clique_edges",
    "QuadraticSystem",
    "CLIQUE_STAR_LIMIT",
]

#: Weak spring to the region centre keeping unconnected cells well-defined.
ANCHOR_EPSILON = 1e-6

#: Pin count above which ``clique`` nets fall back to the star model: the
#: clique expansion is O(k²) edges, which blows up on high-fanout nets
#: (clock/reset-like) while adding no placement information a star does
#: not.  33 pins ≈ 528 clique edges vs 32 star edges.
CLIQUE_STAR_LIMIT = 33


def clique_edges(
    net: Sequence[str], weight_model: str = "clique"
) -> List[Tuple[str, str, float]]:
    """Pairwise edges for one net.

    ``clique`` uses the standard ``2 / |net|`` pair weight so every net
    contributes total weight ~2 regardless of pin count; ``star`` connects
    the first pin (driver) to each sink with unit weight.  Clique nets
    wider than :data:`CLIQUE_STAR_LIMIT` pins automatically fall back to
    star edges (keeping the ``2 / |net|`` weight so the net's total pull
    stays comparable), capping the expansion at O(k) edges.
    """
    k = len(net)
    if k < 2:
        return []
    if weight_model == "star":
        driver = net[0]
        return [(driver, sink, 1.0) for sink in net[1:]]
    w = 2.0 / k
    if k > CLIQUE_STAR_LIMIT:
        driver = net[0]
        return [(driver, sink, w) for sink in net[1:]]
    edges = []
    for i in range(k):
        for j in range(i + 1, k):
            edges.append((net[i], net[j], w))
    return edges


class QuadraticSystem:
    """Cached assembly of the quadratic placement system for one netlist.

    Splits :func:`solve_quadratic` into a build-once part (the net
    traversal with its clique/star expansion, the base diagonal and
    right-hand sides) and a cheap per-solve part (anchor application,
    diagonal append, CSR assembly, linear solve).  Anchors add only
    diagonal and rhs terms, so every :meth:`solve` produces the same
    matrix — in the same floating-point operation order — as a cold
    :func:`solve_quadratic` with the same anchors.
    """

    def __init__(
        self,
        netlist: PlacementNetlist,
        region: Rect,
        weight_model: str = "clique",
        vec: bool = True,
    ) -> None:
        """Build the system; ``vec`` selects the struct-of-arrays assembly.

        The vectorized assembly (:func:`repro.perf.vec.assemble_quadratic`)
        produces bitwise-identical diagonal/rhs/off-diagonal streams to
        the per-edge Python loop below, so ``vec`` only changes build
        speed — the randomized equivalence tests assert exact equality.
        """
        self.netlist = netlist
        self.region = region
        self.weight_model = weight_model
        n = netlist.num_movable
        self.n = n
        self.index = {name: i for i, name in enumerate(netlist.movables)}
        self._center = region.center
        center = self._center
        self._vec = bool(vec and n)

        if self._vec:
            from repro.obs import OBS
            from repro.perf.vec import assemble_quadratic

            diag, bx, by, vrows, vcols, vvals = assemble_quadratic(
                netlist.nets, self.index, netlist.fixed, n, center,
                weight_model, CLIQUE_STAR_LIMIT, ANCHOR_EPSILON,
            )
            self._diag = diag
            self._bx = bx
            self._by = by
            self._rows = vrows
            self._cols = vcols
            self._vals = vvals
            if OBS.enabled:
                OBS.metrics.counter("perf.vec.quad_assemblies").inc()
                OBS.metrics.counter("perf.vec.quad_edges").inc(len(vvals))
            return

        diag = np.full(n, ANCHOR_EPSILON)
        bx = np.full(n, ANCHOR_EPSILON * center.x)
        by = np.full(n, ANCHOR_EPSILON * center.y)
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []

        index = self.index
        for net in netlist.nets:
            for a, b, w in clique_edges(net, weight_model):
                ia = index.get(a)
                ib = index.get(b)
                if ia is None and ib is None:
                    continue
                if ia is not None and ib is not None:
                    diag[ia] += w
                    diag[ib] += w
                    rows.extend((ia, ib))
                    cols.extend((ib, ia))
                    vals.extend((-w, -w))
                else:
                    movable = ia if ia is not None else ib
                    fixed_name = b if ia is not None else a
                    p = netlist.fixed[fixed_name]
                    diag[movable] += w
                    bx[movable] += w * p.x
                    by[movable] += w * p.y

        self._diag = diag
        self._bx = bx
        self._by = by
        self._rows = rows
        self._cols = cols
        self._vals = vals

    def solve(
        self,
        anchors: Optional[Dict[str, Tuple[Point, float]]] = None,
        initial: Optional[Dict[str, Point]] = None,
    ) -> Dict[str, Point]:
        """Solve for all movable cells; see :func:`solve_quadratic`."""
        n = self.n
        if n == 0:
            return {}
        region = self.region
        center = self._center
        index = self.index

        diag = self._diag.copy()
        bx = self._bx.copy()
        by = self._by.copy()
        for name, (point, weight) in (anchors or {}).items():
            i = index.get(name)
            if i is None:
                continue
            diag[i] += weight
            bx[i] += weight * point.x
            by[i] += weight * point.y

        if self._vec:
            # Same entry sequence as the list path below: off-diagonal
            # stream first, then the (anchored) diagonal — the COO->CSR
            # duplicate summation therefore runs over identical data and
            # the matrix is bitwise-equal.
            arange = np.arange(n)
            rows = np.concatenate([self._rows, arange])
            cols = np.concatenate([self._cols, arange])
            vals = np.concatenate([self._vals, diag])
        else:
            rows = self._rows + list(range(n))
            cols = self._cols + list(range(n))
            vals = list(self._vals)
            vals.extend(diag)
        laplacian = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))

        x0 = y0 = None
        if initial is not None:
            x0 = np.full(n, center.x)
            y0 = np.full(n, center.y)
            for name, i in index.items():
                p = initial.get(name)
                if p is not None:
                    x0[i] = p.x
                    y0[i] = p.y

        xs = _solve_spd(laplacian, bx, center.x, x0=x0)
        ys = _solve_spd(laplacian, by, center.y, x0=y0)

        out: Dict[str, Point] = {}
        for name, i in index.items():
            x = min(max(xs[i], region.lx), region.ux)
            y = min(max(ys[i], region.ly), region.uy)
            out[name] = Point(float(x), float(y))
        return out


def solve_quadratic(
    netlist: PlacementNetlist,
    region: Rect,
    anchors: Optional[Dict[str, Tuple[Point, float]]] = None,
    weight_model: str = "clique",
    initial: Optional[Dict[str, Point]] = None,
    vec: bool = True,
) -> Dict[str, Point]:
    """Solve the quadratic placement for all movable cells.

    Args:
        netlist: the placement hypergraph (movables + fixed terminals).
        region: the layout image; solutions are clipped into it.
        anchors: optional extra springs ``name -> (point, weight)`` used by
            the partitioning levels to pull cells toward region centres.
        weight_model: ``clique`` or ``star`` net decomposition.
        initial: optional warm-start positions (previous solution).  Only
            consulted by the iterative CG path (large systems); small
            systems use a direct solve where a starting point has no
            meaning.  Warm starts change the CG iterate sequence, so the
            result matches a cold solve to solver tolerance, not bitwise;
            leave unset where bit-reproducibility matters.
        vec: use the struct-of-arrays system assembly (bitwise-identical
            matrix, much faster to build; see ``docs/SCALING.md``).

    Returns:
        Cell name -> position for every movable cell.
    """
    return QuadraticSystem(netlist, region, weight_model, vec=vec).solve(
        anchors, initial=initial
    )


def _solve_spd(
    laplacian: sp.csr_matrix,
    rhs: np.ndarray,
    start: float,
    x0: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Solve the SPD system with CG; falls back to a direct solve."""
    n = laplacian.shape[0]
    if n <= 400:
        return spla.spsolve(laplacian.tocsc(), rhs)
    if x0 is None:
        x0 = np.full(n, start)
    solution, info = spla.cg(laplacian, rhs, x0=x0, rtol=1e-8, maxiter=10 * n)
    if info != 0:
        return spla.spsolve(laplacian.tocsc(), rhs)
    return solution


def quadratic_objective(
    netlist: PlacementNetlist,
    positions: Dict[str, Point],
    weight_model: str = "clique",
) -> float:
    """The squared-Euclidean wirelength a placement achieves (for tests)."""
    total = 0.0
    lookup = dict(netlist.fixed)
    lookup.update(positions)
    for net in netlist.nets:
        for a, b, w in clique_edges(net, weight_model):
            pa, pb = lookup[a], lookup[b]
            total += w * ((pa.x - pb.x) ** 2 + (pa.y - pb.y) ** 2)
    return total
