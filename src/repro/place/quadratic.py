"""Quadratic (analytical) placement.

The GORDIAN engine of [21]: minimise the squared-Euclidean wirelength
``sum_nets w_net * ((x_i - x_j)^2 + (y_i - y_j)^2)`` over all pin pairs of
each net (clique model) subject to fixed pad positions.  The objective is
separable in x and y; each axis reduces to one sparse SPD linear system
``L x = b`` solved with conjugate gradients.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.geometry import Point, Rect
from repro.place.hypergraph import PlacementNetlist

__all__ = ["solve_quadratic", "quadratic_objective", "clique_edges"]

#: Weak spring to the region centre keeping unconnected cells well-defined.
ANCHOR_EPSILON = 1e-6


def clique_edges(
    net: Sequence[str], weight_model: str = "clique"
) -> List[Tuple[str, str, float]]:
    """Pairwise edges for one net.

    ``clique`` uses the standard ``2 / |net|`` pair weight so every net
    contributes total weight ~2 regardless of pin count; ``star`` connects
    the first pin (driver) to each sink with unit weight.
    """
    k = len(net)
    if k < 2:
        return []
    if weight_model == "star":
        driver = net[0]
        return [(driver, sink, 1.0) for sink in net[1:]]
    w = 2.0 / k
    edges = []
    for i in range(k):
        for j in range(i + 1, k):
            edges.append((net[i], net[j], w))
    return edges


def solve_quadratic(
    netlist: PlacementNetlist,
    region: Rect,
    anchors: Optional[Dict[str, Tuple[Point, float]]] = None,
    weight_model: str = "clique",
) -> Dict[str, Point]:
    """Solve the quadratic placement for all movable cells.

    Args:
        netlist: the placement hypergraph (movables + fixed terminals).
        region: the layout image; solutions are clipped into it.
        anchors: optional extra springs ``name -> (point, weight)`` used by
            the partitioning levels to pull cells toward region centres.
        weight_model: ``clique`` or ``star`` net decomposition.

    Returns:
        Cell name -> position for every movable cell.
    """
    n = netlist.num_movable
    if n == 0:
        return {}
    index = {name: i for i, name in enumerate(netlist.movables)}
    center = region.center
    anchors = anchors or {}

    diag = np.full(n, ANCHOR_EPSILON)
    bx = np.full(n, ANCHOR_EPSILON * center.x)
    by = np.full(n, ANCHOR_EPSILON * center.y)
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []

    for net in netlist.nets:
        for a, b, w in clique_edges(net, weight_model):
            ia = index.get(a)
            ib = index.get(b)
            if ia is None and ib is None:
                continue
            if ia is not None and ib is not None:
                diag[ia] += w
                diag[ib] += w
                rows.extend((ia, ib))
                cols.extend((ib, ia))
                vals.extend((-w, -w))
            else:
                movable = ia if ia is not None else ib
                fixed_name = b if ia is not None else a
                p = netlist.fixed[fixed_name]
                diag[movable] += w
                bx[movable] += w * p.x
                by[movable] += w * p.y

    for name, (point, weight) in anchors.items():
        i = index.get(name)
        if i is None:
            continue
        diag[i] += weight
        bx[i] += weight * point.x
        by[i] += weight * point.y

    rows.extend(range(n))
    cols.extend(range(n))
    vals.extend(diag)
    laplacian = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))

    xs = _solve_spd(laplacian, bx, center.x)
    ys = _solve_spd(laplacian, by, center.y)

    out: Dict[str, Point] = {}
    for name, i in index.items():
        x = min(max(xs[i], region.lx), region.ux)
        y = min(max(ys[i], region.ly), region.uy)
        out[name] = Point(float(x), float(y))
    return out


def _solve_spd(laplacian: sp.csr_matrix, rhs: np.ndarray, start: float) -> np.ndarray:
    """Solve the SPD system with CG; falls back to a direct solve."""
    n = laplacian.shape[0]
    if n <= 400:
        return spla.spsolve(laplacian.tocsc(), rhs)
    x0 = np.full(n, start)
    solution, info = spla.cg(laplacian, rhs, x0=x0, rtol=1e-8, maxiter=10 * n)
    if info != 0:
        return spla.spsolve(laplacian.tocsc(), rhs)
    return solution


def quadratic_objective(
    netlist: PlacementNetlist,
    positions: Dict[str, Point],
    weight_model: str = "clique",
) -> float:
    """The squared-Euclidean wirelength a placement achieves (for tests)."""
    total = 0.0
    lookup = dict(netlist.fixed)
    lookup.update(positions)
    for net in netlist.nets:
        for a, b, w in clique_edges(net, weight_model):
            pa, pb = lookup[a], lookup[b]
            total += w * ((pa.x - pb.x) ** 2 + (pa.y - pb.y) ** 2)
    return total
