"""Fiduccia–Mattheyses min-cut bipartitioning.

Used to refine the coordinate-median splits inside the GORDIAN-style global
placer (the paper's placement engine "uses quadratic optimization and
bi-partitioning techniques", Section 3.1).  Classic single-cell-move FM
with gain buckets, area-balance constraint and best-prefix rollback, run
for a bounded number of passes.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["fm_bipartition", "cut_size"]


def cut_size(nets: Sequence[Sequence[str]], side: Dict[str, int]) -> int:
    """Number of nets with pins on both sides (free pins are ignored)."""
    cut = 0
    for net in nets:
        sides = {side[p] for p in net if p in side}
        if len(sides) > 1:
            cut += 1
    return cut


def fm_bipartition(
    cells: Sequence[str],
    nets: Sequence[Sequence[str]],
    initial_side: Dict[str, int],
    sizes: Optional[Dict[str, float]] = None,
    balance_tolerance: float = 0.1,
    max_passes: int = 4,
) -> Dict[str, int]:
    """Improve a bipartition's cut without violating area balance.

    Args:
        cells: movable cell names (pins in nets not listed here are fixed
            and simply contribute to net side counts).
        nets: hypergraph nets over cell names (and fixed terminal names).
        initial_side: starting side (0/1) for every cell *and* every fixed
            terminal appearing in the nets.
        sizes: cell areas (default 1.0 each).
        balance_tolerance: allowed deviation of either side's area from
            half the total, as a fraction of the total.
        max_passes: FM passes (each pass moves every cell at most once).

    Returns:
        The improved side assignment for the movable cells (fixed terminals
        keep their initial sides).
    """
    sizes = sizes or {}
    cell_set = set(cells)
    side = dict(initial_side)
    total_area = sum(sizes.get(c, 1.0) for c in cells)
    if total_area <= 0:
        return {c: side[c] for c in cells}
    # Classic FM feasibility: a side may hold half the area plus the
    # tolerance, but never less than half plus one largest cell (otherwise
    # no single move is ever legal on small instances).
    max_cell = max((sizes.get(c, 1.0) for c in cells), default=1.0)
    max_side_area = max(
        total_area * (0.5 + balance_tolerance),
        total_area / 2.0 + max_cell,
    )

    cell_nets: Dict[str, List[int]] = defaultdict(list)
    net_cells: List[List[str]] = [[] for _ in nets]
    for net_id, net in enumerate(nets):
        for pin in net:
            if pin in cell_set:
                cell_nets[pin].append(net_id)
                net_cells[net_id].append(pin)

    # Per-net side pin counts, maintained incrementally across passes: a
    # pass's tentative moves and its best-prefix rollback are balanced
    # integer updates, so after every pass the counts equal what a fresh
    # scan of ``side`` would rebuild.
    counts: List[List[int]] = []
    for net in nets:
        c = [0, 0]
        for pin in net:
            if pin in side:
                c[side[pin]] += 1
        counts.append(c)

    for _ in range(max_passes):
        improved = _fm_pass(
            cells, nets, cell_nets, net_cells, side, sizes, max_side_area,
            counts,
        )
        if not improved:
            break
    return {c: side[c] for c in cells}


def _gain(cell: str, nets, cell_nets, side, counts) -> int:
    """FM gain: nets uncut minus nets newly cut if the cell moves."""
    s = side[cell]
    gain = 0
    for net_id in cell_nets[cell]:
        same, other = counts[net_id][s], counts[net_id][1 - s]
        if same == 1:
            gain += 1  # moving removes this net from the cut
        if other == 0:
            gain -= 1  # moving puts this net into the cut
    return gain


def _fm_pass(
    cells, nets, cell_nets, net_cells, side, sizes, max_side_area, counts
) -> bool:
    """One FM pass; mutates ``side`` and ``counts``; returns True if the
    cut improved.

    Gains are computed once up front and refreshed incrementally: a
    cell's gain depends only on the pin counts of its own nets, so a
    move can change the gains of cells sharing a net with the moved
    cell and of no one else.  Selection pops a lazy max-heap keyed by
    ``(-gain, cell index)`` — the same winner as a linear scan with a
    strict ``>`` comparison (highest gain, earliest cell breaking
    ties), so every tie-break matches the naive implementation.  Stale
    heap entries (superseded gain, locked cell) are discarded on pop;
    feasible-balance checks happen at pop time, and cells that fail
    them are re-pushed for later steps once a winner is found.
    """
    side_area = [0.0, 0.0]
    for c in cells:
        side_area[side[c]] += sizes.get(c, 1.0)

    locked: Set[str] = set()
    moves: List[Tuple[str, int]] = []
    gain_total = 0
    best_prefix = 0
    best_gain = 0

    free = list(cells)
    rank = {c: i for i, c in enumerate(free)}
    gains: Dict[str, int] = {
        c: _gain(c, nets, cell_nets, side, counts) for c in free
    }
    heap: List[Tuple[int, int, str]] = [
        (-gains[c], i, c) for i, c in enumerate(free)
    ]
    heapq.heapify(heap)
    for _step in range(len(cells)):
        best_cell = None
        best_cell_gain = None
        deferred: List[Tuple[int, int, str]] = []
        while heap:
            neg_g, i, cell = heapq.heappop(heap)
            if cell in locked or -neg_g != gains[cell]:
                continue  # stale entry
            target = 1 - side[cell]
            if side_area[target] + sizes.get(cell, 1.0) > max_side_area:
                deferred.append((neg_g, i, cell))
                continue  # infeasible now; may become movable later
            best_cell = cell
            best_cell_gain = -neg_g
            break
        for entry in deferred:
            heapq.heappush(heap, entry)
        if best_cell is None:
            break
        # Apply the tentative move.
        s = side[best_cell]
        for net_id in cell_nets[best_cell]:
            counts[net_id][s] -= 1
            counts[net_id][1 - s] += 1
        side_area[s] -= sizes.get(best_cell, 1.0)
        side_area[1 - s] += sizes.get(best_cell, 1.0)
        side[best_cell] = 1 - s
        locked.add(best_cell)
        moves.append((best_cell, s))
        gain_total += best_cell_gain
        if gain_total > best_gain:
            best_gain = gain_total
            best_prefix = len(moves)
        # Refresh the gains invalidated by the move.
        touched: Set[str] = set()
        for net_id in cell_nets[best_cell]:
            touched.update(net_cells[net_id])
        for other in touched:
            if other not in locked:
                g = _gain(other, nets, cell_nets, side, counts)
                if g != gains[other]:
                    gains[other] = g
                    heapq.heappush(heap, (-g, rank[other], other))

    # Roll back past the best prefix.
    for cell, original in reversed(moves[best_prefix:]):
        current = side[cell]
        for net_id in cell_nets[cell]:
            counts[net_id][current] -= 1
            counts[net_id][original] += 1
        side[cell] = original
    return best_gain > 0
