"""A placement-neutral netlist view.

Both the inchoate subject graph (placed before mapping, Section 3.1) and
the mapped netlist (placed by the detailed placer) are reduced to the same
hypergraph form: movable cells with sizes, fixed terminals with positions,
and multi-pin nets over both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry import Point

__all__ = ["PlacementNetlist", "subject_netlist", "mapped_netlist"]


@dataclass
class PlacementNetlist:
    """Hypergraph input to the placers.

    Attributes:
        movables: cell names, in a stable order.
        sizes: cell name -> area (used by the detailed placer's rows).
        nets: each net is a list of cell/terminal names (2+ pins).
        fixed: terminal name -> position (pads, pre-placed gates).
    """

    movables: List[str] = field(default_factory=list)
    sizes: Dict[str, float] = field(default_factory=dict)
    nets: List[List[str]] = field(default_factory=list)
    fixed: Dict[str, Point] = field(default_factory=dict)

    def check(self) -> None:
        movable_set = set(self.movables)
        if len(movable_set) != len(self.movables):
            raise ValueError("duplicate movable names")
        overlap = movable_set & set(self.fixed)
        if overlap:
            raise ValueError(f"cells both movable and fixed: {sorted(overlap)[:5]}")
        known = movable_set | set(self.fixed)
        for net in self.nets:
            for name in net:
                if name not in known:
                    raise ValueError(f"net references unknown cell {name!r}")

    @property
    def num_movable(self) -> int:
        return len(self.movables)


def subject_netlist(graph, pad_positions: Dict[str, Point]) -> PlacementNetlist:
    """Hypergraph of the inchoate network: base gates movable, pads fixed.

    Every NAND2/INV gate is movable with unit size; primary inputs and
    outputs are fixed at their pad positions.  One net per driver (gate or
    PI) collecting all its sinks.
    """
    netlist = PlacementNetlist()
    for node in graph.nodes:
        if node.is_gate:
            netlist.movables.append(node.name)
            netlist.sizes[node.name] = 1.0
        elif node.is_pi or node.is_po:
            position = pad_positions.get(node.name)
            if position is None:
                raise KeyError(f"no pad position for {node.name!r}")
            netlist.fixed[node.name] = position
    for node in graph.nodes:
        if node.is_po or node.is_constant:
            continue
        sinks = [s.name for s in node.fanouts if not s.is_constant]
        if node.is_pi and not sinks:
            continue
        if sinks:
            netlist.nets.append([node.name] + sinks)
    netlist.check()
    return netlist


def network_netlist(net, pad_positions: Dict[str, Point]) -> PlacementNetlist:
    """Hypergraph of a *source* Boolean network (pre-decomposition).

    Used by the layout-driven decomposition extension: SOP nodes are
    movable (sized by literal count), terminals fixed at their pads.
    """
    netlist = PlacementNetlist()
    for node in net.nodes:
        if node.is_internal:
            netlist.movables.append(node.name)
            netlist.sizes[node.name] = max(node.function.num_literals, 1)
        elif node.is_pi or node.is_po:
            position = pad_positions.get(node.name)
            if position is None:
                raise KeyError(f"no pad position for {node.name!r}")
            netlist.fixed[node.name] = position
    for node in net.nodes:
        if node.is_po:
            continue
        sinks = [s.name for s in node.fanouts]
        if sinks:
            netlist.nets.append([node.name] + sinks)
    netlist.check()
    return netlist


def mapped_netlist(mapped, pad_positions: Dict[str, Point]) -> PlacementNetlist:
    """Hypergraph of a mapped netlist: gate instances movable, pads fixed."""
    netlist = PlacementNetlist()
    for node in mapped.nodes:
        if node.is_gate:
            netlist.movables.append(node.name)
            netlist.sizes[node.name] = node.cell.area
        elif node.is_pi or node.is_po:
            position = pad_positions.get(node.name)
            if position is None:
                raise KeyError(f"no pad position for {node.name!r}")
            netlist.fixed[node.name] = position
    for net in mapped.nets():
        if net.driver.is_constant:
            continue
        names = [net.driver.name] + [node.name for node, _pin in net.sinks
                                     if not node.is_constant]
        if len(names) >= 2:
            netlist.nets.append(names)
    netlist.check()
    return netlist
