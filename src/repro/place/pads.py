"""I/O pad placement on the chip boundary.

Prior to mapping, Lily fixes the positions of all primary inputs and
outputs (Section 3.1), using a bottom-up pad-assignment procedure driven by
the connectivity structure of the network [20].  We reproduce that with a
spectral method: I/O terminals are ordered by the Fiedler vector of their
affinity graph (terminals sharing logic cones attract) and assigned to
evenly spaced slots around the chip perimeter.

``method='natural'`` (declaration order) and ``method='random'`` provide
the degraded pad assignments for the Section 5 sensitivity study.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.geometry import Point, Rect

__all__ = ["perimeter_slots", "assign_pads", "io_affinity_order"]


def perimeter_slots(region: Rect, count: int) -> List[Point]:
    """``count`` evenly spaced points around the region boundary.

    Slots start at the lower-left corner and run counter-clockwise.
    """
    if count <= 0:
        return []
    perimeter = 2.0 * (region.width + region.height)
    step = perimeter / count
    slots = []
    for i in range(count):
        d = i * step
        if d < region.width:
            slots.append(Point(region.lx + d, region.ly))
            continue
        d -= region.width
        if d < region.height:
            slots.append(Point(region.ux, region.ly + d))
            continue
        d -= region.height
        if d < region.width:
            slots.append(Point(region.ux - d, region.uy))
            continue
        d -= region.width
        slots.append(Point(region.lx, region.uy - d))
    return slots


def _io_terminals(network) -> Tuple[List[str], List[str]]:
    pis = [n.name for n in network.primary_inputs]
    pos = [n.name for n in network.primary_outputs]
    return pis, pos


def io_affinity_order(network) -> List[str]:
    """Circular ordering of I/O terminals by connectivity (spectral).

    Affinity between two terminals is the number of logic cones they share:
    a PI and a PO are related if the PI is in the PO's transitive fanin;
    two PIs are related per common PO they feed.  The Fiedler vector of the
    affinity Laplacian gives a 1-D embedding whose order minimises (in the
    relaxed sense) the wire crossings of the boundary assignment.
    """
    pis, pos = _io_terminals(network)
    names = pis + pos
    n = len(names)
    if n <= 2:
        return names

    index = {name: i for i, name in enumerate(names)}
    # cone membership: PI -> set of PO indices it reaches.
    membership: Dict[str, set] = {name: set() for name in names}
    for po_idx, po in enumerate(network.primary_outputs):
        cone = network.transitive_fanin([po])
        membership[po.name].add(po_idx)
        cone_names = {node.name for node in cone}
        for pi in network.primary_inputs:
            if pi.name in cone_names:
                membership[pi.name].add(po_idx)

    weights = np.zeros((n, n))
    for i, a in enumerate(names):
        for j in range(i + 1, n):
            b = names[j]
            w = len(membership[a] & membership[b])
            weights[i, j] = weights[j, i] = float(w)

    degree = weights.sum(axis=1)
    if not degree.any():
        return names
    laplacian = np.diag(degree) - weights
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    # Fiedler vector: eigenvector of the smallest non-trivial eigenvalue.
    fiedler = eigenvectors[:, 1] if n > 1 else eigenvectors[:, 0]
    order = sorted(range(n), key=lambda i: (fiedler[i], names[i]))
    return [names[i] for i in order]


def assign_pads(
    network,
    region: Rect,
    method: str = "connectivity",
    seed: int = 0,
) -> Dict[str, Point]:
    """Fix every primary input/output on the chip boundary.

    Args:
        network: a Network, SubjectGraph or MappedNetwork (anything with
            ``primary_inputs``/``primary_outputs`` and ``transitive_fanin``).
        region: the chip image.
        method: ``connectivity`` (spectral, the default), ``natural``
            (declaration order) or ``random`` (seeded shuffle).

    Returns:
        Terminal name -> pad position.
    """
    pis, pos = _io_terminals(network)
    if method == "connectivity":
        order = io_affinity_order(network)
    elif method == "natural":
        order = pis + pos
    elif method == "random":
        order = pis + pos
        random.Random(seed).shuffle(order)
    else:
        raise ValueError(f"unknown pad-assignment method: {method!r}")
    slots = perimeter_slots(region, len(order))
    return {name: slot for name, slot in zip(order, slots)}
