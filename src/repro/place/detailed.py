"""Row-based detailed placement for standard cells.

Takes the balanced global placement of a mapped netlist and legalises it
into standard-cell rows (the final placement step of both Section 5
pipelines): cells are binned into rows by their global ``y`` (respecting
row capacity), packed left-to-right by global ``x``, and optionally
improved by a greedy adjacent-swap pass on half-perimeter wirelength.

Row geometry follows the classic double-back standard-cell image: fixed
cell height, rows separated by routing channels whose heights the channel
router determines afterwards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry import Point, Rect
from repro.place.hypergraph import PlacementNetlist

__all__ = ["Row", "DetailedPlacement", "detailed_place"]

#: Standard cell height, µm (3µ-era double-row image).
DEFAULT_CELL_HEIGHT = 64.0


@dataclass
class Row:
    """One standard-cell row: ordered cells with packed x spans."""

    index: int
    y_center: float
    cells: List[str] = field(default_factory=list)
    x_spans: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    @property
    def width(self) -> float:
        if not self.x_spans:
            return 0.0
        return max(hi for _lo, hi in self.x_spans.values())


@dataclass
class DetailedPlacement:
    """Legalised row placement of a mapped netlist."""

    rows: List[Row]
    positions: Dict[str, Point]
    cell_height: float
    channel_height_guess: float

    @property
    def core_width(self) -> float:
        return max((row.width for row in self.rows), default=0.0)

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def with_channel_heights(self, heights: Sequence[float]) -> "DetailedPlacement":
        """Re-stack rows with routed channel heights (below each row).

        ``heights[i]`` is the height of the channel *below* row ``i``; a
        final entry may give the channel above the top row.
        """
        if len(heights) < len(self.rows):
            raise ValueError("need a channel height per row")
        new_rows: List[Row] = []
        positions = dict(self.positions)
        y = 0.0
        for row in self.rows:
            y += heights[row.index]
            y_center = y + self.cell_height / 2.0
            new_row = Row(row.index, y_center, list(row.cells), dict(row.x_spans))
            new_rows.append(new_row)
            for cell in row.cells:
                lo, hi = row.x_spans[cell]
                positions[cell] = Point((lo + hi) / 2.0, y_center)
            y += self.cell_height
        return DetailedPlacement(
            new_rows, positions, self.cell_height, self.channel_height_guess
        )


def _choose_num_rows(total_width: float, cell_height: float,
                     channel_ratio: float) -> int:
    """Rows for an approximately square core.

    With row pitch ``(1 + channel_ratio) * H`` and core width
    ``total_width / rows``, squareness gives
    ``rows = sqrt(total_width / ((1 + channel_ratio) * H))``.
    """
    if total_width <= 0:
        return 1
    rows = math.sqrt(total_width / ((1.0 + channel_ratio) * cell_height))
    return max(1, round(rows))


def detailed_place(
    netlist: PlacementNetlist,
    global_positions: Dict[str, Point],
    cell_height: float = DEFAULT_CELL_HEIGHT,
    channel_ratio: float = 1.0,
    improvement_passes: int = 1,
    num_rows: Optional[int] = None,
    incremental: bool = True,
    vec: bool = True,
) -> DetailedPlacement:
    """Legalise a global placement into standard-cell rows.

    Args:
        netlist: the placement hypergraph (sizes are cell *areas*).
        global_positions: balanced global placement to legalise.
        cell_height: standard-cell height; width = area / height.
        channel_ratio: assumed channel-to-cell-height ratio for the initial
            row stacking (the router later replaces it with real heights).
        improvement_passes: greedy adjacent-swap HPWL passes (0 disables).
        num_rows: force a row count (default: squareness heuristic).
        incremental: score the swap passes against the per-net bounding
            box cache (bit-identical results, much faster); off uses the
            full-recompute reference pass.
        vec: with ``incremental``, bulk-build the cache's initial boxes
            through the struct-of-arrays kernels (bitwise-identical;
            ``PerfOptions.vec_place``).
    """
    widths = {
        name: max(netlist.sizes.get(name, 1.0), 1e-9) / cell_height
        for name in netlist.movables
    }
    total_width = sum(widths.values())
    if num_rows is None:
        num_rows = _choose_num_rows(total_width, cell_height, channel_ratio)
    capacity = total_width / num_rows

    # Bin cells into rows bottom-up by global y, respecting capacity.
    ordered = sorted(
        netlist.movables,
        key=lambda c: (global_positions[c].y, global_positions[c].x, c),
    )
    bins: List[List[str]] = [[] for _ in range(num_rows)]
    fill = [0.0] * num_rows
    row_index = 0
    for cell in ordered:
        while (
            row_index < num_rows - 1
            and fill[row_index] + widths[cell] > capacity * 1.0001
        ):
            row_index += 1
        bins[row_index].append(cell)
        fill[row_index] += widths[cell]

    channel_height = channel_ratio * cell_height
    rows: List[Row] = []
    positions: Dict[str, Point] = {}
    for i, row_cells in enumerate(bins):
        row_cells.sort(key=lambda c: (global_positions[c].x, c))
        y_center = channel_height + i * (cell_height + channel_height) + cell_height / 2.0
        row = Row(i, y_center, row_cells)
        x = 0.0
        for cell in row_cells:
            row.x_spans[cell] = (x, x + widths[cell])
            positions[cell] = Point(x + widths[cell] / 2.0, y_center)
            x += widths[cell]
        rows.append(row)

    placement = DetailedPlacement(rows, positions, cell_height, channel_height)
    if improvement_passes > 0 and incremental:
        from repro.obs import OBS
        from repro.perf.incremental import NetBoxCache

        cache = NetBoxCache(netlist.nets, placement.positions, netlist.fixed,
                            vec=vec)
        for _ in range(improvement_passes):
            if not _swap_pass_cached(placement, netlist, cache):
                break
        if OBS.enabled:
            OBS.metrics.counter(
                "perf.incremental.box_fast_updates").inc(cache.fast_updates)
            OBS.metrics.counter(
                "perf.incremental.box_refolds").inc(cache.refolds)
    else:
        for _ in range(improvement_passes):
            if not _swap_pass(placement, netlist):
                break
    return placement


def _swap_pass(placement: DetailedPlacement, netlist: PlacementNetlist) -> bool:
    """Greedy adjacent-cell swaps inside rows; returns True if improved."""
    cell_nets: Dict[str, List[int]] = {}
    for net_id, net in enumerate(netlist.nets):
        for pin in net:
            cell_nets.setdefault(pin, []).append(net_id)

    def net_hpwl(net: List[str]) -> float:
        xs: List[float] = []
        ys: List[float] = []
        for pin in net:
            p = placement.positions.get(pin) or netlist.fixed.get(pin)
            if p is None:
                continue
            xs.append(p.x)
            ys.append(p.y)
        if len(xs) < 2:
            return 0.0
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    improved = False
    for row in placement.rows:
        for k in range(len(row.cells) - 1):
            a, b = row.cells[k], row.cells[k + 1]
            affected = sorted(set(cell_nets.get(a, []) + cell_nets.get(b, [])))
            before = sum(net_hpwl(netlist.nets[i]) for i in affected)
            _swap_in_row(placement, row, k)
            after = sum(net_hpwl(netlist.nets[i]) for i in affected)
            if after >= before:
                _swap_in_row(placement, row, k)  # undo
            else:
                improved = True
    return improved


def _swap_pass_cached(placement: DetailedPlacement,
                      netlist: PlacementNetlist,
                      cache) -> bool:
    """The greedy swap pass scored against a :class:`NetBoxCache`.

    Bit-identical to :func:`_swap_pass`: the cached boxes are exact folds
    of the live positions at every step, so each ``before``/``after`` sum
    runs over the same net ids in the same order with bitwise-equal terms
    (zero-HPWL nets contribute ``+0.0``, which never changes the sum).
    After-the-swap boxes are delta-updated into temporaries — a swap never
    changes ``y``, and on the x axis interior and boundary-outward moves
    are exact O(1) updates while boundary-inward moves re-fold — and only
    committed on accept.  A rejected swap is undone and its nets lazily
    dirty-marked rather than snapshot-rolled-back: the undo's repacked
    spans are recomputed floats and need not bitwise-restore the old
    widths, so only a re-fold from live positions is guaranteed exact.
    """
    improved = False
    positions = placement.positions
    fold = cache._fold
    boxes = cache._box
    dirty = cache._dirty
    swap_plan = cache.swap_plan
    refolds = 0
    fast = 0
    for row in placement.rows:
        cells = row.cells
        for k in range(len(cells) - 1):
            a, b = cells[k], cells[k + 1]
            plan = swap_plan(a, b)
            before = 0.0
            for i, _m in plan:
                if dirty[i]:
                    boxes[i] = fold(i)
                    dirty[i] = False
                    refolds += 1
                box = boxes[i]
                before += (box[2] - box[0]) + (box[3] - box[1])
            ax_old = positions[a].x
            bx_old = positions[b].x
            _swap_in_row(placement, row, k)
            ax_new = positions[a].x
            bx_new = positions[b].x
            after = 0.0
            folded = []
            for i, m in plan:
                lx, ly, ux, uy = boxes[i]
                ok = True
                if m & 1:
                    if lx < ax_old < ux:
                        if ax_new < lx:
                            lx = ax_new
                        elif ax_new > ux:
                            ux = ax_new
                    elif ax_old == lx and ax_new <= ax_old:
                        lx = ax_new
                    elif ax_old == ux and ax_new >= ax_old:
                        ux = ax_new
                    else:
                        ok = False
                if ok and m & 2:
                    if lx < bx_old < ux:
                        if bx_new < lx:
                            lx = bx_new
                        elif bx_new > ux:
                            ux = bx_new
                    elif bx_old == lx and bx_new <= bx_old:
                        lx = bx_new
                    elif bx_old == ux and bx_new >= bx_old:
                        ux = bx_new
                    else:
                        ok = False
                if ok:
                    box = (lx, ly, ux, uy)
                    fast += 1
                else:
                    box = fold(i)
                    refolds += 1
                folded.append((i, box))
                after += (box[2] - box[0]) + (box[3] - box[1])
            if after >= before:
                _swap_in_row(placement, row, k)  # undo
                # The uncommitted boxes still describe the pre-swap state;
                # they stay valid unless the undo's recomputed spans
                # failed to bitwise-restore the two positions.
                if positions[a].x != ax_old or positions[b].x != bx_old:
                    for i, _m in plan:
                        dirty[i] = True
            else:
                for i, box in folded:
                    boxes[i] = box
                improved = True
    cache.refolds += refolds
    cache.fast_updates += fast
    return improved


def _swap_in_row(placement: DetailedPlacement, row: Row, k: int) -> None:
    """Swap the cells at slots k and k+1, repacking their spans."""
    a, b = row.cells[k], row.cells[k + 1]
    lo_a, hi_a = row.x_spans[a]
    lo_b, hi_b = row.x_spans[b]
    width_a = hi_a - lo_a
    width_b = hi_b - lo_b
    start = lo_a
    row.cells[k], row.cells[k + 1] = b, a
    row.x_spans[b] = (start, start + width_b)
    row.x_spans[a] = (start + width_b, start + width_b + width_a)
    y = row.y_center
    placement.positions[b] = Point(start + width_b / 2.0, y)
    placement.positions[a] = Point(start + width_b + width_a / 2.0, y)
