"""Symmetric-function circuits — including the real ``9symml``.

``9sym``/``9symml`` outputs 1 iff the number of ones among its 9 inputs is
between 3 and 6 — a totally symmetric function.  We synthesise it (and any
symmetric function) multi-level: a full-adder counting tree computes the
population count, and a two-level cover over the count bits selects the
on-set counts.  This matches the multi-level structure of the MCNC
``9symml`` netlist far better than a flat PLA would.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from repro.circuits._build import sop_maj3, sop_xor
from repro.network.logic import Cube, SopCover, TruthTable
from repro.network.network import Network, Node

__all__ = ["symmetric_function", "nine_symml"]


def _popcount_tree(net: Network, bits: List[Node]) -> List[Node]:
    """Sum of input bits as a little-endian binary vector of nodes.

    Repeatedly compresses each weight column with full adders (3:2
    compressors) and half adders until one bit per weight remains.
    """
    columns: List[List[Node]] = [list(bits)]
    counter = [0]

    def fresh(prefix: str) -> str:
        counter[0] += 1
        return f"{prefix}_{counter[0]}"

    weight = 0
    result: List[Node] = []
    while weight < len(columns):
        column = columns[weight]
        while len(column) > 1:
            if len(column) >= 3:
                a, b, c = column[:3]
                del column[:3]
                s = net.add_node(fresh("fa_s"), [a, b, c], sop_xor(3))
                carry = net.add_node(fresh("fa_c"), [a, b, c], sop_maj3())
            else:
                a, b = column[:2]
                del column[:2]
                s = net.add_node(fresh("ha_s"), [a, b], sop_xor(2))
                carry = net.add_node(
                    fresh("ha_c"), [a, b], SopCover(2, [Cube("11")])
                )
            column.append(s)
            while len(columns) <= weight + 1:
                columns.append([])
            columns[weight + 1].append(carry)
        result.append(column[0] if column else None)
        weight += 1
    return [r for r in result if r is not None]


def symmetric_function(
    num_inputs: int,
    on_counts: Iterable[int],
    name: str = "",
) -> Network:
    """Multi-level circuit for a totally symmetric Boolean function.

    Args:
        num_inputs: number of inputs.
        on_counts: population counts for which the output is 1.
        name: network name.
    """
    counts: Set[int] = set(on_counts)
    if any(c < 0 or c > num_inputs for c in counts):
        raise ValueError("on-set count out of range")
    net = Network(name or f"sym{num_inputs}")
    inputs = [net.add_primary_input(f"x{i}") for i in range(num_inputs)]
    sum_bits = _popcount_tree(net, inputs)

    width = len(sum_bits)
    tt = TruthTable.from_function(
        width,
        lambda bits: sum((1 << i) for i, b in enumerate(bits) if b) in counts,
    )
    selector = net.add_node("select", sum_bits, tt.to_sop())
    net.add_primary_output("out", selector)
    net.sweep_dangling()
    net.check()
    return net


def nine_symml() -> Network:
    """The MCNC ``9symml`` benchmark: 1 iff 3 <= popcount(x) <= 6."""
    return symmetric_function(9, range(3, 7), name="9symml")
