"""Larger datapath generators: carry-lookahead adder, array multiplier, ALU.

These provide the structured, reconvergent workloads (C-series flavour)
for the examples and integration tests, all functionally verifiable
against Python integer arithmetic.
"""

from __future__ import annotations

from typing import List

from repro.circuits._build import sop_and, sop_maj3, sop_or, sop_xor
from repro.network.logic import Cube, SopCover, TruthTable
from repro.network.network import Network, Node

__all__ = ["carry_lookahead_adder", "array_multiplier", "alu"]


def _and2(net: Network, name: str, a: Node, b: Node) -> Node:
    return net.add_node(name, [a, b], sop_and(2))


def _or2(net: Network, name: str, a: Node, b: Node) -> Node:
    return net.add_node(name, [a, b], sop_or(2))


def _xor2(net: Network, name: str, a: Node, b: Node) -> Node:
    return net.add_node(name, [a, b], sop_xor(2))


def carry_lookahead_adder(width: int, name: str = "") -> Network:
    """A ``width``-bit adder with explicit generate/propagate lookahead.

    Carries are computed as ``c[i+1] = g[i] + p[i]*c[i]`` with the products
    expanded per stage — the classic CLA structure with reconvergent
    fanout from every ``g``/``p`` pair into all later carries.
    """
    if width < 1:
        raise ValueError("adder width must be positive")
    net = Network(name or f"cla{width}")
    a = [net.add_primary_input(f"a{i}") for i in range(width)]
    b = [net.add_primary_input(f"b{i}") for i in range(width)]
    cin = net.add_primary_input("cin")

    g = [_and2(net, f"g{i}", a[i], b[i]) for i in range(width)]
    p = [_xor2(net, f"p{i}", a[i], b[i]) for i in range(width)]

    carries: List[Node] = [cin]
    for i in range(width):
        # c[i+1] = g[i] + p[i]*c[i]
        term = _and2(net, f"pc{i}", p[i], carries[i])
        carries.append(_or2(net, f"c{i + 1}", g[i], term))

    for i in range(width):
        s = _xor2(net, f"sum{i}", p[i], carries[i])
        net.add_primary_output(f"s{i}", s)
    net.add_primary_output("cout", carries[width])
    net.check()
    return net


def array_multiplier(width: int, name: str = "") -> Network:
    """A ``width x width`` unsigned array multiplier (carry-save rows)."""
    if width < 1:
        raise ValueError("multiplier width must be positive")
    net = Network(name or f"mult{width}")
    a = [net.add_primary_input(f"a{i}") for i in range(width)]
    b = [net.add_primary_input(f"b{i}") for i in range(width)]

    # Partial products pp[i][j] = a[i] & b[j], weight i+j.
    columns: List[List[Node]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            pp = _and2(net, f"pp_{i}_{j}", a[i], b[j])
            columns[i + j].append(pp)

    counter = [0]

    def fresh(prefix: str) -> str:
        counter[0] += 1
        return f"{prefix}_{counter[0]}"

    # Column compression with full/half adders.
    weight = 0
    outputs: List[Node] = []
    while weight < len(columns):
        column = columns[weight]
        while len(column) > 1:
            if len(column) >= 3:
                x, y, z = column[:3]
                del column[:3]
                s = net.add_node(fresh("fs"), [x, y, z], sop_xor(3))
                c = net.add_node(fresh("fc"), [x, y, z], sop_maj3())
            else:
                x, y = column[:2]
                del column[:2]
                s = _xor2(net, fresh("hs"), x, y)
                c = _and2(net, fresh("hc"), x, y)
            column.append(s)
            while len(columns) <= weight + 1:
                columns.append([])
            columns[weight + 1].append(c)
        outputs.append(column[0] if column else None)
        weight += 1

    for k, node in enumerate(outputs[: 2 * width]):
        if node is None:
            node = net.add_constant(f"zero_{k}", False)
        net.add_primary_output(f"m{k}", node)
    net.sweep_dangling()
    net.check()
    return net


#: ALU opcodes: 2 select bits.
ALU_OPS = ("add", "and", "or", "xor")


def alu(width: int, name: str = "") -> Network:
    """A small ALU: op 0 add, 1 and, 2 or, 3 xor, plus carry-out for add."""
    if width < 1:
        raise ValueError("ALU width must be positive")
    net = Network(name or f"alu{width}")
    a = [net.add_primary_input(f"a{i}") for i in range(width)]
    b = [net.add_primary_input(f"b{i}") for i in range(width)]
    op0 = net.add_primary_input("op0")
    op1 = net.add_primary_input("op1")

    carry: Node = net.add_constant("c0", False)
    add_bits: List[Node] = []
    for i in range(width):
        add_bits.append(
            net.add_node(f"add{i}", [a[i], b[i], carry], sop_xor(3))
        )
        carry = net.add_node(f"cy{i}", [a[i], b[i], carry], sop_maj3())

    # Result mux per bit: op1 op0 select among add/and/or/xor.
    # f(add, and, or, xor, op0, op1): 6 inputs -> build as truth table.
    mux_tt = TruthTable.from_function(
        6,
        lambda v: v[(v[5] << 1) | v[4]],
    )
    mux_cover = mux_tt.to_sop()
    for i in range(width):
        and_i = _and2(net, f"andr{i}", a[i], b[i])
        or_i = _or2(net, f"orr{i}", a[i], b[i])
        xor_i = _xor2(net, f"xorr{i}", a[i], b[i])
        out = net.add_node(
            f"res{i}",
            [add_bits[i], and_i, or_i, xor_i, op0, op1],
            mux_cover,
        )
        net.add_primary_output(f"y{i}", out)
    net.add_primary_output("cout", carry)
    net.sweep_dangling()
    net.check()
    return net
