"""Real arithmetic and datapath circuit generators.

These exercise the mappers on structured, reconvergent logic (the kind the
paper's C-series benchmarks contain) and drive the examples.
"""

from __future__ import annotations

from typing import List

from repro.circuits._build import (
    sop_and,
    sop_maj3,
    sop_or,
    sop_xnor,
    sop_xor,
)
from repro.network.logic import Cube, SopCover
from repro.network.network import Network, Node

__all__ = [
    "ripple_carry_adder",
    "parity_tree",
    "equality_comparator",
    "decoder",
    "mux_tree",
]


def ripple_carry_adder(width: int, name: str = "") -> Network:
    """A ``width``-bit ripple-carry adder: a[], b[], cin -> sum[], cout."""
    if width < 1:
        raise ValueError("adder width must be positive")
    net = Network(name or f"rca{width}")
    a = [net.add_primary_input(f"a{i}") for i in range(width)]
    b = [net.add_primary_input(f"b{i}") for i in range(width)]
    carry: Node = net.add_primary_input("cin")
    for i in range(width):
        s = net.add_node(f"sum{i}", [a[i], b[i], carry], sop_xor(3))
        net.add_primary_output(f"s{i}", s)
        carry = net.add_node(f"carry{i}", [a[i], b[i], carry], sop_maj3())
    net.add_primary_output("cout", carry)
    net.check()
    return net


def parity_tree(width: int, name: str = "") -> Network:
    """Odd parity of ``width`` inputs via a balanced XOR tree."""
    if width < 2:
        raise ValueError("parity needs at least 2 inputs")
    net = Network(name or f"parity{width}")
    level: List[Node] = [net.add_primary_input(f"x{i}") for i in range(width)]
    stage = 0
    while len(level) > 1:
        next_level: List[Node] = []
        for k in range(0, len(level) - 1, 2):
            node = net.add_node(
                f"p{stage}_{k // 2}", [level[k], level[k + 1]], sop_xor(2)
            )
            next_level.append(node)
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
        stage += 1
    driver = level[0]
    if driver.is_pi:  # width == 1 edge case is rejected above; keep safe
        driver = net.add_node("p_buf", [driver], SopCover(1, [Cube("1")]))
    net.add_primary_output("parity", driver)
    net.check()
    return net


def equality_comparator(width: int, name: str = "") -> Network:
    """``a == b`` over two ``width``-bit vectors (XNOR-AND tree)."""
    if width < 1:
        raise ValueError("comparator width must be positive")
    net = Network(name or f"cmp{width}")
    a = [net.add_primary_input(f"a{i}") for i in range(width)]
    b = [net.add_primary_input(f"b{i}") for i in range(width)]
    bits = [
        net.add_node(f"eq{i}", [a[i], b[i]], sop_xnor(2)) for i in range(width)
    ]
    while len(bits) > 1:
        grouped: List[Node] = []
        for k in range(0, len(bits) - 1, 2):
            grouped.append(
                net.add_node(
                    f"and_{len(net)}", [bits[k], bits[k + 1]], sop_and(2)
                )
            )
        if len(bits) % 2:
            grouped.append(bits[-1])
        bits = grouped
    net.add_primary_output("equal", bits[0])
    net.check()
    return net


def decoder(select_bits: int, name: str = "") -> Network:
    """A ``select_bits``-to-``2**select_bits`` line decoder."""
    if select_bits < 1:
        raise ValueError("decoder needs at least one select bit")
    net = Network(name or f"dec{select_bits}")
    sel = [net.add_primary_input(f"s{i}") for i in range(select_bits)]
    for value in range(1 << select_bits):
        mask = "".join(
            "1" if (value >> i) & 1 else "0" for i in range(select_bits)
        )
        node = net.add_node(f"line{value}", sel, SopCover(select_bits, [Cube(mask)]))
        net.add_primary_output(f"o{value}", node)
    net.check()
    return net


def mux_tree(select_bits: int, name: str = "") -> Network:
    """A ``2**select_bits``-to-1 multiplexer built as a tree of 2:1 muxes."""
    if select_bits < 1:
        raise ValueError("mux needs at least one select bit")
    net = Network(name or f"mux{1 << select_bits}")
    data: List[Node] = [
        net.add_primary_input(f"d{i}") for i in range(1 << select_bits)
    ]
    sel = [net.add_primary_input(f"s{i}") for i in range(select_bits)]
    # 2:1 mux cover over (d0, d1, s): out = d0*!s + d1*s.
    mux_cover = SopCover(3, [Cube("1-0"), Cube("-11")])
    level = data
    for stage, s in enumerate(sel):
        next_level: List[Node] = []
        for k in range(0, len(level), 2):
            node = net.add_node(
                f"mux{stage}_{k // 2}", [level[k], level[k + 1], s], mux_cover
            )
            next_level.append(node)
        level = next_level
    net.add_primary_output("out", level[0])
    net.check()
    return net
