"""Small helpers for constructing node functions programmatically."""

from __future__ import annotations

from typing import Sequence

from repro.network.logic import Cube, SopCover

__all__ = ["sop_and", "sop_or", "sop_xor", "sop_xnor", "sop_maj3", "sop_nand",
           "sop_nor", "sop_not", "sop_buf"]


def sop_and(n: int) -> SopCover:
    return SopCover(n, [Cube("1" * n)])


def sop_nand(n: int) -> SopCover:
    cubes = []
    for i in range(n):
        cubes.append(Cube("-" * i + "0" + "-" * (n - i - 1)))
    return SopCover(n, cubes)


def sop_or(n: int) -> SopCover:
    cubes = []
    for i in range(n):
        cubes.append(Cube("-" * i + "1" + "-" * (n - i - 1)))
    return SopCover(n, cubes)


def sop_nor(n: int) -> SopCover:
    return SopCover(n, [Cube("0" * n)])


def sop_xor(n: int = 2) -> SopCover:
    """Odd parity of n inputs as a (two-level) cover."""
    from repro.network.logic import TruthTable

    tt = TruthTable.from_function(n, lambda bits: sum(bits) % 2 == 1)
    return tt.to_sop()


def sop_xnor(n: int = 2) -> SopCover:
    from repro.network.logic import TruthTable

    tt = TruthTable.from_function(n, lambda bits: sum(bits) % 2 == 0)
    return tt.to_sop()


def sop_maj3() -> SopCover:
    return SopCover(3, [Cube("11-"), Cube("1-1"), Cube("-11")])


def sop_not() -> SopCover:
    return SopCover(1, [Cube("0")])


def sop_buf() -> SopCover:
    return SopCover(1, [Cube("1")])
