"""Seeded synthetic multi-level logic.

Stands in for the MCNC/ISCAS netlists we cannot ship (DESIGN.md §3): a
deterministic generator producing optimized-looking multi-level networks
with realistic locality (nodes mostly read recent signals), reconvergence,
and a controlled size profile.  Lily's claims concern relative
area/wire/delay versus MIS on networks of a given size and connectivity,
which these preserve.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.network.logic import SopCover, TruthTable
from repro.network.network import Network, Node

__all__ = ["random_network"]


def _random_function(rng: random.Random, arity: int) -> SopCover:
    """A random non-constant function with full support over ``arity`` vars."""
    while True:
        tt = TruthTable(arity, rng.getrandbits(1 << arity))
        if tt.is_constant() is not None:
            continue
        if len(tt.support()) != arity:
            continue
        return tt.to_sop()


def _pick_fanins(
    rng: random.Random,
    pool: List[Node],
    arity: int,
    locality: float,
) -> List[Node]:
    """Pick distinct fanins with a bias toward recent pool entries.

    ``locality`` in (0, 1]: smaller values concentrate picks on the most
    recently created signals (deep, chain-like logic); 1.0 is uniform.
    """
    chosen: List[Node] = []
    n = len(pool)
    window = max(arity, int(n * locality))
    candidates = pool[-window:]
    attempts = 0
    while len(chosen) < arity and attempts < 50:
        attempts += 1
        node = rng.choice(candidates)
        if node not in chosen:
            chosen.append(node)
    while len(chosen) < arity:
        node = rng.choice(pool)
        if node not in chosen:
            chosen.append(node)
    return chosen


def random_network(
    name: str,
    num_inputs: int,
    num_outputs: int,
    num_nodes: int,
    seed: int = 0,
    max_fanin: int = 4,
    locality: float = 0.35,
) -> Network:
    """Generate a deterministic pseudo-random multi-level network.

    Args:
        name: network name (benchmark identity).
        num_inputs / num_outputs: I/O counts (matched to the original
            benchmark's profile).
        num_nodes: internal node budget before dead-logic sweeping.
        seed: RNG seed — same arguments always give the same circuit.
        max_fanin: node fanin cap (2..max_fanin, weighted toward 2–3).
        locality: fanin locality bias (see :func:`_pick_fanins`).
    """
    if num_nodes < num_outputs:
        raise ValueError("need at least one node per output")
    rng = random.Random((seed << 16) ^ len(name) ^ num_nodes)
    net = Network(name)
    inputs = [net.add_primary_input(f"pi{i}") for i in range(num_inputs)]
    pool: List[Node] = list(inputs)
    unused_inputs = list(inputs)
    rng.shuffle(unused_inputs)

    arities = list(range(2, max_fanin + 1))
    weights = [4, 3] + [1] * (max_fanin - 3) if max_fanin >= 3 else [1]
    for index in range(num_nodes):
        arity = rng.choices(arities, weights=weights[: len(arities)])[0]
        arity = min(arity, len(pool))
        if arity < 2:
            arity = 2 if len(pool) >= 2 else 1
        fanins = _pick_fanins(rng, pool, arity, locality)
        # Guarantee every PI eventually feeds logic.
        if unused_inputs and rng.random() < 0.6:
            pi = unused_inputs.pop()
            if pi not in fanins:
                fanins[rng.randrange(len(fanins))] = pi
        function = _random_function(rng, len(fanins))
        node = net.add_node(f"n{index}", fanins, function)
        pool.append(node)

    internal = [n for n in pool if n.is_internal]
    # Outputs: the most recent nodes drive POs (deep cones), plus a few
    # mid-network taps for output diversity.
    drivers: List[Node] = []
    tail = internal[-max(num_outputs, 1):]
    drivers.extend(reversed(tail))
    while len(drivers) < num_outputs:
        candidate = rng.choice(internal)
        if candidate not in drivers:
            drivers.append(candidate)

    # Fold genuinely unused PIs into PO drivers so every input stays live:
    # driver_k becomes f(driver_k, pi), round-robin over the outputs.
    live = net.transitive_fanin(drivers)
    still_unused = [pi for pi in inputs if pi not in live]
    for extra, pi in enumerate(still_unused):
        slot = extra % num_outputs
        merged = net.add_node(
            f"use_pi_{extra}", [drivers[slot], pi], _random_function(rng, 2)
        )
        drivers[slot] = merged

    for k in range(num_outputs):
        net.add_primary_output(f"po{k}", drivers[k])

    net.sweep_dangling()
    net.check()
    return net
