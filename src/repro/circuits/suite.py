"""The named benchmark suite of Tables 1 and 2.

Circuit identities follow the paper; I/O counts follow the published
MCNC'91/ISCAS'85 profiles.  ``9symml`` is generated exactly; all other
circuits are seeded synthetic equivalents (see DESIGN.md §3) whose internal
node budgets were chosen so the *mapped* gate counts land near the
originals' (calibrated from the paper's instance areas, ~0.003 mm² per
mapped gate, and its report that C5315 has 1892 pre-mapping and 713 mapped
gates).

A global ``scale`` (default 1.0) shrinks node budgets — and, above 60
terminals, I/O counts — proportionally, for quick runs of the full suite
on slower machines; the benchmark harness records the scale used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.circuits.random_logic import random_network
from repro.circuits.symmetric import nine_symml
from repro.network.network import Network

__all__ = [
    "CircuitSpec",
    "SUITE",
    "TABLE1_CIRCUITS",
    "TABLE2_CIRCUITS",
    "build_circuit",
]


@dataclass(frozen=True)
class CircuitSpec:
    """Identity and size profile of one benchmark circuit."""

    name: str
    inputs: int
    outputs: int
    nodes: int  # internal SOP-node budget for the generator
    seed: int
    kind: str = "random"  # or "symmetric"


#: Node budgets ~= (paper mapped-gate estimate) / 2.5; see module docstring.
SUITE: Dict[str, CircuitSpec] = {
    spec.name: spec
    for spec in [
        CircuitSpec("9symml", 9, 1, 0, 0, kind="symmetric"),
        CircuitSpec("C432", 36, 7, 46, 432),
        CircuitSpec("C499", 41, 32, 88, 499),
        CircuitSpec("C880", 60, 26, 82, 880),
        CircuitSpec("C1908", 33, 25, 92, 1908),
        CircuitSpec("C3540", 50, 22, 230, 3540),
        CircuitSpec("C5315", 178, 123, 285, 5315),
        CircuitSpec("apex3", 54, 50, 287, 3),
        CircuitSpec("apex6", 135, 99, 130, 6),
        CircuitSpec("apex7", 49, 37, 45, 7),
        CircuitSpec("b9", 41, 21, 25, 9),
        CircuitSpec("duke2", 22, 29, 88, 2),
        CircuitSpec("e64", 65, 65, 54, 64),
        CircuitSpec("misex1", 8, 7, 11, 1),
        CircuitSpec("misex3", 14, 14, 115, 3),
    ]
}

#: Row order of Table 1 (area mode).
TABLE1_CIRCUITS: List[str] = [
    "9symml", "C1908", "C3540", "C432", "C499", "C5315", "C880",
    "apex6", "apex7", "b9", "apex3", "duke2", "e64", "misex1", "misex3",
]

#: Row order of Table 2 (delay mode).
TABLE2_CIRCUITS: List[str] = [
    "9symml", "C1908", "C432", "C499", "C5315", "C880",
    "apex7", "b9", "duke2", "e64", "misex1", "misex3",
]


def build_circuit(name: str, scale: float = 1.0) -> Network:
    """Build a suite circuit by name, optionally size-scaled.

    ``scale`` multiplies the internal node budget; I/O counts are scaled
    too (by ``sqrt(scale)``, floor 4) only for circuits with more than 60
    terminals, so small circuits keep their exact profiles.

    Names of the form ``synth:SEED:GATES`` build a Rent's-rule synthetic
    workload via :func:`repro.circuits.synth.synth_network` instead
    (``scale`` multiplies the gate count), so every consumer of suite
    names — the flow CLI, the serve protocol, the soak tools — can run
    generator traffic without new plumbing.
    """
    if name.startswith("synth:"):
        from repro.circuits.synth import parse_synth_spec, synth_network

        seed, gates = parse_synth_spec(name[len("synth:"):])
        return synth_network(max(16, int(round(gates * scale))), seed=seed)
    spec = SUITE.get(name)
    if spec is None:
        raise KeyError(f"unknown suite circuit: {name!r}")
    if spec.kind == "symmetric":
        return nine_symml()
    inputs, outputs = spec.inputs, spec.outputs
    if scale < 1.0 and inputs + outputs > 60:
        shrink = max(scale, 0.1) ** 0.5
        inputs = max(4, int(round(inputs * shrink)))
        outputs = max(2, int(round(outputs * shrink)))
    nodes = max(outputs, int(round(spec.nodes * scale)))
    return random_network(
        spec.name,
        num_inputs=inputs,
        num_outputs=outputs,
        num_nodes=nodes,
        seed=spec.seed,
    )
