"""Rent's-rule synthetic netlists at benchmark-to-production scale.

The MCNC/ISCAS-profile suite circuits top out at a few hundred gates;
perf claims about the routing estimators and incremental STA need
realistic workloads at 100k-1M gates.  :func:`synth_network` generates
those: a seeded, deterministic multi-level network whose interconnect
follows Rent's rule ``T = t * g^p``.

Model
-----
Internal nodes are created on a linear order ``g0 .. g{N-1}`` (a 1-D
abstraction of placement proximity).  Each fanin of gate ``i`` picks a
backward distance ``d`` from the heavy-tailed law ``P(D >= d) =
d^(p-1)`` (``p`` = the requested Rent exponent) and connects to gate
``i - d``; draws that fall off the front of the order connect to a
primary input instead.  A contiguous block of ``g`` gates then sees
``O(g^p)`` of its pins cross the block boundary — exactly Rent scaling
— which :func:`measure_rent_exponent` fits empirically (and the test
suite pins per seed).  Fanout-free gates are re-absorbed as extra
fanins of a later gate drawn from the same law (overflow becomes an
extra primary output), so every gate is observable and the mapped gate
count tracks the request.

Logic depth is bounded: gate ``i`` sits in level slot ``i mod depth``
and fanins must come from a strictly lower slot (level-0 gates read
primary inputs), so every combinational path strictly climbs slots and
is at most ``depth`` gates long.  Real 100k-gate netlists have tens of
levels, not thousands — an unconstrained max-of-neighbours recurrence
grows depth linearly in N.  Because consecutive gates occupy
consecutive slots, short backward draws remain legal for most gates
and the distance law (hence the measured Rent exponent) is barely
perturbed by the slot rejection.

Determinism
-----------
One ``random.Random(seed)`` drives everything; no iteration over sets
or dicts with hash-dependent order.  The same ``(gates, seed, rent,
max_fanin, depth)`` arguments produce the same network — and therefore the
same BLIF text and sha256 — in any process (the contract
``tests/circuits/test_synth.py`` enforces across an interpreter
boundary).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.network.logic import SopCover, TruthTable
from repro.network.network import Network
from repro.network.blif import write_blif

__all__ = [
    "synth_network",
    "synth_blif",
    "parse_synth_spec",
    "measure_rent_exponent",
    "synth_stats",
    "RentFit",
]

#: Rent coefficient ``t`` (terminals of a single gate); with the fanin
#: distribution below this matches the average pin count per gate.
RENT_COEFFICIENT = 2.5
#: Fraction of the chip-level terminal count realised as primary inputs
#: (the rest become primary outputs).
INPUT_FRACTION = 0.65
#: Functions drawn per arity; gates share immutable covers from this pool
#: so function synthesis stays O(1) per gate at 1M-gate scale.
FUNCTION_POOL_SIZE = 12
#: Forward-scan bound for orphan absorption before falling back to an
#: extra primary output.
ABSORB_SCAN_LIMIT = 2048
#: Default logic-depth target is ``DEPTH_FACTOR * log2(gates)`` levels
#: (floored at 16) — tens of levels at 1k gates, ~120 at 1M, matching
#: the depth profile of real flat netlists.
DEPTH_FACTOR = 6.0


def parse_synth_spec(spec: str) -> Tuple[int, int]:
    """Parse a ``SEED:GATES`` spec string (as taken by the tools' --synth).

    Returns ``(seed, gates)``.  Raises :class:`ValueError` on malformed
    input or a non-positive gate count.
    """
    parts = spec.split(":")
    if len(parts) != 2:
        raise ValueError(
            f"synth spec must be SEED:GATES, got {spec!r}")
    try:
        seed, gates = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(
            f"synth spec must be two integers SEED:GATES, got {spec!r}")
    if gates <= 0:
        raise ValueError(f"synth gate count must be positive, got {gates}")
    return seed, gates


def _function_pool(
    rng: random.Random, max_fanin: int
) -> Dict[int, List[SopCover]]:
    """Per-arity pools of non-constant, full-support SOP covers."""
    pools: Dict[int, List[SopCover]] = {}
    for arity in range(1, max_fanin + 1):
        pool: List[SopCover] = []
        while len(pool) < FUNCTION_POOL_SIZE:
            tt = TruthTable(arity, rng.getrandbits(1 << arity))
            if tt.is_constant() is not None:
                continue
            if len(tt.support()) != arity:
                continue
            pool.append(tt.to_sop())
        pools[arity] = pool
    return pools


def synth_network(
    gates: int,
    seed: int = 0,
    rent: float = 0.75,
    max_fanin: int = 4,
    depth: Optional[int] = None,
    name: Optional[str] = None,
) -> Network:
    """Generate a seeded Rent's-rule netlist with ``gates`` internal nodes.

    Args:
        gates: internal node count (1k-1M is the intended range; any
            positive count works).
        seed: RNG seed — identical arguments give an identical network.
        rent: target Rent exponent ``p`` in (0, 1) of the fanin distance
            law (the measured exponent tracks it; see
            :func:`measure_rent_exponent`).
        max_fanin: fanin cap per gate (arity is drawn from 2..max_fanin,
            weighted toward 2-3 like real mapped logic).
        depth: logic-depth bound in gate levels (default
            ``max(16, round(DEPTH_FACTOR * log2(gates + 1)))``); fanins
            only come from lower level slots, so no combinational path
            is longer than this.
        name: network name (default ``synth_s{seed}_g{gates}``).
    """
    if gates <= 0:
        raise ValueError(f"gates must be positive, got {gates}")
    if not 0.0 < rent < 1.0:
        raise ValueError(f"rent exponent must be in (0, 1), got {rent}")
    if max_fanin < 2:
        raise ValueError(f"max_fanin must be >= 2, got {max_fanin}")
    if depth is None:
        depth = max(16, int(round(DEPTH_FACTOR * math.log2(gates + 1))))
    if depth < 2:
        raise ValueError(f"depth must be >= 2, got {depth}")
    rng = random.Random((seed << 20) ^ (gates << 1) ^ max_fanin)
    n = gates
    terminals = RENT_COEFFICIENT * float(n) ** rent
    num_inputs = max(max_fanin, int(round(INPUT_FRACTION * terminals)))
    num_outputs = max(2, int(round((1.0 - INPUT_FRACTION) * terminals)))
    # Inverse-CDF exponent of P(D >= d) = d^(p-1): D = u^(1/(p-1)).
    inv_exp = 1.0 / (rent - 1.0)

    arities = list(range(2, max_fanin + 1))
    arity_weights = ([5, 3] + [1] * (max_fanin - 3))[: len(arities)]

    # -- structure phase: pure integer fanin lists, PIs encoded negative.
    fanins: List[List[int]] = []
    fanout_count = [0] * n
    unused_pis = list(range(num_inputs))
    rng.shuffle(unused_pis)

    def draw_source(i: int, taken: List[int]) -> int:
        """One fanin source for gate ``i`` (gate index, or -1-pi for a PI)."""
        lvl = i % depth
        for _attempt in range(8):
            if lvl:
                d = int(rng.random() ** inv_exp)
                src = i - max(d, 1)
                if src >= 0 and src % depth >= lvl:
                    continue  # equal-or-higher level slot: redraw
            else:
                src = -1  # level-0 gates read primary inputs only
            if src < 0:
                if unused_pis:
                    src = -1 - unused_pis[-1]
                else:
                    src = -1 - rng.randrange(num_inputs)
            if src not in taken:
                if src < 0 and unused_pis and src == -1 - unused_pis[-1]:
                    unused_pis.pop()
                return src
        # Collision fallback: nearest unused lower-level predecessor, then
        # any PI.
        probe = i - 1
        while probe >= 0:
            if probe % depth < lvl and probe not in taken:
                return probe
            probe -= 1
        for pi in range(num_inputs):
            if -1 - pi not in taken:
                return -1 - pi
        raise AssertionError("ran out of distinct fanin sources")

    for i in range(n):
        arity = rng.choices(arities, weights=arity_weights)[0]
        arity = min(arity, i + num_inputs)
        taken: List[int] = []
        for _slot in range(arity):
            src = draw_source(i, taken)
            taken.append(src)
            if src >= 0:
                fanout_count[src] += 1
        fanins.append(taken)

    # -- primary outputs: the tail of the order drives the POs.
    drivers = list(range(n - 1, max(-1, n - 1 - num_outputs), -1))
    driver_set = set(drivers)
    for gi in drivers:
        fanout_count[gi] += 1

    # -- orphan absorption: a fanout-free gate becomes an extra fanin of a
    # later higher-slot gate drawn from the same distance law (keeping
    # the depth bound); if no such gate has arity headroom within the
    # scan bound it drives an extra PO instead.
    for o in range(n):
        if fanout_count[o] != 0:
            continue
        lvl = o % depth
        absorbed = False
        if lvl < depth - 1:
            d = int(rng.random() ** inv_exp)
            j = min(o + max(d, 1), max(o + 1, n - ABSORB_SCAN_LIMIT))
            for probe in range(j, min(j + ABSORB_SCAN_LIMIT, n)):
                if probe % depth > lvl and len(fanins[probe]) < max_fanin \
                        and o not in fanins[probe]:
                    fanins[probe].append(o)
                    fanout_count[o] += 1
                    absorbed = True
                    break
        if not absorbed:
            drivers.append(o)
            driver_set.add(o)
            fanout_count[o] += 1

    # -- function phase: draw shared covers from per-arity pools.
    pools = _function_pool(rng, max_fanin)
    functions = [rng.choice(pools[len(f)]) for f in fanins]

    # -- materialise the Network.
    net = Network(name or f"synth_s{seed}_g{gates}")
    pis = [net.add_primary_input(f"pi{k}") for k in range(num_inputs)]
    nodes = []
    for i in range(n):
        resolved = [
            nodes[s] if s >= 0 else pis[-1 - s] for s in fanins[i]
        ]
        nodes.append(net.add_node(f"g{i}", resolved, functions[i]))

    # Fold PIs that never got drawn into the PO drivers, so every input
    # stays live (mirrors random_logic's contract).
    merge_pool = pools[2]
    extra = 0
    for pi_index in range(num_inputs):
        pi = pis[pi_index]
        if not pi.fanouts:
            slot = extra % len(drivers)
            merged = net.add_node(
                f"use_pi_{extra}",
                [nodes[drivers[slot]], pi],
                rng.choice(merge_pool),
            )
            nodes.append(merged)
            drivers[slot] = len(nodes) - 1
            extra += 1

    for k, gi in enumerate(drivers):
        net.add_primary_output(f"po{k}", nodes[gi])

    net.check()
    return net


def synth_blif(gates: int, seed: int = 0, rent: float = 0.75,
               max_fanin: int = 4, depth: Optional[int] = None,
               name: Optional[str] = None) -> str:
    """BLIF text of :func:`synth_network` with the same arguments."""
    return write_blif(synth_network(
        gates, seed=seed, rent=rent, max_fanin=max_fanin, depth=depth,
        name=name))


@dataclass(frozen=True)
class RentFit:
    """Least-squares fit of ``log T`` vs ``log g`` over block sizes.

    Attributes:
        exponent: fitted Rent exponent ``p``.
        coefficient: fitted Rent coefficient ``t`` (terminals of a
            size-1 block under the fit).
        points: the ``(block_size, mean_terminals)`` samples fitted.
    """

    exponent: float
    coefficient: float
    points: Tuple[Tuple[int, float], ...]


def measure_rent_exponent(
    net: Network, min_block: int = 16, num_scales: int = 6
) -> RentFit:
    """Empirical Rent fit of a network against its creation order.

    Internal nodes are partitioned into contiguous blocks of
    geometrically growing sizes along their creation order (the
    generator's 1-D proximity axis); a block's terminal count is the
    number of its pins crossing the block boundary (external fanin
    sources plus internal gates observed outside).  The slope of
    ``log(mean terminals)`` against ``log(block size)`` is the measured
    Rent exponent.
    """
    internal = [node for node in net.nodes if node.is_internal]
    index = {node.name: i for i, node in enumerate(internal)}
    n = len(internal)
    if n < 4 * min_block:
        raise ValueError(
            f"need at least {4 * min_block} internal nodes, have {n}")
    sizes: List[int] = []
    block = min_block
    while block <= n // 4 and len(sizes) < num_scales:
        sizes.append(block)
        block *= 4
    points: List[Tuple[int, float]] = []
    for size in sizes:
        terminal_counts: List[int] = []
        for start in range(0, n - size + 1, size):
            lo, hi = start, start + size
            terminals = 0
            for i in range(lo, hi):
                node = internal[i]
                for fanin in node.fanins:
                    j = index.get(fanin.name)
                    if j is None or not (lo <= j < hi):
                        terminals += 1
                for sink in node.fanouts:
                    j = index.get(sink.name)
                    if j is None or not (lo <= j < hi):
                        terminals += 1
                        break
            terminal_counts.append(terminals)
        points.append((size, sum(terminal_counts) / len(terminal_counts)))
    lx = [math.log(s) for s, _t in points]
    ly = [math.log(t) for _s, t in points]
    mx = sum(lx) / len(lx)
    my = sum(ly) / len(ly)
    sxx = sum((x - mx) ** 2 for x in lx)
    sxy = sum((x - mx) * (y - my) for x, y in zip(lx, ly))
    slope = sxy / sxx
    intercept = my - slope * mx
    return RentFit(slope, math.exp(intercept), tuple(points))


def synth_stats(net: Network) -> Dict[str, float]:
    """Summary statistics of a generated network (for tests and logs)."""
    internal = [node for node in net.nodes if node.is_internal]
    num_pis = sum(1 for node in net.nodes if node.is_pi)
    num_pos = sum(1 for node in net.nodes if node.is_po)
    fanins = [len(node.fanins) for node in internal]
    fanouts = [len(node.fanouts) for node in internal]
    return {
        "gates": float(len(internal)),
        "inputs": float(num_pis),
        "outputs": float(num_pos),
        "avg_fanin": sum(fanins) / max(1, len(fanins)),
        "avg_fanout": sum(fanouts) / max(1, len(fanouts)),
        "max_fanout": float(max(fanouts) if fanouts else 0),
        "min_fanout": float(min(fanouts) if fanouts else 0),
    }
