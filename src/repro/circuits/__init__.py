"""Benchmark circuits.

``9symml`` is generated exactly (the 9-input symmetric function); the other
MCNC/ISCAS names of Tables 1–2 are seeded synthetic circuits matched to the
originals' I/O counts and size profiles (see DESIGN.md §3).  Real
arithmetic blocks (adders, parity trees, comparators, decoders, muxes) are
also provided for examples and tests.
"""

from repro.circuits.arith import (
    ripple_carry_adder,
    parity_tree,
    equality_comparator,
    decoder,
    mux_tree,
)
from repro.circuits.symmetric import symmetric_function, nine_symml
from repro.circuits.random_logic import random_network
from repro.circuits.datapath import alu, array_multiplier, carry_lookahead_adder
from repro.circuits.suite import (
    CircuitSpec,
    SUITE,
    TABLE1_CIRCUITS,
    TABLE2_CIRCUITS,
    build_circuit,
)
from repro.circuits.synth import (
    synth_network,
    synth_blif,
    parse_synth_spec,
    measure_rent_exponent,
    synth_stats,
    RentFit,
)

__all__ = [
    "ripple_carry_adder",
    "parity_tree",
    "equality_comparator",
    "decoder",
    "mux_tree",
    "symmetric_function",
    "nine_symml",
    "random_network",
    "alu",
    "array_multiplier",
    "carry_lookahead_adder",
    "CircuitSpec",
    "SUITE",
    "TABLE1_CIRCUITS",
    "TABLE2_CIRCUITS",
    "build_circuit",
    "synth_network",
    "synth_blif",
    "parse_synth_spec",
    "measure_rent_exponent",
    "synth_stats",
    "RentFit",
]
