"""Net-length estimation models (Section 3.4).

Lily implements two estimators and we reproduce both:

* half-perimeter of the enclosing rectangle, corrected by the worst-case
  ratio of minimal rectilinear Steiner tree length to half-perimeter from
  Chung & Hwang [3] (a function of pin count); and
* the length of a rectilinear spanning tree over the pins.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.geometry import Point, bounding_rect

__all__ = [
    "hpwl",
    "chung_hwang_factor",
    "steiner_estimate",
    "net_length_estimate",
    "netlist_hpwl",
    "netlist_hpwl_naive",
    "netlist_wirelength",
    "netlist_wirelength_naive",
]


def hpwl(points: Sequence[Point]) -> float:
    """Half-perimeter wirelength of a pin set (0 for fewer than 2 pins)."""
    if len(points) < 2:
        return 0.0
    return bounding_rect(points).half_perimeter


def chung_hwang_factor(num_pins: int) -> float:
    """Worst-case RSMT / half-perimeter ratio as a function of pin count.

    Chung and Hwang [3] bound the largest minimal rectilinear Steiner tree
    for ``n`` points in a rectangle: for 2 or 3 pins the tree never exceeds
    the half-perimeter (ratio 1); beyond that the worst case grows like
    ``(sqrt(n) + 1) / 2``.  Used to convert a bounding-box estimate into an
    expected routed length.
    """
    if num_pins <= 3:
        return 1.0
    return (math.sqrt(num_pins) + 1.0) / 2.0


def steiner_estimate(points: Sequence[Point]) -> float:
    """Half-perimeter x Chung–Hwang correction (Lily's default model)."""
    if len(points) < 2:
        return 0.0
    return hpwl(points) * chung_hwang_factor(len(points))


def netlist_hpwl_naive(
    nets: Sequence[Sequence[str]],
    positions: Dict[str, Point],
    fixed: Dict[str, Point],
) -> float:
    """Total HPWL over a hypergraph, one Python fold per net.

    The reference for :func:`netlist_hpwl`: pins resolve through the
    movable positions first, then the fixed terminals; unlocatable pins
    are skipped and nets with fewer than two located pins contribute
    ``+0.0``.  Kept as the exactness oracle for the vectorized kernel
    (the randomized equivalence tests compare the two bitwise).
    """
    total = 0.0
    for net in nets:
        xs = []
        ys = []
        for pin in net:
            p = positions.get(pin)
            if p is None:
                p = fixed.get(pin)
                if p is None:
                    continue
            xs.append(p.x)
            ys.append(p.y)
        if len(xs) < 2:
            continue
        total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


def netlist_hpwl(
    nets: Sequence[Sequence[str]],
    positions: Dict[str, Point],
    fixed: Dict[str, Point],
    vec: bool = True,
) -> float:
    """Total HPWL over a hypergraph (the placement cost function).

    With ``vec`` the nets fold as one flat-pin-table index reduction
    (:class:`repro.perf.vec.PinTable`) with the per-net terms summed in
    naive net order — bitwise-equal to :func:`netlist_hpwl_naive`, which
    the naive path runs directly.
    """
    if not vec:
        return netlist_hpwl_naive(nets, positions, fixed)
    from repro.obs import OBS
    from repro.perf.vec import PinTable

    total = PinTable(nets, positions, fixed).total_hpwl()
    if OBS.enabled:
        OBS.metrics.counter("perf.vec.hpwl_folds").inc(len(nets))
    return total


def netlist_wirelength_naive(
    nets: Sequence[Sequence[str]],
    positions: Dict[str, Point],
    fixed: Dict[str, Point],
    model: str = "steiner",
) -> float:
    """Total estimated wirelength over a hypergraph, one net at a time.

    The exactness oracle for :func:`netlist_wirelength`: pins resolve
    through the movable positions first, then the fixed terminals;
    unlocatable pins are skipped and nets with fewer than two located
    pins contribute ``+0.0``.  ``model`` selects the per-net estimator
    of :func:`net_length_estimate`.
    """
    total = 0.0
    for net in nets:
        points = []
        for pin in net:
            p = positions.get(pin)
            if p is None:
                p = fixed.get(pin)
                if p is None:
                    continue
            points.append(p)
        if len(points) < 2:
            continue
        total += net_length_estimate(points, model)
    return total


def netlist_wirelength(
    nets: Sequence[Sequence[str]],
    positions: Dict[str, Point],
    fixed: Dict[str, Point],
    model: str = "steiner",
    vec: bool = True,
    table=None,
) -> float:
    """Total estimated wirelength over a hypergraph (vectorized).

    With ``vec`` (``PerfOptions.vec_route``) the nets fold as flat
    struct-of-arrays reductions over a
    :class:`repro.perf.vec.PinTable`: per-net bounding boxes via
    ``reduceat`` min/max (``hpwl``), the Chung–Hwang correction as one
    elementwise ``sqrt`` expression (``steiner``), or the batched Prim
    kernel :func:`repro.route.spanning.mst_lengths_batched`
    (``spanning``) — with the per-net terms summed in naive net order
    (:func:`repro.perf.vec.ordered_sum`), bitwise-equal to
    :func:`netlist_wirelength_naive`.

    Callers folding the same hypergraph repeatedly may pass a prebuilt
    ``table`` (a :class:`~repro.perf.vec.PinTable` over ``nets``) to
    amortise the flattening; its coordinates must already reflect
    ``positions`` (see :meth:`~repro.perf.vec.PinTable.refresh`).
    """
    if not vec:
        return netlist_wirelength_naive(nets, positions, fixed, model)
    import numpy as np

    from repro.obs import OBS
    from repro.perf.vec import PinTable, ordered_sum

    if table is None:
        table = PinTable(nets, positions, fixed)
    if model == "hpwl":
        lengths = table.hpwl()
    elif model == "steiner":
        counts = table.counts
        factor = np.where(
            counts <= 3,
            1.0,
            (np.sqrt(counts.astype(np.float64)) + 1.0) / 2.0,
        )
        lengths = table.hpwl() * factor
    elif model == "spanning":
        from repro.route.spanning import mst_lengths_batched

        lengths = mst_lengths_batched(
            table.x[table.pin_slots],
            table.y[table.pin_slots],
            table.offsets,
        )
    else:
        raise ValueError(f"unknown wire model: {model!r}")
    if OBS.enabled:
        OBS.metrics.counter("perf.vec.route_folds").inc(table.num_nets)
    return ordered_sum(lengths)


def net_length_estimate(points: Sequence[Point], model: str = "steiner") -> float:
    """Estimate a net's routed length under the selected model.

    ``model``: ``hpwl``, ``steiner`` (half-perimeter x Chung–Hwang) or
    ``spanning`` (rectilinear minimum spanning tree).
    """
    if model == "hpwl":
        return hpwl(points)
    if model == "steiner":
        return steiner_estimate(points)
    if model == "spanning":
        from repro.route.spanning import rectilinear_mst_length

        return rectilinear_mst_length(points)
    raise ValueError(f"unknown wire model: {model!r}")
