"""Rectilinear minimum spanning trees (Lily's alternative wiring model).

Prim's algorithm under the Manhattan metric; O(n^2), which is ample for
net pin counts.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry import Point, manhattan

__all__ = ["rectilinear_mst_edges", "rectilinear_mst_length"]


def rectilinear_mst_edges(points: Sequence[Point]) -> List[Tuple[int, int]]:
    """Edge list (index pairs) of a Manhattan-metric MST over the points."""
    n = len(points)
    if n < 2:
        return []
    in_tree = [False] * n
    best_dist = [float("inf")] * n
    best_link = [0] * n
    in_tree[0] = True
    for j in range(1, n):
        best_dist[j] = manhattan(points[0], points[j])
    edges: List[Tuple[int, int]] = []
    for _ in range(n - 1):
        k = -1
        k_dist = float("inf")
        for j in range(n):
            if not in_tree[j] and best_dist[j] < k_dist:
                k_dist = best_dist[j]
                k = j
        edges.append((best_link[k], k))
        in_tree[k] = True
        for j in range(n):
            if not in_tree[j]:
                d = manhattan(points[k], points[j])
                if d < best_dist[j]:
                    best_dist[j] = d
                    best_link[j] = k
    return edges


def rectilinear_mst_length(points: Sequence[Point]) -> float:
    """Total Manhattan length of the MST over the points."""
    return sum(
        manhattan(points[a], points[b])
        for a, b in rectilinear_mst_edges(points)
    )
