"""Rectilinear minimum spanning trees (Lily's alternative wiring model).

Prim's algorithm under the Manhattan metric; O(n^2), which is ample for
net pin counts.  :func:`mst_lengths_batched` runs the same algorithm
vectorized *across* nets (grouped by pin count, one numpy row per net):
selection uses ``np.argmin``'s first-occurrence rule — exactly the
naive scan's strict ``<`` first-minimum tie-break — and each net's
length accumulates edge by edge in selection order, so every batched
length is bitwise-equal to :func:`rectilinear_mst_length` on the same
pin sequence (the ``repro.perf.vec`` exactness discipline).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry import Point, manhattan

__all__ = [
    "rectilinear_mst_edges",
    "rectilinear_mst_length",
    "mst_lengths_batched",
]


def rectilinear_mst_edges(points: Sequence[Point]) -> List[Tuple[int, int]]:
    """Edge list (index pairs) of a Manhattan-metric MST over the points."""
    n = len(points)
    if n < 2:
        return []
    in_tree = [False] * n
    best_dist = [float("inf")] * n
    best_link = [0] * n
    in_tree[0] = True
    for j in range(1, n):
        best_dist[j] = manhattan(points[0], points[j])
    edges: List[Tuple[int, int]] = []
    for _ in range(n - 1):
        k = -1
        k_dist = float("inf")
        for j in range(n):
            if not in_tree[j] and best_dist[j] < k_dist:
                k_dist = best_dist[j]
                k = j
        edges.append((best_link[k], k))
        in_tree[k] = True
        for j in range(n):
            if not in_tree[j]:
                d = manhattan(points[k], points[j])
                if d < best_dist[j]:
                    best_dist[j] = d
                    best_link[j] = k
    return edges


def rectilinear_mst_length(points: Sequence[Point]) -> float:
    """Total Manhattan length of the MST over the points."""
    return sum(
        manhattan(points[a], points[b])
        for a, b in rectilinear_mst_edges(points)
    )


def _prim_lengths_matrix(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Per-row MST lengths of ``(B, k)`` coordinate matrices.

    One Prim iteration per edge, vectorized across the batch dimension.
    ``np.argmin`` picks the first occurrence of the row minimum, which
    is the index the naive scan's strict ``<`` selection finds, and the
    per-row accumulator adds edge lengths in the same selection order —
    so each row's result is bitwise-equal to the scalar algorithm.
    """
    nrows, k = xs.shape
    in_tree = np.zeros((nrows, k), dtype=bool)
    in_tree[:, 0] = True
    best = np.abs(xs - xs[:, :1]) + np.abs(ys - ys[:, :1])
    rows = np.arange(nrows)
    acc = np.zeros(nrows, dtype=np.float64)
    for _step in range(k - 1):
        d = np.where(in_tree, np.inf, best)
        pick = np.argmin(d, axis=1)
        acc = acc + d[rows, pick]
        in_tree[rows, pick] = True
        nd = (np.abs(xs - xs[rows, pick][:, None])
              + np.abs(ys - ys[rows, pick][:, None]))
        better = (~in_tree) & (nd < best)
        best = np.where(better, nd, best)
    return acc


def mst_lengths_batched(xs, ys, offsets) -> np.ndarray:
    """Rectilinear MST length per net over flat pin-coordinate streams.

    ``xs``/``ys`` hold every net's pin coordinates back to back (in net
    pin order) and ``offsets`` the per-net ``[start, end)`` bounds, as a
    :class:`repro.perf.vec.PinTable` lays them out.  Nets are grouped by
    pin count and each group folds as one ``(B, k)`` Prim run; nets with
    fewer than two pins report 0.0.  Bitwise-equal per net to
    :func:`rectilinear_mst_length` on the same pin sequence.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    counts = np.diff(offsets)
    out = np.zeros(len(counts), dtype=np.float64)
    if len(counts) == 0:
        return out
    starts = offsets[:-1]
    for k in np.unique(counts):
        if k < 2:
            continue
        sel = np.nonzero(counts == k)[0]
        idx = starts[sel][:, None] + np.arange(int(k))
        out[sel] = _prim_lengths_matrix(xs[idx], ys[idx])
    return out
