"""Routing substrate: wire-length estimation (half-perimeter with the
Chung–Hwang Steiner correction, rectilinear spanning trees, iterated
1-Steiner), a left-edge channel router, and the row-based global router
that turns a detailed placement into channel assignments, track counts,
routed net lengths and the final chip area."""

from repro.route.wirelength import (
    chung_hwang_factor,
    hpwl,
    net_length_estimate,
    steiner_estimate,
)
from repro.route.spanning import rectilinear_mst_length, rectilinear_mst_edges
from repro.route.steiner import rsmt_length
from repro.route.channel import ChannelResult, left_edge_route, channel_density
from repro.route.global_route import RoutedDesign, route_design

__all__ = [
    "chung_hwang_factor",
    "hpwl",
    "net_length_estimate",
    "steiner_estimate",
    "rectilinear_mst_length",
    "rectilinear_mst_edges",
    "rsmt_length",
    "ChannelResult",
    "left_edge_route",
    "channel_density",
    "RoutedDesign",
    "route_design",
]
