"""Row-based global routing + channel assembly (the back-end of Section 5).

Every net is routed trunk-and-branch over the standard-cell image: one
horizontal trunk in a routing channel (chosen as the median of the
channels its pins prefer), vertical branches from each pin to the trunk.
Per channel, the trunk intervals are packed into tracks by the left-edge
router; channel heights follow from the track counts, rows are re-stacked,
and the final chip dimensions and routed wirelength fall out.

This substitutes for the paper's TimberWolf global router + YACR detailed
router: it consumes the same inputs and produces the same two quantities
the experiments report — final chip area and total interconnect length —
with the same qualitative congestion behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.geometry import Point
from repro.map.netlist import MappedNetwork, Net
from repro.obs import OBS
from repro.place.detailed import DetailedPlacement
from repro.route.channel import ChannelResult, left_edge_route

__all__ = ["RoutedDesign", "route_design"]

#: Routing track pitch, µm (wire width + spacing, 3µ-era metal).
DEFAULT_TRACK_PITCH = 8.0
#: Base channel height even when empty (power rails / spacing), µm.
CHANNEL_MARGIN = 8.0


@dataclass
class RoutedDesign:
    """Outcome of global + channel routing."""

    placement: DetailedPlacement
    channels: List[ChannelResult]
    channel_heights: List[float]
    net_lengths: Dict[str, float] = field(default_factory=dict)
    chip_width: float = 0.0
    chip_height: float = 0.0

    @property
    def chip_area(self) -> float:
        """Bounding die area: rows plus the expanded channels."""
        return self.chip_width * self.chip_height

    @property
    def total_wire_length(self) -> float:
        """Sum of the per-net estimated route lengths."""
        return sum(self.net_lengths.values())

    @property
    def total_tracks(self) -> int:
        """Total routing tracks allocated across every channel."""
        return sum(c.num_tracks for c in self.channels)


def _pad_channel(position: Point, num_rows: int, row_pitch: float) -> int:
    """Channel a boundary pad naturally enters (0 .. num_rows)."""
    if row_pitch <= 0:
        return 0
    channel = round(position.y / row_pitch)
    return min(max(channel, 0), num_rows)


def _gate_rows(placement: DetailedPlacement) -> Dict[str, int]:
    """Gate name -> row index, built once (first row wins, as the old
    per-gate linear scan resolved duplicates)."""
    rows: Dict[str, int] = {}
    for row in placement.rows:
        for name in row.x_spans:
            rows.setdefault(name, row.index)
    return rows


def route_design(
    mapped: MappedNetwork,
    placement: DetailedPlacement,
    pad_positions: Dict[str, Point],
    track_pitch: float = DEFAULT_TRACK_PITCH,
    vec: bool = True,
) -> RoutedDesign:
    """Globally route a placed mapped netlist and assemble the chip.

    Args:
        mapped: the mapped netlist (gives the nets).
        placement: detailed (row) placement of its gates.
        pad_positions: boundary positions for every PI/PO name.
        track_pitch: channel track pitch in µm.
        vec: fold the per-net routed lengths as one ordered segment sum
            (``PerfOptions.vec_route``); bitwise the same lengths as the
            retained per-net loop.

    Returns:
        The routed design with channel tracks, per-net routed lengths and
        final chip dimensions.
    """
    with OBS.span("route.global", rows=placement.num_rows):
        design = _route_design(
            mapped, placement, pad_positions, track_pitch, vec)
    if OBS.enabled:
        OBS.metrics.counter("route.nets_routed").inc(len(design.net_lengths))
        OBS.metrics.counter("route.channels").inc(len(design.channels))
        OBS.metrics.gauge("route.total_tracks").set(design.total_tracks)
    return design


def _route_design(
    mapped: MappedNetwork,
    placement: DetailedPlacement,
    pad_positions: Dict[str, Point],
    track_pitch: float,
    vec: bool = True,
) -> RoutedDesign:
    num_rows = placement.num_rows
    row_pitch = placement.cell_height + placement.channel_height_guess
    num_channels = num_rows + 1

    # Phase 1: choose a trunk channel and interval per net.
    gate_rows = _gate_rows(placement)
    trunk_channel: Dict[str, int] = {}
    trunk_interval: Dict[str, Tuple[float, float]] = {}
    net_pins: Dict[str, List[Tuple[Point, int]]] = {}  # (position, channel pref)
    nets = [n for n in mapped.nets() if not n.driver.is_constant]
    for net in nets:
        pins: List[Tuple[Point, int]] = []
        for node in [net.driver] + [sink for sink, _pin in net.sinks]:
            if node.is_gate:
                row = gate_rows.get(node.name)
                if row is None:
                    continue
                p = placement.positions[node.name]
                pins.append((p, row))  # gates prefer the channel below
            else:
                p = pad_positions.get(node.name)
                if p is None:
                    continue
                pins.append((p, _pad_channel(p, num_rows, row_pitch)))
        if len(pins) < 2:
            continue
        prefs = sorted(c for _p, c in pins)
        channel = prefs[len(prefs) // 2]
        xs = [p.x for p, _c in pins]
        trunk_channel[net.name] = channel
        trunk_interval[net.name] = (min(xs), max(xs))
        net_pins[net.name] = pins

    # Phase 2: left-edge route each channel.
    channels: List[ChannelResult] = []
    channel_heights: List[float] = []
    for channel_index in range(num_channels):
        intervals = {
            name: trunk_interval[name]
            for name, c in trunk_channel.items()
            if c == channel_index and trunk_interval[name][1] - trunk_interval[name][0] > 1e-9
        }
        result = left_edge_route(intervals)
        channels.append(result)
        channel_heights.append(CHANNEL_MARGIN + result.num_tracks * track_pitch)

    # Phase 3: re-stack rows with the routed channel heights.
    final_placement = placement.with_channel_heights(channel_heights)
    channel_y = _channel_centerlines(final_placement, channel_heights)

    # Phase 4: routed length per net = trunk span + vertical branches,
    # measured against the final (re-stacked) gate positions.
    net_lengths = _recompute_lengths(
        mapped, final_placement, pad_positions, trunk_channel,
        trunk_interval, channel_y, vec,
    )

    chip_width = max(
        [final_placement.core_width]
        + [hi for lo, hi in trunk_interval.values()]
        + [1.0]
    )
    chip_height = (
        sum(channel_heights) + num_rows * placement.cell_height
    )
    return RoutedDesign(
        final_placement,
        channels,
        channel_heights,
        net_lengths,
        chip_width,
        chip_height,
    )


def _channel_centerlines(
    placement: DetailedPlacement, channel_heights: Sequence[float]
) -> List[float]:
    """y of each channel's centre after re-stacking."""
    ys: List[float] = []
    y = 0.0
    for index, height in enumerate(channel_heights):
        ys.append(y + height / 2.0)
        y += height
        if index < placement.num_rows:
            y += placement.cell_height
    return ys


def _recompute_lengths(
    mapped: MappedNetwork,
    placement: DetailedPlacement,
    pad_positions: Dict[str, Point],
    trunk_channel: Dict[str, int],
    trunk_interval: Dict[str, Tuple[float, float]],
    channel_y: List[float],
    vec: bool = True,
) -> Dict[str, float]:
    if not vec:
        lengths: Dict[str, float] = {}
        for net in mapped.nets():
            name = net.driver.name
            if name not in trunk_channel:
                continue
            trunk_y = channel_y[trunk_channel[name]]
            lo, hi = trunk_interval[name]
            total = hi - lo
            for node in [net.driver] + [sink for sink, _pin in net.sinks]:
                if node.is_gate:
                    p = placement.positions.get(node.name)
                else:
                    p = pad_positions.get(node.name)
                if p is None:
                    continue
                total += abs(p.y - trunk_y)
            lengths[name] = total
        return lengths

    # Vectorized fold: each net's stream is [trunk span, |y - trunk_y|
    # per located pin] so the ordered segment sum accumulates in exactly
    # the naive loop's operation order (bitwise-equal lengths).
    import numpy as np

    from repro.perf.vec import segment_sum_ordered

    names: List[str] = []
    vals: List[float] = []
    offs: List[int] = [0]
    get_gate = placement.positions.get
    get_pad = pad_positions.get
    for net in mapped.nets():
        name = net.driver.name
        if name not in trunk_channel:
            continue
        trunk_y = channel_y[trunk_channel[name]]
        lo, hi = trunk_interval[name]
        vals.append(hi - lo)
        for node in [net.driver] + [sink for sink, _pin in net.sinks]:
            p = get_gate(node.name) if node.is_gate else get_pad(node.name)
            if p is None:
                continue
            vals.append(abs(p.y - trunk_y))
        offs.append(len(vals))
        names.append(name)
    sums = segment_sum_ordered(
        np.asarray(vals, dtype=np.float64),
        np.asarray(offs, dtype=np.int64),
    ).tolist()
    return dict(zip(names, sums))
