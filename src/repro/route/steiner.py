"""Rectilinear Steiner minimal tree approximation (iterated 1-Steiner).

Used by tests to sanity-check the Chung–Hwang estimate and by the routing
reports.  Exact for 2–3 pins; larger nets run the classic iterated
1-Steiner heuristic over Hanan grid candidates (Kahng–Robins style), which
is within a few percent of optimal for the net sizes mapping produces.

The heuristic's cost is one MST evaluation per Hanan candidate per
round; with ``vec`` (the default, ``PerfOptions.vec_route``) those
evaluations run as one batched Prim fold
(:func:`repro.route.spanning._prim_lengths_matrix`) whose per-candidate
lengths are bitwise-equal to the scalar
:func:`~repro.route.spanning.rectilinear_mst_length` calls — identical
lengths mean identical candidate selections, so the vectorized
heuristic returns the exact result of the naive one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.geometry import Point, manhattan
from repro.route.spanning import _prim_lengths_matrix, rectilinear_mst_length

__all__ = ["rsmt_length", "hanan_points"]

#: Nets larger than this skip the quadratic heuristic and use the MST.
MAX_PINS_FOR_1STEINER = 24


def hanan_points(points: Sequence[Point]) -> List[Point]:
    """The Hanan grid: intersections of pin x- and y-coordinates."""
    xs = sorted({p.x for p in points})
    ys = sorted({p.y for p in points})
    existing = {(p.x, p.y) for p in points}
    return [
        Point(x, y) for x in xs for y in ys if (x, y) not in existing
    ]


def _candidate_lengths(
    base: Sequence[Point], candidates: Sequence[Point], vec: bool
) -> List[float]:
    """MST length of ``base + [c]`` for each candidate ``c``.

    The vectorized path shares the base coordinates across one
    ``(B, k+1)`` Prim batch; each row is bitwise-equal to the scalar
    evaluation of the same point list.
    """
    if not vec:
        return [
            rectilinear_mst_length(list(base) + [c]) for c in candidates
        ]
    k = len(base)
    nrows = len(candidates)
    xs = np.empty((nrows, k + 1), dtype=np.float64)
    ys = np.empty((nrows, k + 1), dtype=np.float64)
    xs[:, :k] = [p.x for p in base]
    ys[:, :k] = [p.y for p in base]
    xs[:, k] = [c.x for c in candidates]
    ys[:, k] = [c.y for c in candidates]
    return _prim_lengths_matrix(xs, ys).tolist()


def _leave_one_out_lengths(
    terminals: Sequence[Point], kept: Sequence[Point], vec: bool
) -> List[float]:
    """MST length of ``terminals + kept`` minus each kept point in turn."""
    if not vec:
        return [
            rectilinear_mst_length(
                list(terminals) + list(kept[:i]) + list(kept[i + 1:]))
            for i in range(len(kept))
        ]
    t = len(terminals)
    m = len(kept)
    xs = np.empty((m, t + m - 1), dtype=np.float64)
    ys = np.empty((m, t + m - 1), dtype=np.float64)
    xs[:, :t] = [p.x for p in terminals]
    ys[:, :t] = [p.y for p in terminals]
    for i in range(m):
        rest = list(kept[:i]) + list(kept[i + 1:])
        xs[i, t:] = [p.x for p in rest]
        ys[i, t:] = [p.y for p in rest]
    return _prim_lengths_matrix(xs, ys).tolist()


def rsmt_length(points: Sequence[Point], vec: bool = True) -> float:
    """Approximate rectilinear Steiner minimal tree length.

    2 pins: Manhattan distance.  3 pins: the median-point tree (optimal).
    Otherwise iterated 1-Steiner: repeatedly add the Hanan point that most
    reduces the MST length, until no candidate helps.  ``vec`` batches
    the candidate MST evaluations (identical result either way).
    """
    n = len(points)
    if n < 2:
        return 0.0
    if n == 2:
        return manhattan(points[0], points[1])
    if n == 3:
        xs = sorted(p.x for p in points)
        ys = sorted(p.y for p in points)
        median = Point(xs[1], ys[1])
        return sum(manhattan(p, median) for p in points)
    if n > MAX_PINS_FOR_1STEINER:
        return rectilinear_mst_length(points)

    terminals = list(points)
    steiner: List[Point] = []
    best = rectilinear_mst_length(terminals)
    while True:
        candidates = hanan_points(terminals + steiner)
        best_gain = 0.0
        best_candidate: Optional[Point] = None
        lengths = _candidate_lengths(terminals + steiner, candidates, vec)
        for candidate, length in zip(candidates, lengths):
            gain = best - length
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_candidate = candidate
        if best_candidate is None:
            break
        steiner.append(best_candidate)
        best -= best_gain
        # Prune Steiner points that stopped helping (degree <= 2 effect is
        # approximated by re-evaluating the tree without each point).
        steiner = _prune(terminals, steiner, best, vec)
    return best


def _prune(
    terminals: List[Point], steiner: List[Point], current: float, vec: bool
) -> List[Point]:
    kept = list(steiner)
    changed = True
    while changed:
        changed = False
        lengths = _leave_one_out_lengths(terminals, kept, vec)
        for i, length in enumerate(lengths):
            if length <= current + 1e-12:
                kept = kept[:i] + kept[i + 1:]
                changed = True
                break
    return kept
