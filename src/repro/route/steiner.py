"""Rectilinear Steiner minimal tree approximation (iterated 1-Steiner).

Used by tests to sanity-check the Chung–Hwang estimate and by the routing
reports.  Exact for 2–3 pins; larger nets run the classic iterated
1-Steiner heuristic over Hanan grid candidates (Kahng–Robins style), which
is within a few percent of optimal for the net sizes mapping produces.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.geometry import Point, manhattan
from repro.route.spanning import rectilinear_mst_length

__all__ = ["rsmt_length", "hanan_points"]

#: Nets larger than this skip the quadratic heuristic and use the MST.
MAX_PINS_FOR_1STEINER = 24


def hanan_points(points: Sequence[Point]) -> List[Point]:
    """The Hanan grid: intersections of pin x- and y-coordinates."""
    xs = sorted({p.x for p in points})
    ys = sorted({p.y for p in points})
    existing = {(p.x, p.y) for p in points}
    return [
        Point(x, y) for x in xs for y in ys if (x, y) not in existing
    ]


def rsmt_length(points: Sequence[Point]) -> float:
    """Approximate rectilinear Steiner minimal tree length.

    2 pins: Manhattan distance.  3 pins: the median-point tree (optimal).
    Otherwise iterated 1-Steiner: repeatedly add the Hanan point that most
    reduces the MST length, until no candidate helps.
    """
    n = len(points)
    if n < 2:
        return 0.0
    if n == 2:
        return manhattan(points[0], points[1])
    if n == 3:
        xs = sorted(p.x for p in points)
        ys = sorted(p.y for p in points)
        median = Point(xs[1], ys[1])
        return sum(manhattan(p, median) for p in points)
    if n > MAX_PINS_FOR_1STEINER:
        return rectilinear_mst_length(points)

    terminals = list(points)
    steiner: List[Point] = []
    best = rectilinear_mst_length(terminals)
    while True:
        candidates = hanan_points(terminals + steiner)
        best_gain = 0.0
        best_candidate = None
        for candidate in candidates:
            length = rectilinear_mst_length(terminals + steiner + [candidate])
            gain = best - length
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_candidate = candidate
        if best_candidate is None:
            break
        steiner.append(best_candidate)
        best -= best_gain
        # Prune Steiner points that stopped helping (degree <= 2 effect is
        # approximated by re-evaluating the tree without each point).
        steiner = _prune(terminals, steiner, best)
    return best


def _prune(
    terminals: List[Point], steiner: List[Point], current: float
) -> List[Point]:
    kept = list(steiner)
    changed = True
    while changed:
        changed = False
        for i, _candidate in enumerate(kept):
            without = kept[:i] + kept[i + 1:]
            if rectilinear_mst_length(terminals + without) <= current + 1e-12:
                kept = without
                changed = True
                break
    return kept
