"""Left-edge channel routing (the YACR stand-in of the back-end flow).

Each routing channel between standard-cell rows receives a set of
horizontal net intervals.  The classic left-edge algorithm assigns
intervals to tracks greedily: intervals sorted by left end, each placed on
the first track whose last interval ends before it starts.  Without
vertical constraints (we route trunks only; branches are vertical stubs)
the track count equals the channel density, which is optimal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["ChannelResult", "left_edge_route", "channel_density"]

#: Minimum spacing treated as overlap when packing tracks.
_EPS = 1e-9


@dataclass
class ChannelResult:
    """Track assignment for one channel."""

    #: net name -> track index (0 = bottom track).
    track_of: Dict[str, int] = field(default_factory=dict)
    num_tracks: int = 0
    density: int = 0

    @property
    def is_density_optimal(self) -> bool:
        """Whether the assignment met the channel-density lower bound."""
        return self.num_tracks == self.density


def channel_density(intervals: Sequence[Tuple[float, float]]) -> int:
    """Maximum number of intervals crossing any vertical line."""
    events: List[Tuple[float, int]] = []
    for lo, hi in intervals:
        if hi < lo:
            lo, hi = hi, lo
        events.append((lo, 1))
        events.append((hi, -1))
    # Ends sort before starts at the same coordinate: touching intervals
    # can share a track.
    events.sort(key=lambda e: (e[0], e[1]))
    depth = 0
    density = 0
    for _x, delta in events:
        depth += delta
        density = max(density, depth)
    return density


def left_edge_route(
    intervals: Dict[str, Tuple[float, float]]
) -> ChannelResult:
    """Assign each net interval to a track with the left-edge algorithm.

    Zero-length intervals (a point connection with no horizontal span)
    need no track and are skipped.
    """
    intervals = {
        name: (min(span), max(span))
        for name, span in intervals.items()
        if abs(span[1] - span[0]) > _EPS
    }
    result = ChannelResult()
    result.density = channel_density(list(intervals.values()))
    ordered = sorted(
        intervals.items(), key=lambda item: (item[1][0], item[1][1], item[0])
    )
    track_ends: List[float] = []
    for name, (lo, hi) in ordered:
        placed = False
        for track_index, end in enumerate(track_ends):
            if end <= lo + _EPS:
                result.track_of[name] = track_index
                track_ends[track_index] = hi
                placed = True
                break
        if not placed:
            result.track_of[name] = len(track_ends)
            track_ends.append(hi)
    result.num_tracks = len(track_ends)
    return result
