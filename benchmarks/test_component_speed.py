"""Micro-benchmarks of the individual substrates.

These are conventional pytest-benchmark timings (multiple rounds) of the
hot paths: decomposition, matching, the quadratic placement solve, the
left-edge channel router, STA and a full Lily map of a mid-size circuit.
The paper reports ~3 min for GORDIAN on C5315's 1892 gates and ~10 min
for the whole Lily run on a DEC3100; these give the Python equivalents.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import suite_circuit
from repro.area.estimate import subject_image
from repro.core.lily import LilyAreaMapper
from repro.library.patterns import pattern_set_for
from repro.library.standard import big_library
from repro.map.mis import MisAreaMapper
from repro.match.treematch import Matcher
from repro.network.decompose import decompose_to_subject
from repro.place.global_place import GlobalPlacer
from repro.place.hypergraph import subject_netlist
from repro.place.pads import assign_pads
from repro.route.channel import left_edge_route
from repro.timing.sta import analyze


@pytest.fixture(scope="module")
def c880_subject():
    return decompose_to_subject(suite_circuit("C880"))


@pytest.fixture(scope="module")
def library():
    lib = big_library()
    pattern_set_for(lib)  # warm the cache outside the timed region
    return lib


def test_speed_decompose(benchmark):
    net = suite_circuit("C880")
    benchmark(lambda: decompose_to_subject(net))


def test_speed_matching(benchmark, c880_subject, library):
    matcher = Matcher(pattern_set_for(library))

    def run():
        return sum(
            len(matcher.matches_at(n))
            for n in c880_subject.nodes
            if n.is_gate
        )

    total = benchmark(run)
    assert total > 0


def test_speed_global_placement(benchmark, c880_subject):
    region = subject_image(len(c880_subject.gates))
    pads = assign_pads(c880_subject, region)
    netlist = subject_netlist(c880_subject, pads)
    placer = GlobalPlacer()
    benchmark(lambda: placer.place(netlist, region))


def test_speed_left_edge(benchmark):
    intervals = {
        f"n{i}": ((i * 37) % 500.0, (i * 37) % 500.0 + 25 + (i % 60))
        for i in range(400)
    }
    benchmark(lambda: left_edge_route(intervals))


def test_speed_mis_map(benchmark, c880_subject, library):
    benchmark.pedantic(
        lambda: MisAreaMapper(library).map(c880_subject),
        rounds=3, iterations=1,
    )


def test_speed_lily_map(benchmark, c880_subject, library):
    benchmark.pedantic(
        lambda: LilyAreaMapper(library).map(c880_subject),
        rounds=2, iterations=1,
    )


def test_speed_sta(benchmark, c880_subject, library):
    mapped = MisAreaMapper(library).map(c880_subject).mapped
    benchmark(lambda: analyze(mapped, wire_model=None))


# -- observability overhead ---------------------------------------------------
#
# The instrumentation added in PR 1 must be free when disabled: hot loops
# pay one attribute load + truthy check per site.  These two benchmarks
# bracket the cost — the suite-default runs above execute with the session
# disabled (so their trend vs. earlier commits measures the disabled-mode
# overhead), and the *_observed variants show the full recording cost.


def test_speed_matching_observed(benchmark, c880_subject, library):
    from repro.obs import observed

    matcher = Matcher(pattern_set_for(library))
    nodes = [n for n in c880_subject.nodes if n.is_gate]

    def run():
        with observed():
            return sum(len(matcher.matches_at(n)) for n in nodes)

    total = benchmark(run)
    assert total > 0


def test_speed_mis_map_observed(benchmark, c880_subject, library):
    from repro.obs import observed

    def run():
        with observed():
            return MisAreaMapper(library).map(c880_subject)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_obs_disabled_is_default():
    """The suite benchmarks above must measure the disabled fast path."""
    from repro.obs import OBS

    assert not OBS.enabled
