"""Ablation A3 — the Section 3.5 cone ordering.

The ordering minimises references to not-yet-mapped logic: we measure the
exit-line objective the greedy procedure achieves against the natural
(declaration) order, and the end-to-end effect on Lily's results.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, cached_flow, geomean, suite_circuit
from repro.core.lily import LilyOptions
from repro.map.cones import exit_line_matrix, logic_cones, order_cones, ordering_cost
from repro.network.decompose import decompose_to_subject

CIRCUITS = ["b9", "C432", "duke2", "e64"]


def test_exit_line_objective(benchmark):
    """Greedy cone order vs natural order on the exit-line objective."""

    def run():
        rows = {}
        for circuit in CIRCUITS:
            subject = decompose_to_subject(suite_circuit(circuit))
            cones = logic_cones(subject)
            matrix = exit_line_matrix(subject, cones)
            natural = ordering_cost(matrix, list(range(len(cones))))
            greedy = ordering_cost(matrix, order_cones(subject, cones))
            rows[circuit] = {"natural": natural, "greedy": greedy}
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({"scale": BENCH_SCALE, "rows": rows})
    # order_cones guards with the natural order, so it never regresses.
    for circuit, row in rows.items():
        assert row["greedy"] <= row["natural"], circuit


@pytest.mark.parametrize("ordered", [True, False])
def test_cone_order_end_to_end(benchmark, ordered):
    options = LilyOptions(use_cone_ordering=ordered)

    def run():
        rows = {}
        for circuit in CIRCUITS:
            mis = cached_flow(circuit, "mis", "area")
            lily = cached_flow(
                circuit, "lily", "area",
                options_key=f"order_{ordered}", options=options,
            )
            rows[circuit] = round(
                lily.wire_length_mm / mis.wire_length_mm, 4
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "scale": BENCH_SCALE,
            "cone_ordering": ordered,
            "geomean_wire_ratio": round(geomean(rows.values()), 4),
            "rows": rows,
        }
    )
