"""Scaling workload: the struct-of-arrays kernels vs the naive engines.

Generates seeded :func:`repro.circuits.random_logic.random_network`
circuits, identity-maps their NAND2/INV subject graphs onto ``nand2`` /
``inv1`` library cells (tree matching would dominate the wall at 20k
gates and is benchmarked elsewhere), legalises a placement, and then
times the placement/STA hot rows at each size with the vectorized
kernels on and off:

* ``scale.hpwl`` — total netlist HPWL as a :class:`repro.perf.vec.PinTable`
  coordinate refresh + index-array fold, vs the per-net Python fold
  (``scale.hpwl_naive``);
* ``scale.anneal_cost`` — a short simulated-annealing run with the
  vec-constructed engine vs the plain incremental engine (capped at
  ``ANNEAL_MAX_CELLS``; expect ~1.0x — move scoring is dict-bound by
  design, see ``docs/SCALING.md`` — the row guards against regressions
  at scale);
* ``scale.quad_assembly`` — sparse COO assembly of the quadratic
  placement system vs the per-net Python loop;
* ``scale.sta_full`` — a full forward STA sweep through
  :class:`repro.timing.array_sta.ArraySTA` (flattening amortised, as
  :class:`~repro.timing.incremental.IncrementalTiming` holds it) vs
  :func:`repro.timing.sta.analyze`.

``--synth-gates`` adds generator-backed sizes: Rent's-rule circuits
from :func:`repro.circuits.synth.synth_network` (deterministic per
seed, realistic fanout tails) pushed through the same identity-map and
placement pipeline, which is how the 100k–1M-gate rows are produced
without multi-hour mapping runs.  Each synth size times:

* ``scale.synth.build`` — raw generator throughput (netlist object
  construction included);
* ``scale.route.wirelength`` / ``scale.route.spanning`` — the
  vectorized netlist wirelength folds of
  :func:`repro.route.wirelength.netlist_wirelength` (Chung–Hwang
  Steiner model and the batched Prim spanning kernel) vs the per-net
  Python estimators (``*_naive``);
* ``scale.synth.sta_moves`` — a seeded gate-move sweep through the
  level-batched incremental-STA frontier
  (:class:`~repro.timing.incremental.IncrementalTiming` with
  ``vec=True``) vs the per-node reference engine, required times
  included.

Every timed pair is also *checked*: the bench asserts bitwise equality
of the two engines' results before recording a row, so a committed
``BENCH_*.json`` proves speed and exactness together.  Row names carry
the gate-count suffix (``scale.hpwl_20000``); the largest size (per
family) also writes the canonical unsuffixed rows that
``benchmarks/check_perf_regression.py`` and ``tools/bench_trajectory.py``
watch.  Per-size metadata records the process peak RSS after the
size's rows, so memory growth is tracked next to wall time.

Sizes above ``--max-gates`` (default 200k) are refused with a loud
error: the 1M-gate run is opt-in (``--max-gates 1000000``), not a
typo-reachable default.

Run from the repo root::

    PYTHONPATH=src python benchmarks/scaling.py [out.json]
        [--gates 1000 5000 20000] [--synth-gates 10000 100000]
        [--max-gates 200000] [--repeats 3] [--quick] [--pr 9]
"""

from __future__ import annotations

import argparse
import copy
import json
import platform
import random
import sys
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.area.estimate import mapped_image
from repro.circuits.random_logic import random_network
from repro.circuits.synth import synth_network
from repro.flow.pipeline import pads_from_order
from repro.geometry import Point
from repro.library.standard import big_library
from repro.map.netlist import MappedNetwork
from repro.network.decompose import decompose_to_subject
from repro.place.detailed import detailed_place
from repro.place.hypergraph import mapped_netlist
from repro.timing.model import WireCapModel

#: Seed for the scaling circuits (fixed: artifacts must be comparable).
SCALE_SEED = 1991

#: The annealing row is move-scoring-bound, not fold-bound; cap its size.
ANNEAL_MAX_CELLS = 5000

#: Sizes above this are refused unless the guard is raised explicitly.
DEFAULT_MAX_GATES = 200_000

#: Moves in the incremental-STA sweep row (fixed: rows must compare).
STA_SWEEP_MOVES = 120


def _peak_rss_mb() -> Optional[float]:
    """Process peak RSS in MB (``None`` where rusage is unavailable)."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes there, KB on Linux
        peak //= 1024
    return round(peak / 1024.0, 1)


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        fn()
        best = min(best, perf_counter() - start)
    return best


def identity_map(subject, library) -> MappedNetwork:
    """Map a subject graph 1:1 onto ``nand2``/``inv1`` instances.

    Every NAND2 subject node becomes one ``nand2`` gate and every INV an
    ``inv1`` — the trivial cover, skipping tree matching entirely.  The
    result is a legitimate :class:`MappedNetwork` for the layout/timing
    substrates, which is all the scaling rows exercise.
    """
    cells = {c.name: c for c in library.cells}
    nand2 = cells["nand2"]
    inv1 = cells["inv1"]
    mapped = MappedNetwork(subject.name)
    built = {}
    for node in subject.topological_order():
        if node.is_pi:
            built[node.uid] = mapped.add_primary_input(node.name)
        elif node.is_po:
            built[node.uid] = mapped.add_primary_output(
                node.name, built[node.fanins[0].uid]
            )
        elif node.is_constant:
            built[node.uid] = mapped.add_constant(
                f"g{node.uid}", node.type.value == "const1"
            )
        else:
            cell = nand2 if len(node.fanins) == 2 else inv1
            built[node.uid] = mapped.add_gate(
                f"g{node.uid}", cell, [built[f.uid] for f in node.fanins]
            )
    return mapped


def build_scaling_circuit(gates: int, seed: int = SCALE_SEED):
    """A placed identity-mapped circuit of roughly ``gates`` gates.

    Returns ``(mapped, netlist, placement, region)`` with gate and pad
    positions already written onto the mapped nodes (the STA rows read
    them live).
    """
    num_inputs = max(16, gates // 64)
    num_outputs = max(8, gates // 128)
    net = random_network(
        f"scale{gates}", num_inputs, num_outputs,
        max(num_outputs, gates // 5), seed=seed,
    )
    subject = decompose_to_subject(net)
    mapped = identity_map(subject, big_library())
    region = mapped_image(mapped.total_cell_area())
    order = sorted(
        n.name for n in mapped.primary_inputs + mapped.primary_outputs
    )
    pads = pads_from_order(order, region)
    netlist = mapped_netlist(mapped, pads)
    seed_positions = {
        name: region.center for name in netlist.movables
    }
    placement = detailed_place(netlist, seed_positions,
                               improvement_passes=0)
    for node in mapped.nodes:
        p = placement.positions.get(node.name) or pads.get(node.name)
        if p is not None:
            node.position = p
    return mapped, netlist, placement, region


def _hpwl_rows(netlist, placement, repeats: int) -> Dict[str, float]:
    from repro.perf.vec import PinTable
    from repro.route.wirelength import netlist_hpwl_naive

    nets = netlist.nets
    positions = placement.positions
    fixed = netlist.fixed
    table = PinTable(nets, positions, fixed)

    def vec_fold() -> float:
        table.refresh(positions)
        return table.total_hpwl()

    want = netlist_hpwl_naive(nets, positions, fixed)
    got = vec_fold()
    if got != want:
        raise AssertionError(f"HPWL kernels diverge: vec={got!r} "
                             f"naive={want!r}")
    return {
        "scale.hpwl": _best_of(vec_fold, repeats),
        "scale.hpwl_naive": _best_of(
            lambda: netlist_hpwl_naive(nets, positions, fixed), repeats),
    }


def _anneal_rows(netlist, placement, repeats: int) -> Dict[str, float]:
    from repro.place.anneal import simulated_annealing

    def run(vec: bool):
        work = copy.deepcopy(placement)
        simulated_annealing(work, netlist, seed=3, moves_per_cell=2,
                            vec=vec)
        return work.positions

    got = run(True)
    want = run(False)
    if got != want:
        raise AssertionError("anneal engines diverge under vec kernels")
    return {
        "scale.anneal_cost": _best_of(lambda: run(True), repeats),
        "scale.anneal_cost_naive": _best_of(lambda: run(False), repeats),
    }


def _quad_rows(netlist, region, repeats: int) -> Dict[str, float]:
    import numpy as np

    from repro.place.quadratic import QuadraticSystem

    vec = QuadraticSystem(netlist, region, vec=True)
    naive = QuadraticSystem(netlist, region, vec=False)
    same = (
        np.array_equal(np.asarray(vec._diag), np.asarray(naive._diag))
        and np.array_equal(np.asarray(vec._vals), np.asarray(naive._vals))
        and np.array_equal(np.asarray(vec._rows), np.asarray(naive._rows))
        and np.array_equal(np.asarray(vec._cols), np.asarray(naive._cols))
        and np.array_equal(np.asarray(vec._bx), np.asarray(naive._bx))
        and np.array_equal(np.asarray(vec._by), np.asarray(naive._by))
    )
    if not same:
        raise AssertionError("quadratic assemblies diverge under vec "
                             "kernels")
    return {
        "scale.quad_assembly": _best_of(
            lambda: QuadraticSystem(netlist, region, vec=True), repeats),
        "scale.quad_assembly_naive": _best_of(
            lambda: QuadraticSystem(netlist, region, vec=False), repeats),
    }


def _sta_rows(mapped, repeats: int) -> Dict[str, float]:
    from repro.timing.array_sta import ArraySTA
    from repro.timing.sta import analyze

    wire_model = WireCapModel()
    engine = ArraySTA(mapped, wire_model=wire_model)
    got = engine.analyze()
    want = analyze(mapped, wire_model=wire_model)
    if (got.arrivals != want.arrivals or got.loads != want.loads
            or got.critical_delay != want.critical_delay
            or got.critical_po != want.critical_po):
        raise AssertionError("STA engines diverge under vec kernels")
    return {
        "scale.sta_full": _best_of(engine.analyze, repeats),
        "scale.sta_full_naive": _best_of(
            lambda: analyze(mapped, wire_model=wire_model), repeats),
    }


def build_synth_circuit(gates: int, seed: int = SCALE_SEED):
    """A placed identity-mapped Rent's-rule circuit of ``gates`` gates.

    Same downstream pipeline as :func:`build_scaling_circuit`, but the
    netlist comes from :func:`repro.circuits.synth.synth_network` — the
    generator's heavy-tailed fanout and Rent-exponent locality give the
    routing/STA rows realistic net statistics at sizes the curated
    suite cannot reach.
    """
    net = synth_network(gates, seed=seed)
    subject = decompose_to_subject(net)
    mapped = identity_map(subject, big_library())
    region = mapped_image(mapped.total_cell_area())
    order = sorted(
        n.name for n in mapped.primary_inputs + mapped.primary_outputs
    )
    pads = pads_from_order(order, region)
    netlist = mapped_netlist(mapped, pads)
    seed_positions = {
        name: region.center for name in netlist.movables
    }
    placement = detailed_place(netlist, seed_positions,
                               improvement_passes=0)
    for node in mapped.nodes:
        p = placement.positions.get(node.name) or pads.get(node.name)
        if p is not None:
            node.position = p
    return mapped, netlist, placement, region


def _route_rows(netlist, placement, repeats: int) -> Dict[str, float]:
    from repro.perf.vec import PinTable
    from repro.route.wirelength import (
        netlist_wirelength,
        netlist_wirelength_naive,
    )

    nets = netlist.nets
    positions = placement.positions
    fixed = netlist.fixed
    table = PinTable(nets, positions, fixed)
    rows: Dict[str, float] = {}
    for model, key in (("steiner", "wirelength"), ("spanning", "spanning")):
        def vec_fold(model=model):
            table.refresh(positions)
            return netlist_wirelength(nets, positions, fixed,
                                      model=model, table=table)

        def naive_fold(model=model):
            return netlist_wirelength_naive(nets, positions, fixed,
                                            model=model)

        got = vec_fold()
        want = naive_fold()
        if got != want:
            raise AssertionError(
                f"{model} wirelength kernels diverge: vec={got!r} "
                f"naive={want!r}")
        rows[f"scale.route.{key}"] = _best_of(vec_fold, repeats)
        rows[f"scale.route.{key}_naive"] = _best_of(naive_fold, repeats)
    return rows


def _sta_move_rows(mapped, repeats: int,
                   num_moves: int = STA_SWEEP_MOVES) -> Dict[str, float]:
    """The incremental-STA frontier vs the per-node engine over one
    seeded move sequence (reports and required times compared bitwise
    before any timing; positions restored afterwards)."""
    from repro.timing.incremental import IncrementalTiming

    wire_model = WireCapModel()
    gates = sorted(g.name for g in mapped.gates)
    saved = {n.name: n.position for n in mapped.nodes}
    rng = random.Random(4207)
    sequence = [
        (gates[rng.randrange(len(gates))],
         rng.uniform(-8.0, 8.0), rng.uniform(-8.0, 8.0))
        for _ in range(num_moves)
    ]

    def restore():
        for name, pos in saved.items():
            mapped[name].position = pos

    def sweep(engine):
        for name, dx, dy in sequence:
            p = mapped[name].position
            engine.set_position(name, Point(p.x + dx, p.y + dy))
            engine.update()
        return engine.required()

    def fresh_engine(vec: bool):
        restore()
        return IncrementalTiming(mapped, wire_model=wire_model, vec=vec)

    e_vec = fresh_engine(True)
    req_vec = sweep(e_vec)
    rep_vec = e_vec.report
    e_ref = fresh_engine(False)
    req_ref = sweep(e_ref)
    rep_ref = e_ref.report
    if (rep_vec.arrivals != rep_ref.arrivals
            or rep_vec.loads != rep_ref.loads
            or rep_vec.critical_delay != rep_ref.critical_delay
            or rep_vec.critical_po != rep_ref.critical_po
            or req_vec != req_ref):
        restore()
        raise AssertionError("incremental-STA frontier engines diverge "
                             "over the move sweep")

    def timed(vec: bool) -> float:
        engine = fresh_engine(vec)  # construction outside the clock
        start = perf_counter()
        sweep(engine)
        return perf_counter() - start

    rows = {
        "scale.synth.sta_moves": min(timed(True) for _ in range(repeats)),
        "scale.synth.sta_moves_naive": min(
            timed(False) for _ in range(repeats)),
    }
    restore()
    return rows


def scaling_rows(
    gate_sizes: List[int],
    repeats: int = 3,
    synth_sizes: Optional[List[int]] = None,
    max_gates: int = DEFAULT_MAX_GATES,
) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Timing rows (and circuit metadata) for every requested size.

    ``gate_sizes`` drive the curated random-logic rows, ``synth_sizes``
    the generator-backed ``scale.synth.*`` / ``scale.route.*`` rows.
    The largest size of each family also writes the canonical
    unsuffixed rows the regression gates watch.  Any size above
    ``max_gates`` aborts loudly — raising the guard is an explicit
    opt-in for the 1M-gate runs.
    """
    synth_sizes = list(synth_sizes or [])
    over = [g for g in list(gate_sizes) + synth_sizes if g > max_gates]
    if over:
        raise SystemExit(
            f"refusing to build {max(over)} gates (guard: {max_gates}); "
            f"pass --max-gates {max(over)} to opt in to runs this large")
    timings: Dict[str, float] = {}
    sizes: Dict[str, object] = {}
    largest = max(gate_sizes) if gate_sizes else None
    for gates in gate_sizes:
        mapped, netlist, placement, region = build_scaling_circuit(gates)
        rows: Dict[str, float] = {}
        rows.update(_hpwl_rows(netlist, placement, repeats))
        rows.update(_quad_rows(netlist, region, repeats))
        rows.update(_sta_rows(mapped, repeats))
        if len(netlist.movables) <= ANNEAL_MAX_CELLS:
            rows.update(_anneal_rows(netlist, placement,
                                     max(1, repeats - 1)))
        sizes[str(gates)] = {
            "gates": len(mapped.gates),
            "nets": len(netlist.nets),
            "pins": sum(len(net) for net in netlist.nets),
            "peak_rss_mb": _peak_rss_mb(),
        }
        for name, seconds in rows.items():
            timings[f"{name}_{gates}"] = seconds
            if gates == largest:
                timings[name] = seconds
    largest_synth = max(synth_sizes) if synth_sizes else None
    for gates in synth_sizes:
        rows = {
            "scale.synth.build": _best_of(
                lambda: synth_network(gates, seed=SCALE_SEED), repeats),
        }
        mapped, netlist, placement, _region = build_synth_circuit(gates)
        rows.update(_route_rows(netlist, placement, repeats))
        rows.update(_sta_move_rows(mapped, repeats))
        sizes[f"synth{gates}"] = {
            "gates": len(mapped.gates),
            "nets": len(netlist.nets),
            "pins": sum(len(net) for net in netlist.nets),
            "peak_rss_mb": _peak_rss_mb(),
        }
        for name, seconds in rows.items():
            timings[f"{name}_{gates}"] = seconds
            if gates == largest_synth:
                timings[name] = seconds
    return timings, sizes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="scaling")
    parser.add_argument("out", nargs="?", default=None,
                        help="output path (default: print only)")
    parser.add_argument("--gates", type=int, nargs="+",
                        default=[1000, 5000, 20000],
                        help="target gate counts (default 1000 5000 "
                             "20000)")
    parser.add_argument("--synth-gates", type=int, nargs="+", default=[],
                        metavar="GATES",
                        help="generator-backed sizes for the "
                             "scale.synth.* / scale.route.* rows "
                             "(e.g. 10000 100000)")
    parser.add_argument("--max-gates", type=int,
                        default=DEFAULT_MAX_GATES,
                        help="refuse sizes above this (default "
                             f"{DEFAULT_MAX_GATES}); raise explicitly "
                             "for 1M-gate runs")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true",
                        help="single repeat, skip the annealing rows "
                             "(CI smoke)")
    parser.add_argument("--pr", type=int, default=7,
                        help="PR number stamped into the artifact")
    args = parser.parse_args(argv)
    repeats = 1 if args.quick else args.repeats
    global ANNEAL_MAX_CELLS
    if args.quick:
        ANNEAL_MAX_CELLS = 0

    from repro.perf.vec import kernel_backend_info

    timings, sizes = scaling_rows(args.gates, repeats=repeats,
                                  synth_sizes=args.synth_gates,
                                  max_gates=args.max_gates)
    doc = {
        "pr": args.pr,
        "seed": SCALE_SEED,
        "repeats": repeats,
        "python": platform.python_version(),
        "kernels": kernel_backend_info(),
        "scaling_sizes": sizes,
        "timings_s": {k: round(v, 6) for k, v in sorted(timings.items())},
    }
    if args.out:
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")
    for name in sorted(timings):
        if "_naive" in name:
            continue
        base, _, suffix = name.rpartition("_")
        if suffix.isdigit():
            naive = f"{base}_naive_{suffix}"
        else:
            naive = f"{name}_naive"
        twin = timings.get(naive)
        speed = f"  x{twin / timings[name]:.2f}" if twin else ""
        print(f"  {name:<28}{timings[name]:>10.4f}s{speed}")
    for key, meta in sizes.items():
        rss = meta.get("peak_rss_mb")
        rss_s = f"  peak_rss {rss:.0f}MB" if rss is not None else ""
        print(f"  [{key}] gates={meta['gates']} nets={meta['nets']} "
              f"pins={meta['pins']}{rss_s}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
