"""Table 2 — delay-mode comparison, MIS 2.1 vs Lily.

Per circuit: total instance area and longest path delay (wiring delays
included, measured after detailed placement) under the 1µ-scaled library
(3µ geometry, 1µ delays/capacitances — Section 5).  The paper's shape:
Lily improves delay on most circuits (8% average) with occasional losses
(C499 in the paper).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, cached_flow, geomean
from repro.circuits.suite import TABLE2_CIRCUITS


@pytest.mark.parametrize("circuit", TABLE2_CIRCUITS)
def test_table2_row(benchmark, circuit):
    mis = cached_flow(circuit, "mis", "timing")

    def run_lily():
        return cached_flow(circuit, "lily", "timing")

    lily = benchmark.pedantic(run_lily, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "scale": BENCH_SCALE,
            "mis_inst_mm2": round(mis.instance_area_mm2, 4),
            "mis_delay_ns": round(mis.delay, 3),
            "lily_inst_mm2": round(lily.instance_area_mm2, 4),
            "lily_delay_ns": round(lily.delay, 3),
            "delay_ratio": round(lily.delay / mis.delay, 4),
        }
    )
    assert mis.delay > 0 and lily.delay > 0


def test_table2_summary(benchmark):
    """Aggregate shape: Lily's delay is no worse on average and improves
    on a plurality of circuits (the paper reports -8% with outliers)."""

    def collect():
        rows = []
        for circuit in TABLE2_CIRCUITS:
            mis = cached_flow(circuit, "mis", "timing")
            lily = cached_flow(circuit, "lily", "timing")
            rows.append((circuit, lily.delay / mis.delay))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    delay_g = geomean(r[1] for r in rows)
    benchmark.extra_info.update(
        {
            "scale": BENCH_SCALE,
            "geomean_delay_ratio": round(delay_g, 4),
            "paper_delay_ratio": "0.92 (Lily -8%)",
            "rows": {r[0]: round(r[1], 3) for r in rows},
        }
    )
    assert delay_g < 1.02, "Lily's delay must not regress on average"
    wins = sum(1 for r in rows if r[1] < 1.0)
    assert wins >= len(rows) // 3, "Lily should improve delay on many rows"
