"""Ablation A8 — structural vs Boolean matching.

DAGON-style structural matching (the paper's matcher) against cut-based
Boolean matching and their union, area mode.  Boolean matching finds
covers the pattern shapes miss; this quantifies how much the 1991
approach leaves on the table.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, geomean, suite_circuit
from repro.library.patterns import pattern_set_for
from repro.library.standard import big_library
from repro.map.mis import MisAreaMapper
from repro.match.boolmatch import BooleanMatcher, UnionMatcher
from repro.match.treematch import Matcher
from repro.network.decompose import decompose_to_subject

CIRCUITS = ["misex1", "b9", "C432", "apex7"]


def _mapper(library, kind: str) -> MisAreaMapper:
    if kind == "structural":
        return MisAreaMapper(library)
    if kind == "boolean":
        return MisAreaMapper(library, matcher=BooleanMatcher(library))
    return MisAreaMapper(
        library,
        matcher=UnionMatcher(
            Matcher(pattern_set_for(library)), BooleanMatcher(library)
        ),
    )


@pytest.mark.parametrize("kind", ["structural", "boolean", "union"])
def test_matcher_variant(benchmark, kind):
    library = big_library()

    def run():
        rows = {}
        for circuit in CIRCUITS:
            subject = decompose_to_subject(suite_circuit(circuit))
            result = _mapper(library, kind).map(subject)
            rows[circuit] = {
                "gates": result.num_gates,
                "cell_area": round(result.cell_area, 0),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"scale": BENCH_SCALE, "matcher": kind, "rows": rows}
    )
    assert all(r["gates"] > 0 for r in rows.values())


def test_union_dominates_structural_on_trees(benchmark):
    """In tree mode the DP is exactly optimal over the match set, so a
    superset of matches can only help.  (In cone mode duplication makes
    DAG covering order-dependent and dominance does not hold — b9 is a
    live counterexample, recorded in extra_info.)
    """
    library = big_library()

    def run():
        tree_ratios = {}
        cone_ratios = {}
        for circuit in CIRCUITS:
            subject = decompose_to_subject(suite_circuit(circuit))
            structural_tree = MisAreaMapper(
                library, tree_mode=True
            ).map(subject)
            union_tree = MisAreaMapper(
                library,
                tree_mode=True,
                matcher=UnionMatcher(
                    Matcher(pattern_set_for(library), tree_mode=True),
                    BooleanMatcher(library, tree_mode=True),
                ),
            ).map(subject)
            tree_ratios[circuit] = round(
                union_tree.cell_area / structural_tree.cell_area, 4
            )
            structural = _mapper(library, "structural").map(subject)
            union = _mapper(library, "union").map(subject)
            cone_ratios[circuit] = round(
                union.cell_area / structural.cell_area, 4
            )
        return tree_ratios, cone_ratios

    tree_ratios, cone_ratios = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "scale": BENCH_SCALE,
            "tree_mode_ratio_union_vs_structural": tree_ratios,
            "cone_mode_ratio_union_vs_structural": cone_ratios,
            "cone_geomean": round(geomean(cone_ratios.values()), 4),
        }
    )
    # Note: tree-mode Boolean matches may still cross into regions the
    # structural tree partition sees differently; allow tiny slack.
    assert geomean(tree_ratios.values()) <= 1.0 + 1e-6
    assert geomean(cone_ratios.values()) <= 1.0  # helps on average
