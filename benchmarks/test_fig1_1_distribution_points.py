"""Figure 1.1 — the motivation experiments.

(a) Active gate area versus wire length: with few or clustered sources a
single high-fanin gate (one distribution point, k = 1) is optimal; with
many spread-out sources, k > 1 smaller gates give lower total wire cost.

(b) A decomposition tree aligned with placement (nearby signals entering
at topologically-near points) enables better mappings than a conflicting
tree.
"""

from __future__ import annotations

import pytest

from repro.core.lily import LilyAreaMapper, LilyOptions
from repro.geometry import Point, Rect
from repro.library.standard import big_library
from repro.map.mis import MisAreaMapper
from repro.network.decompose import decompose_to_subject, proximity_pairer
from repro.network.logic import Cube, SopCover
from repro.network.network import Network
from repro.route.wirelength import hpwl

REGION = Rect(0, 0, 400, 400)


def wide_and(n: int) -> Network:
    net = Network(f"and{n}")
    inputs = [net.add_primary_input(f"s{i}") for i in range(n)]
    node = net.add_node("t", inputs, SopCover(n, [Cube("1" * n)]))
    net.add_primary_output("t_out", node)
    return net


def split_pads(n: int):
    """Sources alternating between two far corners (Figure 1.1a's bad case)."""
    pads = {}
    for i in range(n):
        if i % 2 == 0:
            pads[f"s{i}"] = Point(REGION.lx + i, REGION.ly)
        else:
            pads[f"s{i}"] = Point(REGION.ux - i, REGION.uy)
    pads["t_out"] = Point(REGION.ux, REGION.center.y)
    return pads


def estimated_wire(mapped, pads) -> float:
    for name, pad in pads.items():
        if name in mapped:
            mapped[name].position = pad
        elif f"{name}__po" in mapped:
            mapped[f"{name}__po"].position = pad
    return sum(hpwl(net.pin_positions()) for net in mapped.nets())


def test_fig1_1a_distribution_points(benchmark):
    """Sweep fanin count with split sources; record the k and wire cost
    each mapper chooses."""
    library = big_library()

    def sweep():
        series = {}
        for n in (3, 4, 5, 6):
            net = wide_and(n)
            subject = decompose_to_subject(net)
            pads = split_pads(n)
            mis = MisAreaMapper(library).map(subject)
            for gate in mis.mapped.gates:
                gate.position = REGION.center
            lily = LilyAreaMapper(
                library, region=REGION, pad_positions=pads,
                options=LilyOptions(wire_weight=16.0),
            ).map(subject)
            series[n] = {
                "mis_gates": mis.num_gates,
                "mis_wire": round(estimated_wire(mis.mapped, pads), 0),
                "lily_gates": lily.num_gates,
                "lily_wire": round(estimated_wire(lily.mapped, pads), 0),
            }
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["series"] = series
    # With 3 split sources, one distribution point suffices for both.
    assert series[3]["lily_wire"] <= series[3]["mis_wire"] * 1.05
    # With >= 5 spread sources Lily's layout-aware cover does not lose.
    for n in (5, 6):
        assert series[n]["lily_wire"] <= series[n]["mis_wire"] * 1.05


def test_fig1_1b_layout_driven_decomposition(benchmark):
    """Placement-aligned decomposition beats a conflicting tree.

    Four sources paired geometrically (s0,s1 near; s2,s3 near).  The
    proximity-paired decomposition lets nearby signals meet early; a tree
    built in the conflicting interleaved order cannot.
    """
    library = big_library()
    net = wide_and(4)
    positions = {
        "s0": Point(0, 0), "s1": Point(10, 0),
        "s2": Point(390, 390), "s3": Point(400, 390),
    }
    pads = dict(positions)
    pads["t_out"] = Point(400, 200)

    def run():
        aligned = decompose_to_subject(net, positions=positions)
        conflicting = decompose_to_subject(net)  # textual order s0,s1,s2,s3
        out = {}
        for label, subject in (("aligned", aligned),
                               ("conflicting", conflicting)):
            result = LilyAreaMapper(
                library, region=REGION, pad_positions=pads,
                options=LilyOptions(wire_weight=16.0),
            ).map(subject)
            out[label] = round(estimated_wire(result.mapped, pads), 0)
        return out

    wires = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["wire_by_decomposition"] = wires
    assert wires["aligned"] <= wires["conflicting"] * 1.05


def test_fig1_1b_pairer_structure(benchmark):
    """Structural check: with aligned positions, the near pair of sources
    shares the deepest NAND of the decomposition tree."""

    def run():
        net = wide_and(4)
        positions = {
            "s0": Point(0, 0), "s1": Point(5, 0),
            "s2": Point(300, 300), "s3": Point(305, 300),
        }
        subject = decompose_to_subject(net, positions=positions)
        s0, s1 = subject["s0"], subject["s1"]
        shared = {g.uid for g in s0.fanouts} & {g.uid for g in s1.fanouts}
        return bool(shared)

    assert benchmark.pedantic(run, rounds=1, iterations=1)
