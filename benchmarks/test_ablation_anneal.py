"""Ablation A9 — simulated-annealing detailed placement (TimberWolf pass).

The paper's back-end placer was simulated-annealing based.  Measures the
SA refinement's effect on routed wirelength and chip area over the shared
back-end, on both pipelines.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, geomean, suite_circuit
from repro.flow.pipeline import lily_flow, mis_flow, place_and_route
from repro.library.standard import big_library

CIRCUITS = ["misex1", "b9", "C432"]


def test_annealing_effect(benchmark):
    library = big_library()

    def run():
        rows = {}
        for circuit in CIRCUITS:
            net = suite_circuit(circuit)
            flow = mis_flow(net, library, verify=False)
            pad_order = list(flow.backend.pad_positions)
            plain = place_and_route(flow.mapped, pad_order)
            annealed = place_and_route(
                flow.mapped, pad_order, anneal=True
            )
            rows[circuit] = {
                "wire_plain_mm": round(plain.wire_length_mm, 2),
                "wire_annealed_mm": round(annealed.wire_length_mm, 2),
                "ratio": round(
                    annealed.routed.total_wire_length
                    / plain.routed.total_wire_length,
                    4,
                ),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio_g = geomean(r["ratio"] for r in rows.values())
    benchmark.extra_info.update(
        {
            "scale": BENCH_SCALE,
            "geomean_wire_ratio_annealed_vs_plain": round(ratio_g, 4),
            "rows": rows,
        }
    )
    assert ratio_g <= 1.02, "annealing must not hurt wirelength on average"
