"""Ablation A1/F3 — the Section 3.2 position-update options.

Compares CM-of-Merged against CM-of-Fans (Manhattan separable-median and
the Euclidean centre-of-mass approximation) on a suite subset, in area
mode, under the shared back-end.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, cached_flow, geomean
from repro.core.lily import LilyOptions

CIRCUITS = ["misex1", "b9", "C432", "apex7", "e64"]

VARIANTS = {
    "cm_of_merged": LilyOptions(position_update="cm_of_merged"),
    "cm_of_fans_manhattan": LilyOptions(position_update="cm_of_fans",
                                        norm="manhattan"),
    "cm_of_fans_euclidean": LilyOptions(position_update="cm_of_fans",
                                        norm="euclidean"),
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_position_update_variant(benchmark, variant):
    options = VARIANTS[variant]

    def run():
        rows = {}
        for circuit in CIRCUITS:
            mis = cached_flow(circuit, "mis", "area")
            lily = cached_flow(
                circuit, "lily", "area",
                options_key=variant, options=options,
            )
            rows[circuit] = {
                "wire_ratio": round(
                    lily.wire_length_mm / mis.wire_length_mm, 4
                ),
                "chip_ratio": round(
                    lily.chip_area_mm2 / mis.chip_area_mm2, 4
                ),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    wire_g = geomean(r["wire_ratio"] for r in rows.values())
    chip_g = geomean(r["chip_ratio"] for r in rows.values())
    benchmark.extra_info.update(
        {
            "scale": BENCH_SCALE,
            "variant": variant,
            "geomean_wire_ratio": round(wire_g, 4),
            "geomean_chip_ratio": round(chip_g, 4),
            "rows": rows,
        }
    )
    # Every update option must stay a functioning layout-driven mapper.
    assert wire_g < 1.08
    assert chip_g < 1.08
