"""Ablation A4 — the Section 5 tiny-vs-big library discussion.

Traditional mapping with the tiny (<= 3-input) library yields many gates
and nets; with the big (<= 6-input) library, fewer gates but higher
routing complexity.  Lily with the big library should land at a gate count
between the two while matching or beating both on chip area and wire:
``A_lily <~ min(A_tiny, A_big)`` and ``W_lily <~ min(W_tiny, W_big)``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, cached_flow, geomean
from repro.library.standard import big_library, tiny_library

CIRCUITS = ["b9", "C432", "apex7", "duke2"]


def test_library_study(benchmark):
    def run():
        rows = {}
        for circuit in CIRCUITS:
            tiny = cached_flow(circuit, "mis", "area", library=tiny_library(),
                               options_key="tiny")
            big = cached_flow(circuit, "mis", "area", library=big_library(),
                              options_key="big")
            lily = cached_flow(circuit, "lily", "area")
            rows[circuit] = {
                "gates": {"tiny": tiny.num_gates, "big": big.num_gates,
                          "lily_big": lily.num_gates},
                "chip_mm2": {
                    "tiny": round(tiny.chip_area_mm2, 4),
                    "big": round(big.chip_area_mm2, 4),
                    "lily_big": round(lily.chip_area_mm2, 4),
                },
                "wire_mm": {
                    "tiny": round(tiny.wire_length_mm, 2),
                    "big": round(big.wire_length_mm, 2),
                    "lily_big": round(lily.wire_length_mm, 2),
                },
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({"scale": BENCH_SCALE, "rows": rows})

    for circuit, row in rows.items():
        gates = row["gates"]
        # Tiny-library mappings contain many more gates than big-library.
        assert gates["tiny"] > gates["big"], circuit
        # Lily's count sits at or between the two mappers' counts.
        assert gates["big"] * 0.9 <= gates["lily_big"] <= gates["tiny"] * 1.1

    # W_lily <= min(W_tiny, W_big) in aggregate (the paper's claim).
    wire_vs_best = geomean(
        row["wire_mm"]["lily_big"]
        / min(row["wire_mm"]["tiny"], row["wire_mm"]["big"])
        for row in rows.values()
    )
    benchmark.extra_info["geomean_wire_vs_best_traditional"] = round(
        wire_vs_best, 4
    )
    assert wire_vs_best <= 1.05
