"""Ablation A2 — the Section 3.4 wire-cost estimators.

Half-perimeter x Chung–Hwang against the rectilinear-spanning-tree model,
area mode, suite subset.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, cached_flow, geomean
from repro.core.lily import LilyOptions

CIRCUITS = ["misex1", "b9", "C432", "duke2"]


@pytest.mark.parametrize("model", ["halfperim", "spanning"])
def test_wire_model_variant(benchmark, model):
    options = LilyOptions(wire_model=model)

    def run():
        rows = {}
        for circuit in CIRCUITS:
            mis = cached_flow(circuit, "mis", "area")
            lily = cached_flow(
                circuit, "lily", "area",
                options_key=f"wiremodel_{model}", options=options,
            )
            rows[circuit] = round(
                lily.wire_length_mm / mis.wire_length_mm, 4
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    wire_g = geomean(rows.values())
    benchmark.extra_info.update(
        {
            "scale": BENCH_SCALE,
            "model": model,
            "geomean_wire_ratio": round(wire_g, 4),
            "rows": rows,
        }
    )
    assert wire_g < 1.08
