"""Ablation A6 — post-mapping fanout optimization (Section 5 future work).

"As in MIS2.2 we could ... perform a postprocessing pass to derive fanout
trees."  Measures the slack-aware buffer-tree pass on the delay-mode
results: buffers added and critical-delay change per circuit.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, TABLE2_WIRE_MODEL, geomean, suite_circuit
from repro.flow.pipeline import mis_flow
from repro.library.standard import big_library, scale_library
from repro.timing.fanout import optimize_fanout

CIRCUITS = ["C880", "C1908", "duke2", "e64"]


@pytest.mark.parametrize("max_fanout", [4, 6])
def test_fanout_postprocessing(benchmark, max_fanout):
    library = scale_library(big_library(), 1.0 / 3.0, name="big_1u")

    def run():
        rows = {}
        for circuit in CIRCUITS:
            net = suite_circuit(circuit)
            flow = mis_flow(net, library, mode="timing",
                            wire_model=TABLE2_WIRE_MODEL, verify=False)
            result = optimize_fanout(
                flow.mapped, library, max_fanout=max_fanout,
                wire_model=TABLE2_WIRE_MODEL,
            )
            rows[circuit] = {
                "buffers": result.buffers_added,
                "delay_before": round(result.delay_before, 3),
                "delay_after": round(result.delay_after, 3),
                "ratio": round(
                    result.delay_after / result.delay_before, 4
                ),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio_g = geomean(r["ratio"] for r in rows.values())
    benchmark.extra_info.update(
        {
            "scale": BENCH_SCALE,
            "max_fanout": max_fanout,
            "geomean_delay_ratio": round(ratio_g, 4),
            "rows": rows,
        }
    )
    assert ratio_g < 1.01, "fanout trees must not hurt delay on average"
    assert all(r["buffers"] > 0 for r in rows.values())
