"""Compare a fresh perf snapshot against a committed baseline.

Reads a baseline ``BENCH_PR*.json`` (the newest one by PR number unless
``--baseline`` names a file), runs :mod:`perf_snapshot` on the same
circuit, and fails if any watched component regressed beyond the
allowed ratio.  Comparing *ratios* on the same host keeps the check
meaningful on CI runners whose absolute speed differs from the machine
that produced the baseline: the fresh run measures every component, so
a uniformly slower machine cancels out of per-component ratios only if
we normalise — instead we allow generous slack (default 1.5x) and only
watch the mapper rows the perf work targets.

Run from the repo root::

    PYTHONPATH=src python benchmarks/check_perf_regression.py
        [--baseline BENCH_PR2.json] [--slack 1.5] [--repeats 3]
"""

from __future__ import annotations

import argparse
import glob
import json
import re
import sys

from perf_snapshot import mapping_backend_rows, snapshot

#: Components the regression gate watches: the mapping hot path (PR 2),
#: the incremental layout/timing engines (PR 4), the struct-of-arrays
#: scaling rows (PR 7), the generator-backed routing/STA rows
#: (PR 9, suffixed with their gate count so any baseline size keeps
#: comparing like for like) and the covering-backend rows (PR 10:
#: curated circuit only — the 10k-gate synth rows are tracked
#: artifact-to-artifact by ``bench_trajectory.py --watch map.``
#: instead, keeping this same-host re-run CI-sized).  Only rows present
#: in the chosen baseline are compared, so older baselines keep working.
WATCHED = ("lily_map", "mis_map", "anneal", "detailed_improve",
           "sta_moves", "scale.hpwl", "scale.anneal_cost",
           "scale.sta_full", "scale.route.wirelength_10000",
           "scale.route.spanning_10000", "scale.synth.sta_moves_10000",
           "map.cuts.table_build", "map.cuts.C880", "map.fusion.C880")

#: Gate counts re-run for the ``scale.*`` rows when the baseline has
#: them (the canonical rows come from the largest size).
SCALE_GATES = [1000, 5000, 20000]
#: Rent's-rule circuit sizes re-run for the generator-backed
#: ``scale.synth.*`` / ``scale.route.*`` rows (kept CI-sized; the
#: watched rows carry the size suffix).
SYNTH_GATES = [10000]


def newest_baseline() -> str:
    """The committed ``BENCH_PR<n>.json`` with the highest PR number."""
    best = None
    best_pr = -1
    for path in glob.glob("BENCH_PR*.json"):
        m = re.fullmatch(r"BENCH_PR(\d+)\.json", path)
        if m and int(m.group(1)) > best_pr:
            best_pr = int(m.group(1))
            best = path
    if best is None:
        raise SystemExit("no BENCH_PR*.json baseline found in the cwd")
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="check_perf_regression")
    parser.add_argument("--baseline", default=None,
                        help="baseline json (default: newest BENCH_PR*.json)")
    parser.add_argument("--slack", type=float, default=1.5,
                        help="max allowed fresh/baseline time ratio")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    baseline_path = args.baseline or newest_baseline()
    with open(baseline_path) as f:
        baseline = json.load(f)
    base_timings = baseline["timings_s"]

    circuit = baseline.get("circuit", "C880")
    fresh = snapshot(circuit, args.repeats)
    legacy = any(
        name.startswith("scale.") and not name.startswith(
            ("scale.synth.", "scale.route."))
        for name in base_timings)
    synth = any(name.startswith(("scale.synth.", "scale.route."))
                for name in base_timings)
    if legacy or synth:
        from scaling import scaling_rows

        fresh.update(scaling_rows(
            SCALE_GATES if legacy else [],
            repeats=args.repeats,
            synth_sizes=SYNTH_GATES if synth else None,
        )[0])
    if any(name.startswith("map.") for name in base_timings):
        # Covering-backend rows on the baseline circuit only; the slow
        # generated-workload rows stay artifact-to-artifact territory.
        fresh.update(mapping_backend_rows(
            circuit, synth="", repeats=args.repeats)[0])
    failed = False
    print(f"baseline {baseline_path} (pr {baseline.get('pr', '?')}, "
          f"circuit {circuit})")
    for name in WATCHED:
        if name not in base_timings:
            print(f"  {name:<30}missing from baseline, skipped")
            continue
        if name not in fresh:
            print(f"  {name:<30}missing from fresh run, skipped")
            continue
        ratio = fresh[name] / base_timings[name]
        verdict = "ok" if ratio <= args.slack else "REGRESSED"
        failed = failed or ratio > args.slack
        print(f"  {name:<30}{base_timings[name]:>9.4f}s -> "
              f"{fresh[name]:>9.4f}s  x{ratio:<6.2f}{verdict}")
    if failed:
        print(f"FAIL: a watched component exceeded {args.slack}x baseline")
        return 1
    print("all watched components within slack")
    return 0


if __name__ == "__main__":
    sys.exit(main())
