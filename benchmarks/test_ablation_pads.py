"""Ablation A5 — pad-assignment sensitivity (Section 5).

"The initial pad placement — prior to technology mapping — influences the
degree of wire length reduction that is achievable by Lily."  We run the
Lily pipeline with the connectivity-driven (spectral) pad order against a
seeded random order and record the achieved wirelength.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE, geomean, suite_circuit
from repro.area.estimate import subject_image
from repro.core.lily import LilyAreaMapper
from repro.flow.pipeline import pads_from_order, place_and_route
from repro.library.standard import big_library
from repro.network.decompose import decompose_to_subject
from repro.place.pads import io_affinity_order

CIRCUITS = ["b9", "C432", "apex7"]


def _lily_with_pad_order(circuit: str, order):
    net = suite_circuit(circuit)
    subject = decompose_to_subject(net)
    region = subject_image(len(subject.gates))
    names = {n.name for n in subject.primary_inputs}
    names |= {n.name for n in subject.primary_outputs}
    order = [n for n in order if n in names]
    pads = pads_from_order(order, region)
    mapper = LilyAreaMapper(
        big_library(), region=region, pad_positions=pads
    )
    result = mapper.map(subject)
    backend = place_and_route(result.mapped, order)
    return backend.wire_length_mm


def test_pad_assignment_sensitivity(benchmark):
    import random

    def run():
        rows = {}
        for circuit in CIRCUITS:
            net = suite_circuit(circuit)
            spectral = io_affinity_order(net)
            shuffled = list(spectral)
            random.Random(99).shuffle(shuffled)
            rows[circuit] = {
                "connectivity_pads_wire_mm": round(
                    _lily_with_pad_order(circuit, spectral), 2
                ),
                "random_pads_wire_mm": round(
                    _lily_with_pad_order(circuit, shuffled), 2
                ),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = geomean(
        row["connectivity_pads_wire_mm"] / row["random_pads_wire_mm"]
        for row in rows.values()
    )
    benchmark.extra_info.update(
        {
            "scale": BENCH_SCALE,
            "rows": rows,
            "geomean_connectivity_vs_random": round(ratio, 4),
        }
    )
    # Good pads should not hurt; typically they help.
    assert ratio <= 1.05
