"""Machine-readable perf snapshot of the hot components.

Writes ``BENCH_PR<n>.json`` (or a given path) with best-of-N wall times
for every component ``test_component_speed.py`` benchmarks, so the repo's
perf trajectory is tracked as a committed artifact from PR 1 onward.
Every snapshot uses the same schema and timing names, so any two
``BENCH_PR*.json`` files are directly comparable
(``check_perf_regression.py`` automates the comparison).

The mapper rows (``mis_map``, ``lily_map``) run whatever the *default*
mapper configuration is — from PR 2 on that includes the ``repro.perf``
fast paths, which is exactly the point: the artifact records what a user
gets out of the box.  ``--jobs`` additionally enables the parallel cone
match pre-warm for the mapper rows.

PR 4 adds the incremental-engine rows (``anneal`` / ``detailed_improve``
/ ``sta_moves``, each with a ``_naive`` twin running the same work with
the caches off) and a ``--suite`` mode that times a whole Table 1 run
sequentially and with ``--procs N``, recording per-circuit phase times
from the merged observability reports.

PR 6 adds a ``lily_map_observed`` twin (the full mapper under a live
``repro.obs`` session, recording the telemetry-on overhead next to the
telemetry-off row) and a ``serve`` section: an in-process mapping
service runs the same circuit repeatedly (cache cleared between
requests so every one is a genuine mapping) and the artifact records
the p50/p90/p99 the server's always-on latency and queue-wait
histograms answer.  ``tools/bench_trajectory.py`` diffs any two of
these artifacts.

PR 7 adds a ``--scaling`` mode that merges the ``scale.*`` rows from
``benchmarks/scaling.py`` (struct-of-arrays kernels vs the naive
engines at 1k/5k/20k gates, every timed pair checked for exact
equality first) and stamps a ``kernels`` section into every artifact:
the numpy/scipy versions and default ``PerfOptions`` kernel flags the
snapshot ran under, so cross-machine comparisons state their backends.

PR 8 adds the cluster rows: a mini soak (``--cluster-shards`` /
``--cluster-jobs``) replays a repeating job mix against an in-process
``ClusterRouter`` and records the replay wall time, hit rate and the
cluster-aggregate latency percentiles.  The serve latency percentiles
(single-server and cluster) are also mirrored into ``timings_s`` under
a ``serve.`` prefix, so ``tools/bench_trajectory.py --watch serve.``
tracks the serving trajectory exactly like the ``scale.`` rows.

PR 9 adds ``--synth-scaling``: generator-backed ``scale.synth.*`` and
``scale.route.*`` rows from Rent's-rule circuits
(``repro.circuits.synth``) at the requested gate counts, alongside the
curated-circuit tilings ``--scaling`` drives.  ``--max-gates`` raises
the accident guard for the 1M-gate opt-in.

PR 10 adds the covering-backend rows (``map.*``): tree vs priority-cut
vs fusion wall times on the snapshot circuit and a 10k-gate Rent's-rule
workload, plus the NPN match-table build — with each backend's mapped
cell area recorded in a ``mapping`` section so trajectory diffs can
tell a wall-time regression from a QoR regression.
``tools/bench_trajectory.py --watch map.`` tracks these rows across
artifacts; ``--mapping-synth ''`` skips the (slow) generated workload.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf_snapshot.py [out.json]
        [--pr 10] [--circuit C880] [--repeats 3] [--jobs 1]
        [--suite] [--procs 4] [--serve-requests 6]
        [--scaling [1000 5000 20000]] [--synth-scaling 10000 100000]
        [--max-gates 200000] [--cluster-shards 2] [--cluster-jobs 32]
        [--mapping-synth synth:19910611:10000]
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import platform
import random
import sys
from time import perf_counter
from typing import Callable, Dict

from repro.area.estimate import mapped_image, subject_image
from repro.circuits.suite import build_circuit
from repro.core.lily import LilyAreaMapper
from repro.flow.pipeline import pads_from_order
from repro.geometry import Point
from repro.library.patterns import pattern_set_for
from repro.library.standard import big_library
from repro.map.mis import MisAreaMapper
from repro.match.treematch import Matcher
from repro.network.decompose import decompose_to_subject
from repro.obs import OBS, observed
from repro.perf import PerfOptions
from repro.place.anneal import simulated_annealing
from repro.place.detailed import detailed_place
from repro.place.global_place import GlobalPlacer
from repro.place.hypergraph import mapped_netlist, subject_netlist
from repro.place.pads import assign_pads, io_affinity_order
from repro.route.channel import left_edge_route
from repro.timing.model import WireCapModel
from repro.timing.sta import analyze


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        fn()
        best = min(best, perf_counter() - start)
    return best


def snapshot(
    circuit: str = "C880", repeats: int = 3, jobs: int = 1
) -> Dict[str, float]:
    """Best-of-``repeats`` seconds per component, observability off."""
    assert not OBS.enabled
    perf = PerfOptions().with_jobs(jobs)
    net = build_circuit(circuit)
    library = big_library()
    patterns = pattern_set_for(library)  # warm the pattern cache
    subject = decompose_to_subject(net)
    matcher = Matcher(patterns)
    region = subject_image(len(subject.gates))
    pads = assign_pads(subject, region)
    netlist = subject_netlist(subject, pads)
    intervals = {
        f"n{i}": ((i * 37) % 500.0, (i * 37) % 500.0 + 25 + (i % 60))
        for i in range(400)
    }
    mapped = MisAreaMapper(library).map(subject).mapped

    gate_nodes = [n for n in subject.nodes if n.is_gate]
    timings = {
        "decompose": _best_of(lambda: decompose_to_subject(net), repeats),
        "matching": _best_of(
            lambda: sum(len(matcher.matches_at(n)) for n in gate_nodes),
            repeats,
        ),
        "global_placement": _best_of(
            lambda: GlobalPlacer().place(netlist, region), repeats
        ),
        "left_edge": _best_of(lambda: left_edge_route(intervals), repeats),
        "mis_map": _best_of(
            lambda: MisAreaMapper(library, perf=perf).map(subject), repeats
        ),
        "lily_map": _best_of(
            lambda: LilyAreaMapper(library, perf=perf).map(subject),
            max(1, repeats - 1),
        ),
        "sta": _best_of(lambda: analyze(mapped, wire_model=None), repeats),
    }
    timings.update(_layout_rows(net, mapped, repeats))
    # The same matcher sweep and full mapper with tracing+metrics live,
    # so the snapshot records the observability overhead explicitly.
    with observed():
        timings["matching_observed"] = _best_of(
            lambda: sum(len(matcher.matches_at(n)) for n in gate_nodes),
            repeats,
        )
        timings["lily_map_observed"] = _best_of(
            lambda: LilyAreaMapper(library, perf=perf).map(subject),
            max(1, repeats - 1),
        )
    return timings


def _layout_rows(net, mapped, repeats: int) -> Dict[str, float]:
    """The incremental-engine rows: each paired with a ``_naive`` twin
    running identical work with the bounding-box / dirty-frontier caches
    off (results are bit-identical; only the bookkeeping differs)."""
    from repro.timing.incremental import IncrementalTiming

    region = mapped_image(mapped.total_cell_area())
    order = io_affinity_order(net)
    known = {n.name for n in mapped.primary_inputs}
    known.update(n.name for n in mapped.primary_outputs)
    pads = pads_from_order([nm for nm in order if nm in known], region)
    netlist = mapped_netlist(mapped, pads)
    gp = GlobalPlacer().place(netlist, region).positions
    base = detailed_place(netlist, gp, improvement_passes=0)

    def run_anneal(incremental: bool):
        simulated_annealing(copy.deepcopy(base), netlist, seed=0,
                            moves_per_cell=12, incremental=incremental)

    def run_detailed(incremental: bool):
        detailed_place(netlist, gp, improvement_passes=8,
                       incremental=incremental)

    wire_model = WireCapModel()
    for node in mapped.topological_order():
        p = base.positions.get(node.name) or pads.get(node.name)
        if p is not None:
            node.position = p
    saved = {g.name: g.position for g in mapped.gates}

    def moves(seed: int = 11, count: int = 40):
        rng = random.Random(seed)
        gates = sorted(saved)
        for _ in range(count):
            name = gates[rng.randrange(len(gates))]
            p = mapped[name].position
            yield name, Point(p.x + rng.uniform(-3, 3),
                              p.y + rng.uniform(-3, 3))

    def run_sta_full():
        for name, p in moves():
            mapped[name].position = p
            analyze(mapped, wire_model=wire_model)
        for name, p in saved.items():
            mapped[name].position = p

    def run_sta_incremental():
        engine = IncrementalTiming(mapped, wire_model=wire_model)
        for name, p in moves():
            engine.set_position(name, p)
            engine.update()
        for name, p in saved.items():
            mapped[name].position = p

    return {
        "anneal": _best_of(lambda: run_anneal(True), repeats),
        "anneal_naive": _best_of(lambda: run_anneal(False), repeats),
        "detailed_improve": _best_of(lambda: run_detailed(True), repeats),
        "detailed_improve_naive": _best_of(
            lambda: run_detailed(False), repeats),
        "sta_moves": _best_of(run_sta_incremental, repeats),
        "sta_moves_naive": _best_of(run_sta_full, repeats),
    }


def mapping_backend_rows(
    circuit: str = "C880",
    synth: str = "synth:19910611:10000",
    repeats: int = 2,
) -> "tuple[Dict[str, float], Dict[str, object]]":
    """Covering-backend rows: tree vs cuts vs fusion wall + QoR.

    Times the three interchangeable covering backends on the same
    decomposed subject graphs — one curated suite circuit and one
    Rent's-rule generated workload — plus the NPN match-table build
    (the cut backend's only per-library setup cost; the timed mapper
    rows run against the warm memoised table, matching what a flow or
    serve user sees after the first job).  Returns ``(timings, qor)``:
    ``map.*`` wall rows for ``timings_s`` and a per-circuit QoR dict
    (mapped cell area per backend) for the ``mapping`` section, so
    trajectory diffs can tell a wall-time regression from a quality
    regression.  Fusion runs only on the curated circuit — on the 10k
    workload it would double the dominant tree+cuts wall while its QoR
    is already determined by the per-cone winners.  ``synth=""`` skips
    the generated workload (``check_perf_regression`` does this for its
    quick re-run).
    """
    from repro.map.cuts import CutMapper, FusionMapper, NpnMatchTable

    library = big_library()
    timings: Dict[str, float] = {}
    qor: Dict[str, object] = {}

    k = CutMapper(library).k
    timings["map.cuts.table_build"] = _best_of(
        lambda: NpnMatchTable(library, k), repeats)

    def timed_map(make_mapper, subject, reps):
        """Best-of wall plus the last run's result (QoR comes free —
        mapping the 10k workload twice per backend would double a
        multi-minute snapshot for identical, deterministic output)."""
        best, result = float("inf"), None
        for _ in range(reps):
            start = perf_counter()
            result = make_mapper().map(subject)
            best = min(best, perf_counter() - start)
        return best, result

    jobs = [(circuit, True)]
    if synth:
        jobs.append((synth, False))
    for name, with_fusion in jobs:
        slug = name.replace("synth:", "synth_").replace(":", "_")
        subject = decompose_to_subject(build_circuit(name))
        reps = repeats if with_fusion else max(1, repeats - 1)
        row: Dict[str, object] = {"gates": sum(
            1 for n in subject.nodes if n.is_gate)}

        wall, tree = timed_map(
            lambda: MisAreaMapper(library), subject, reps)
        timings[f"map.tree.{slug}"] = wall
        row["tree_area"] = round(tree.mapped.total_cell_area(), 1)

        wall, cuts = timed_map(
            lambda: CutMapper(library, mode="area"), subject, reps)
        timings[f"map.cuts.{slug}"] = wall
        row["cuts_area"] = round(cuts.mapped.total_cell_area(), 1)

        if with_fusion:
            wall, fused = timed_map(
                lambda: FusionMapper(library, mode="area"), subject, reps)
            timings[f"map.fusion.{slug}"] = wall
            row["fusion_area"] = round(
                fused.mapped.total_cell_area(), 1)
        qor[slug] = row
    return timings, qor


def serve_snapshot(circuit: str = "C880",
                   requests: int = 6) -> Dict[str, object]:
    """Latency percentiles from an in-process mapping service.

    Submits the circuit ``requests`` times, clearing the result cache
    between submissions so every request is a genuine mapping and the
    server's always-on ``serve.latency_s`` / ``serve.queue_wait_s``
    histograms accumulate real mass; one final uncleaned repeat records
    the cache-hit path.  The recorded p50/p90/p99 are what a ``metrics``
    scrape of a production server answers for this workload.
    """
    from repro.serve.client import Client

    assert not OBS.enabled
    with Client.in_process(workers=1) as client:
        for i in range(requests):
            if i:
                client.server.cache.clear()
            response = client.map_circuit(circuit, flow="lily")
            if not response.get("ok"):
                raise RuntimeError(f"serve row failed: {response}")
        hit = client.map_circuit(circuit, flow="lily")
        snapshot_now = client.metrics()
    rows: Dict[str, object] = {
        "circuit": circuit,
        "requests": requests,
        "final_request_cache_hit": bool(hit.get("cache_hit")),
    }
    for name in ("serve.latency_s", "serve.queue_wait_s"):
        summary = snapshot_now.get("histograms", {}).get(name)
        if not summary or not summary.get("count"):
            continue
        short = name.split(".", 1)[1]
        rows[f"{short}_count"] = summary["count"]
        for quantile in ("p50", "p90", "p99"):
            rows[f"{short}_{quantile}"] = round(summary[quantile], 6)
    return rows


def cluster_snapshot(shards: int = 2, jobs: int = 32,
                     workers: int = 2) -> Dict[str, object]:
    """A mini cluster soak: concurrent replay of a repeating job mix.

    Routes ``jobs`` requests (drawn round-robin from a small pool of
    fast suite circuits, so most repeat) through an in-process
    :class:`~repro.serve.cluster.ClusterRouter` from ``2 * shards *
    workers`` client threads, retrying shed answers with their
    ``retry_after_s`` hint.  Records the replay wall time, the hit
    rate and the cluster-aggregate ``serve.latency_s`` percentiles —
    the serving-trajectory numbers ``bench_trajectory.py --watch
    serve.`` tracks across artifacts.
    """
    import time
    from concurrent.futures import ThreadPoolExecutor

    from repro.serve import Client, ClusterConfig, ClusterRouter
    from repro.serve.jobs import JobSpec

    assert not OBS.enabled
    pool = [
        JobSpec.from_dict({"circuit": circuit, "flow": flow,
                           "mode": "area"})
        for circuit in ("misex1", "b9", "e64", "duke2")
        for flow in ("mis", "lily")
    ]
    mix = [pool[i % len(pool)] for i in range(jobs)]
    router = ClusterRouter(ClusterConfig(
        shards=shards, workers=workers,
        max_queue_depth=max(4, 2 * workers)))
    client = Client.wrap(router)
    try:
        def run_one(spec):
            for _ in range(60):
                envelope = client.submit(spec, timeout=600)
                if envelope.get("status") != "overloaded":
                    return envelope
                time.sleep(min(envelope.get("retry_after_s", 0.1), 2.0))
            return envelope

        start = perf_counter()
        with ThreadPoolExecutor(max_workers=2 * shards * workers) as pool_:
            envelopes = list(pool_.map(run_one, mix))
        replay_s = perf_counter() - start
        failed = [e for e in envelopes if not e.get("ok")]
        if failed:
            raise RuntimeError(f"cluster row failed: {failed[0]}")
        stats = client.stats()
        metrics = client.metrics()
    finally:
        router.shutdown()
    latency = metrics["histograms"].get("serve.latency_s", {})
    rows: Dict[str, object] = {
        "shards": shards,
        "workers_per_shard": workers,
        "jobs": jobs,
        "unique": len(pool),
        "replay_s": round(replay_s, 6),
        "hit_rate": round(
            stats["cache"]["hits"] / max(1, stats["counters"]["jobs"]), 4),
        "shed": stats["counters"].get("shed", 0),
    }
    for quantile in ("p50", "p90", "p99"):
        if latency.get(quantile) is not None:
            rows[f"latency_{quantile}_s"] = round(latency[quantile], 6)
    return rows


def suite_snapshot(procs: int = 4) -> Dict[str, object]:
    """Time a full Table 1 run sequentially and with a process pool.

    Both runs collect per-flow observability reports (the workers bring
    their own sessions), so the recorded wall times carry the same
    tracing overhead and the artifact keeps per-circuit phase times.
    """
    from repro.circuits.suite import TABLE1_CIRCUITS
    from repro.flow.tables import run_table1
    from repro.obs import merge_reports

    assert not OBS.enabled
    seq_obs = []
    OBS.enable()
    try:
        start = perf_counter()
        run_table1(verify=False, obs_out=seq_obs)
        seq_s = perf_counter() - start
    finally:
        OBS.disable()
    par_obs = []
    start = perf_counter()
    run_table1(verify=False, procs=procs, obs_out=par_obs)
    par_s = perf_counter() - start

    circuits: Dict[str, Dict[str, float]] = {}
    for report in seq_obs:
        row = circuits.setdefault(report.circuit, {})
        row[f"{report.flow}_wall_s"] = round(report.wall_s, 6)
        for phase in ("map", "backend"):
            p = report.phase(phase)
            if p is not None:
                row[f"{report.flow}_{phase}_s"] = round(p.total_s, 6)
    merged = merge_reports(par_obs)
    return {
        "circuits_run": list(TABLE1_CIRCUITS),
        "procs": procs,
        # Pool speedup is bounded by the host: on a 1-CPU box the
        # parallel run only measures pool overhead.
        "host_cpus": os.cpu_count(),
        "table1_seq_s": round(seq_s, 6),
        f"table1_procs{procs}_s": round(par_s, 6),
        "speedup": round(seq_s / par_s, 3) if par_s else 0.0,
        "worker_wall_sum_s": round(merged.wall_s, 6) if merged else 0.0,
        "circuits": circuits,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="perf_snapshot")
    parser.add_argument("out", nargs="?", default=None,
                        help="output path (default BENCH_PR<n>.json)")
    parser.add_argument("--pr", type=int, default=10,
                        help="PR number stamped into the artifact")
    parser.add_argument("--circuit", default="C880")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--jobs", type=int, default=1,
                        help="threads for the parallel cone match pre-warm "
                             "in the mapper rows")
    parser.add_argument("--suite", action="store_true",
                        help="also time a full Table 1 run sequentially "
                             "vs --procs N and record per-circuit phases")
    parser.add_argument("--procs", type=int, default=4,
                        help="process-pool width for --suite")
    parser.add_argument("--serve-requests", type=int, default=6,
                        metavar="N",
                        help="requests driven through the in-process "
                             "mapping service for the latency-percentile "
                             "rows (0 skips the serve section)")
    parser.add_argument("--scaling", type=int, nargs="*", default=None,
                        metavar="GATES",
                        help="also run benchmarks/scaling.py at these "
                             "gate counts (default sizes with a bare "
                             "flag) and merge its scale.* rows into the "
                             "artifact")
    parser.add_argument("--synth-scaling", type=int, nargs="+",
                        default=None, metavar="GATES",
                        help="also run the generator-backed scale.synth.* "
                             "and scale.route.* rows at these Rent's-rule "
                             "circuit sizes")
    parser.add_argument("--max-gates", type=int, default=None,
                        metavar="N",
                        help="raise the scaling accident guard (forwarded "
                             "to scaling_rows for 1M-gate opt-ins)")
    parser.add_argument("--cluster-shards", type=int, default=2,
                        metavar="N",
                        help="shard count for the cluster soak rows "
                             "(0 skips the cluster section)")
    parser.add_argument("--cluster-jobs", type=int, default=32,
                        metavar="N",
                        help="jobs replayed through the cluster rows "
                             "(default 32)")
    parser.add_argument("--mapping-synth", default="synth:19910611:10000",
                        metavar="SPEC",
                        help="Rent's-rule workload for the covering-"
                             "backend map.* rows (empty string runs "
                             "them on --circuit only)")
    args = parser.parse_args(argv)
    out = args.out or f"BENCH_PR{args.pr}.json"

    from repro.perf.vec import kernel_backend_info

    timings = snapshot(args.circuit, args.repeats, jobs=args.jobs)
    scale_sizes = None
    if args.scaling is not None or args.synth_scaling is not None:
        from scaling import DEFAULT_MAX_GATES, scaling_rows

        kwargs = {}
        if args.max_gates is not None:
            kwargs["max_gates"] = args.max_gates
        elif args.synth_scaling:
            kwargs["max_gates"] = max(
                DEFAULT_MAX_GATES, *args.synth_scaling)
        scale_timings, scale_sizes = scaling_rows(
            (args.scaling or [1000, 5000, 20000])
            if args.scaling is not None else [],
            repeats=args.repeats,
            synth_sizes=args.synth_scaling,
            **kwargs,
        )
        timings.update(scale_timings)
    map_timings, map_qor = mapping_backend_rows(
        args.circuit, synth=args.mapping_synth,
        repeats=max(1, args.repeats - 1))
    timings.update(map_timings)
    doc = {
        "pr": args.pr,
        "circuit": args.circuit,
        "repeats": args.repeats,
        "python": platform.python_version(),
        # Which array backends the struct-of-arrays kernels ran on: any
        # two artifacts state the configurations they compare.
        "kernels": kernel_backend_info(),
        "timings_s": {k: round(v, 6) for k, v in sorted(timings.items())},
    }
    if scale_sizes is not None:
        doc["scaling_sizes"] = scale_sizes
    # Covering-backend QoR next to the map.* walls: a faster mapper
    # that covers worse is a regression the wall rows alone would hide.
    doc["mapping"] = map_qor
    if args.serve_requests:
        doc["serve"] = serve_snapshot(args.circuit,
                                      requests=args.serve_requests)
        # Mirror the serving percentiles into timings_s so
        # bench_trajectory.py --watch serve. tracks them like any row.
        for quantile in ("p50", "p90", "p99"):
            value = doc["serve"].get(f"latency_s_{quantile}")
            if value is not None:
                doc["timings_s"][f"serve.latency_{quantile}"] = value
    if args.cluster_shards:
        doc["cluster"] = cluster_snapshot(shards=args.cluster_shards,
                                          jobs=args.cluster_jobs)
        doc["timings_s"]["serve.cluster_replay"] = \
            doc["cluster"]["replay_s"]
        for quantile in ("p50", "p90", "p99"):
            value = doc["cluster"].get(f"latency_{quantile}_s")
            if value is not None:
                doc["timings_s"][f"serve.cluster_latency_{quantile}"] = \
                    value
    if args.suite:
        doc["suite"] = suite_snapshot(procs=args.procs)
    with open(out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {out}")
    for name, seconds in sorted(timings.items()):
        print(f"  {name:<24}{seconds:>10.4f}s")
    for slug, row in doc["mapping"].items():
        areas = "  ".join(f"{key[:-5]} {value:.0f}"
                          for key, value in row.items()
                          if key.endswith("_area"))
        print(f"  map QoR {slug:<15} {areas}")
    if args.serve_requests:
        s = doc["serve"]
        print(f"  serve latency_s         p50 {s['latency_s_p50']:.4f}  "
              f"p90 {s['latency_s_p90']:.4f}  "
              f"p99 {s['latency_s_p99']:.4f}  "
              f"({s['latency_s_count']} mapped)")
    if args.cluster_shards:
        c = doc["cluster"]
        print(f"  cluster {c['shards']}-shard replay "
              f"{c['replay_s']:>8.4f}s  hit rate {c['hit_rate']:.1%}  "
              f"p99 {c.get('latency_p99_s', 0):.4f}s")
    if args.suite:
        s = doc["suite"]
        print(f"  table1 sequential     {s['table1_seq_s']:>10.4f}s")
        print(f"  table1 --procs {args.procs:<2}     "
              f"{s[f'table1_procs{args.procs}_s']:>10.4f}s "
              f"(x{s['speedup']:.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
